//! The end-to-end broker: matching + clustering-derived groups + the
//! dynamic distribution scheme + cost accounting.
//!
//! # Two-layer architecture
//!
//! The broker's state is split into a mutable
//! [`SubscriptionRegistry`] (the only structure `subscribe`/`unsubscribe`
//! touch directly) and an immutable [`EngineSnapshot`] (everything the
//! publish path reads: compiled matcher, grid model, partition, multicast
//! groups), versioned by an epoch and swapped atomically. Between full
//! recompiles, churn is absorbed incrementally:
//!
//! * new subscriptions land in a linear-scan delta overlay merged with
//!   the flat index at match time; removals of compiled subscriptions are
//!   masked by a tombstone bitset;
//! * multicast groups are kept *exact* under the current partition via
//!   per-(group, node) incidence refcounts, and an
//!   [`IncrementalClusterer`] mirrors every change so the partition
//!   itself is refreshed locally every few operations;
//! * when the clusterer's drift threshold trips, the broker recompiles
//!   the whole engine from the registry — bit-identical to a fresh
//!   [`BrokerBuilder::build`] over the surviving subscriptions.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pubsub_clustering::{
    cluster, ClusteringAlgorithm, ClusteringConfig, GridModel, IncrementalClusterer,
    SpacePartition, SubscriptionHandle as ClustererHandle,
};
use pubsub_geom::{CellId, EventSoA, Grid, Point, Rect, Space};
use pubsub_netsim::{
    cost_events_into, multicast_tree_cost_flat, sparse_mode_cost_flat, unicast_and_tree_cost,
    unicast_cost_flat, CostScratch, DijkstraScratch, FaultEvent, FaultPlan, FaultyRouting, FlatNet,
    NetError, NodeId, SptTable, SptView, Topology,
};
use pubsub_parallel::{pipeline_inline, BlockRanges, PipelineRun, WorkerPool};
use pubsub_stree::{DeltaOverlay, Entry, EntryId, STreeConfig, Tombstones};
use serde::{Deserialize, Serialize};

use crate::journal::{DurableJournal, JournalConfig, JournalOp, RegistryImage};
use crate::matcher::{self, KernelCounters, MatchOverlay};
use crate::metrics::{
    ChurnCounters, Delivery, LatencyHisto, MetricsSnapshot, PipelineCounters, RecoveryCounters,
};
use crate::pipeline::{BatchMatches, DecisionTag, EventMeta, PublishScratch, NO_GROUP};
use crate::stage::StageKind;
use crate::view::{OwnedOverlay, PublishView};
use crate::{
    BrokerError, CostReport, CoveringConfig, CoveringStats, Decision, DistributionPolicy,
    EngineSnapshot, MatchScratch, Matcher, MessageCosts, MulticastGroups, SubscriptionHandle,
    SubscriptionId, SubscriptionRegistry, SubscriptionStream, UnicastReason,
};

/// Publication-density closure used by clustering.
type DensityFn = Box<dyn Fn(&Rect) -> f64 + Send + Sync>;

/// Which multicast flavor the broker simulates (the paper notes its
/// results apply to both network-supported and application-level
/// multicast).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// Network-supported dense-mode multicast: one message down the
    /// shortest-path tree rooted at the publisher (the paper's §5.2
    /// assumption).
    DenseMode,
    /// Network-supported sparse-mode multicast: the message is tunneled
    /// to a rendezvous point and flooded down the RP-rooted shared tree
    /// (the other router flavor the paper names; see
    /// `pubsub_netsim::sparse_mode_cost`).
    SparseMode {
        /// The rendezvous point all groups share.
        rendezvous: NodeId,
    },
    /// Application-level multicast: a greedy overlay tree among group
    /// members, every overlay hop a unicast (extension; see
    /// `pubsub_netsim::alm_tree_cost`).
    ApplicationLevel,
}

/// The outcome of publishing one event. Passive data: public fields.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PublishOutcome {
    /// How the message was delivered.
    pub decision: Decision,
    /// The group region `S_q` the event fell in (`None` for `S_0`), even
    /// when the decision was unicast or drop — efficiency trackers need
    /// to attribute unicast decisions to the group they bypassed.
    pub group_region: Option<usize>,
    /// The matching subscription ids.
    pub matched_subscriptions: Vec<SubscriptionId>,
    /// The deduplicated interested subscriber nodes `s`.
    pub interested: Vec<NodeId>,
    /// Matched subscriber nodes that were unreachable under the broker's
    /// fault state and therefore skipped — always empty on a fault-free
    /// broker.
    #[serde(default)]
    pub unreachable: Vec<NodeId>,
    /// Scheme / unicast / ideal costs of this message.
    pub costs: MessageCosts,
}

/// Builder for [`Broker`]; see [`Broker::builder`].
pub struct BrokerBuilder {
    topology: Topology,
    space: Space,
    subscriptions: Vec<(NodeId, Rect)>,
    publisher: Option<NodeId>,
    stree_config: STreeConfig,
    clustering: ClusteringConfig,
    grid_cells: usize,
    threshold: f64,
    delivery: DeliveryMode,
    density: Option<DensityFn>,
    recluster_fraction: f64,
    local_refresh_every: usize,
    pool: Option<Arc<WorkerPool>>,
    covering: Option<CoveringConfig>,
    journal: Option<JournalConfig>,
}

impl fmt::Debug for BrokerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerBuilder")
            .field("subscriptions", &self.subscriptions.len())
            .field("publisher", &self.publisher)
            .field("clustering", &self.clustering)
            .field("grid_cells", &self.grid_cells)
            .field("threshold", &self.threshold)
            .field("delivery", &self.delivery)
            .field("density", &self.density.as_ref().map(|_| "<closure>"))
            .field("recluster_fraction", &self.recluster_fraction)
            .field("local_refresh_every", &self.local_refresh_every)
            .field("pool", &self.pool.as_ref().map(|p| p.threads()))
            .field("covering", &self.covering)
            .field("journal", &self.journal)
            .finish_non_exhaustive()
    }
}

impl BrokerBuilder {
    /// Adds one subscription.
    pub fn subscription(mut self, node: NodeId, rect: Rect) -> Self {
        self.subscriptions.push((node, rect));
        self
    }

    /// Adds many subscriptions.
    pub fn subscriptions<I>(mut self, subs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Rect)>,
    {
        self.subscriptions.extend(subs);
        self
    }

    /// Sets the publisher node (default: the topology's first transit
    /// node — "the exchange feed").
    pub fn publisher(mut self, node: NodeId) -> Self {
        self.publisher = Some(node);
        self
    }

    /// Overrides the S-tree configuration (default: `M = 40`, `p = 0.3`).
    pub fn stree_config(mut self, config: STreeConfig) -> Self {
        self.stree_config = config;
        self
    }

    /// Overrides the clustering configuration (default: Forgy k-means
    /// with 11 groups, `T = 200`).
    pub fn clustering(mut self, config: ClusteringConfig) -> Self {
        self.clustering = config;
        self
    }

    /// Overrides the grid resolution `C` (cells per dimension, default
    /// 10).
    pub fn grid_cells(mut self, cells: usize) -> Self {
        self.grid_cells = cells;
        self
    }

    /// Sets the distribution threshold `t` (default 0.15, the paper's
    /// recommendation; 0 reproduces the static scheme).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Selects the multicast flavor (default dense-mode).
    pub fn delivery_mode(mut self, mode: DeliveryMode) -> Self {
        self.delivery = mode;
        self
    }

    /// Sets the publication density `p_p(·)` used by clustering (default:
    /// uniform over the space). Pass the analytic mass of the publication
    /// model driving the experiment, e.g.
    /// `.density(move |r| model.mass(r))`.
    pub fn density<F>(mut self, density: F) -> Self
    where
        F: Fn(&Rect) -> f64 + Send + Sync + 'static,
    {
        self.density = Some(Box::new(density));
        self
    }

    /// Sets the churn drift threshold: a full engine recompile runs when
    /// subscription changes since the last recompile exceed this fraction
    /// of the live population (default 0.5).
    pub fn recluster_fraction(mut self, fraction: f64) -> Self {
        self.recluster_fraction = fraction;
        self
    }

    /// Sets how many subscribe/unsubscribe operations run between local
    /// partition refreshes (default 64). Between refreshes the groups are
    /// still kept exact under the current partition; the refresh lets the
    /// partition itself follow the population.
    pub fn local_refresh_every(mut self, ops: usize) -> Self {
        self.local_refresh_every = ops;
        self
    }

    /// Enables the pre-compilation covering layer: subscriptions are
    /// deduplicated (exact interning, rectangle subsumption, optional
    /// quantized merge) into a representative set compiled into a
    /// `u16`-quantized [`pubsub_stree::CompactSTree`], with an expansion
    /// table mapping representative hits back to concrete subscription
    /// ids. Delivered sets and cost reports stay bit-identical to the
    /// uncovered build; index memory drops with the workload's duplicate
    /// skew. See [`CoveringConfig`].
    pub fn covering(mut self, config: CoveringConfig) -> Self {
        self.covering = Some(config);
        self
    }

    /// Shares a persistent [`WorkerPool`] with the broker's batch-publish
    /// pipeline. Without this, the broker lazily spawns its own pool the
    /// first time a batch asks for more than one worker; injecting one
    /// lets several brokers share a single set of threads (the pool
    /// serializes whole jobs, so sharing is safe).
    pub fn worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a durable subscription journal: every
    /// `subscribe`/`unsubscribe`/`recompile` is appended to a checksummed
    /// WAL (with periodic registry snapshots truncating it) so
    /// [`BrokerBuilder::recover`] can rebuild the broker after a crash.
    /// Journal-less brokers (the default) pay nothing — the publish and
    /// churn paths are unchanged.
    pub fn journal(mut self, config: JournalConfig) -> Self {
        self.journal = Some(config);
        self
    }

    /// Recovers a broker from the journal configured via
    /// [`BrokerBuilder::journal`]: loads the last registry snapshot,
    /// replays the valid WAL tail (discarding a torn final record), and
    /// compiles the engine from the recovered registry. The result is
    /// bit-identical to a live broker that held the same subscriptions
    /// and called [`Broker::recompile`] at the recovery point — handles
    /// keep their pre-crash numbering, dead slots stay dead.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::InvalidConfig`] if no journal was configured or
    ///   builder subscriptions were supplied (recovery's subscription
    ///   source is the journal alone);
    /// * [`BrokerError::Journal`] for I/O failures, corrupt snapshots, or
    ///   a journal inconsistent with the topology;
    /// * plus every compile error [`BrokerBuilder::build`] can return.
    pub fn recover(mut self) -> Result<Broker, BrokerError> {
        let start = Instant::now();
        let Some(config) = self.journal.take() else {
            return Err(BrokerError::InvalidConfig {
                parameter: "journal",
                constraint: "recover() requires BrokerBuilder::journal(...)",
            });
        };
        if !self.subscriptions.is_empty() {
            return Err(BrokerError::InvalidConfig {
                parameter: "subscriptions",
                constraint: "empty — recovery replays the journal, not builder subscriptions",
            });
        }
        let node_count = self.topology.graph().node_count();
        let (mut journal, replay) = DurableJournal::resume(&config)?;
        let image = replay.image.unwrap_or(RegistryImage {
            node_count: node_count as u32,
            next_slot: 0,
            live: Vec::new(),
        });
        if image.node_count as usize != node_count {
            return Err(BrokerError::Journal {
                message: format!(
                    "snapshot was taken over {} nodes, topology has {node_count}",
                    image.node_count
                ),
            });
        }
        let mut registry = image.restore()?;
        let mut replayed_ops = 0u64;
        let mut stale_ops = 0u64;
        // Replay is idempotent against the crash window between the
        // snapshot rename and the WAL truncation: the snapshot already
        // folded those records, and because handles are never reused a
        // stale record is recognizable — a subscribe below the restored
        // next-slot, or an unsubscribe of an already-dead handle.
        for op in &replay.tail {
            match op {
                JournalOp::Subscribe { handle, node, rect } => {
                    if (*handle as usize) < registry.issued() {
                        stale_ops += 1;
                        continue;
                    }
                    let issued = registry.insert(NodeId(*node), rect.clone())?;
                    if issued.raw() != *handle {
                        return Err(BrokerError::Journal {
                            message: format!(
                                "replay issued handle {} where the log recorded {handle}",
                                issued.raw()
                            ),
                        });
                    }
                }
                JournalOp::Unsubscribe { handle } => {
                    if (*handle as usize) >= registry.issued() {
                        return Err(BrokerError::Journal {
                            message: format!(
                                "replay unsubscribes handle {handle}, which was never issued"
                            ),
                        });
                    }
                    let target = SubscriptionHandle::from_raw(*handle);
                    if !registry.contains(target) {
                        stale_ops += 1;
                        continue;
                    }
                    registry.remove(target)?;
                }
                // The final compile below folds every survivor already.
                JournalOp::Recompile => {}
            }
            replayed_ops += 1;
        }
        // Build over the recovered live list (dense handles), then swap
        // in the restored registry — identical live set, pre-crash
        // numbering — and recompile once so engine ids and id_to_handle
        // are rebound to the real handles. By the recompile-parity
        // property the resulting engine is bit-identical to the one a
        // never-crashed broker would compile over these survivors.
        self.subscriptions = registry
            .live()
            .map(|(_, node, rect)| (node, rect.clone()))
            .collect();
        let mut broker = self.build()?;
        broker.registry = registry;
        broker.recompile()?;
        broker.counters = ChurnCounters::default();
        journal.write_snapshot(&broker.registry)?;
        broker.journal = Some(journal);
        broker.recovery = RecoveryCounters {
            restarts: 0,
            replayed_batches: 0,
            truncated_records: replay.truncated_records,
            recovery_ms: start.elapsed().as_millis() as u64,
            replayed_ops,
            stale_ops,
        };
        Ok(broker)
    }

    /// Builds the broker: indexes subscriptions, clusters the event
    /// space, materializes multicast groups and precomputes routing.
    ///
    /// # Errors
    ///
    /// Propagates every layer's configuration errors; additionally
    /// rejects out-of-topology nodes and dimensionality mismatches.
    pub fn build(self) -> Result<Broker, BrokerError> {
        let policy = DistributionPolicy::new(self.threshold)?;
        if !(self.recluster_fraction > 0.0 && self.recluster_fraction.is_finite()) {
            return Err(BrokerError::InvalidConfig {
                parameter: "recluster_fraction",
                constraint: "0 < fraction < inf",
            });
        }
        if self.local_refresh_every == 0 {
            return Err(BrokerError::InvalidConfig {
                parameter: "local_refresh_every",
                constraint: "at least 1",
            });
        }
        let node_count = self.topology.graph().node_count();
        let publisher = match self.publisher {
            Some(p) => {
                if p.0 as usize >= node_count {
                    return Err(BrokerError::UnknownNode { node: p.0 });
                }
                p
            }
            None => *self
                .topology
                .transit_nodes()
                .first()
                .or_else(|| self.topology.stub_nodes().first())
                .ok_or(BrokerError::InvalidConfig {
                    parameter: "topology",
                    constraint: "at least one node",
                })?,
        };

        // The mutable layer: every subscription gets a stable handle.
        let mut registry = SubscriptionRegistry::new(node_count);
        for (node, rect) in &self.subscriptions {
            registry.insert(*node, rect.clone())?;
        }

        // A configured journal starts from a fresh directory with the
        // initial registry as its first snapshot, so recovery never needs
        // the builder's subscription list.
        let journal = match &self.journal {
            Some(config) => {
                let mut journal = DurableJournal::create(config)?;
                journal.write_snapshot(&registry)?;
                Some(journal)
            }
            None => None,
        };

        // The immutable layer: compile the engine over the same list, in
        // the same order, as every later recompile does.
        let engine = compile_engine(
            &self.space,
            &SubSource::Slice(&self.subscriptions),
            self.stree_config,
            &self.clustering,
            self.grid_cells,
            self.density.as_deref(),
            self.covering.as_ref(),
        )?;
        let mut id_to_handle = Vec::with_capacity(registry.len());
        for (i, (handle, _, _)) in registry.live().enumerate() {
            id_to_handle.push(handle);
            debug_assert_eq!(i, id_to_handle.len() - 1);
        }
        let handles = id_to_handle.clone();
        for (i, handle) in handles.into_iter().enumerate() {
            registry.set_engine_id(handle, i as u32);
        }
        let snapshot = Arc::new(EngineSnapshot {
            epoch: 0,
            matcher: Arc::new(engine.matcher),
            grid_model: Arc::new(engine.grid_model),
            partition: Arc::new(engine.partition),
            groups: Arc::new(engine.groups),
            id_to_handle: Arc::new(id_to_handle),
        });

        // The compiled network engine: CSR adjacency once, then dense SPT
        // rows for every routing source the delivery mode needs, built in
        // parallel.
        let net = FlatNet::compile(self.topology.graph());
        let mut spt_sources = vec![publisher];
        if let DeliveryMode::SparseMode { rendezvous } = self.delivery {
            if rendezvous.0 as usize >= node_count {
                return Err(BrokerError::UnknownNode { node: rendezvous.0 });
            }
            spt_sources.push(rendezvous);
        }
        let spt = SptTable::build(&net, &spt_sources, None);
        let alm_dist = match self.delivery {
            DeliveryMode::DenseMode | DeliveryMode::SparseMode { .. } => None,
            DeliveryMode::ApplicationLevel => {
                // Full distance matrix so per-message Prim is table
                // lookups; one parallel flat-Dijkstra pass per row.
                let sources: Vec<NodeId> = self.topology.graph().node_ids().collect();
                let rows = pubsub_parallel::map_with_scratch(
                    &sources,
                    pubsub_parallel::effective_threads(None),
                    DijkstraScratch::new,
                    |&s, scratch| {
                        let sp = net.shortest_paths(s, scratch);
                        (0..node_count).map(|t| sp.dist(NodeId(t as u32))).collect()
                    },
                );
                Some(rows)
            }
        };

        Ok(Broker {
            topology: self.topology,
            space: self.space,
            registry,
            snapshot,
            policy,
            publisher,
            net,
            spt,
            route_scratch: DijkstraScratch::new(),
            cost_scratch: CostScratch::new(),
            scheme_memo: SchemeMemo::default(),
            scheme_walks: 0,
            delivery: self.delivery,
            alm_dist,
            report: CostReport::default(),
            stree_config: self.stree_config,
            clustering: self.clustering,
            grid_cells: self.grid_cells,
            density: self.density,
            covering: self.covering,
            recluster_fraction: self.recluster_fraction,
            local_refresh_every: self.local_refresh_every,
            churn: None,
            counters: ChurnCounters::default(),
            pool: self.pool,
            pipeline_states: Vec::new(),
            pipeline_counters: PipelineCounters::default(),
            faults: None,
            panic_trap: AtomicUsize::new(usize::MAX),
            journal,
            recovery: RecoveryCounters::default(),
        })
    }
}

/// One full compilation of the read-side engine. Produced by
/// [`compile_engine`], shared by [`BrokerBuilder::build`] and
/// [`Broker::recompile`] so both paths are bit-identical.
struct CompiledEngine {
    matcher: Matcher,
    grid_model: GridModel,
    partition: SpacePartition,
    groups: MulticastGroups,
}

/// The subscription source a compile reads: the builder's list or the
/// live registry, streamed in stable subscription-id order. The registry
/// variant lets a recompile feed the matcher and grid model directly
/// from the live slots, never materializing an O(N) rectangle array.
enum SubSource<'a> {
    Slice(&'a [(NodeId, Rect)]),
    Registry(&'a SubscriptionRegistry),
}

impl SubSource<'_> {
    /// A fresh pass over the source, in subscription-id order.
    fn iter(&self) -> Box<dyn Iterator<Item = (NodeId, &Rect)> + '_> {
        match self {
            SubSource::Slice(subs) => Box::new(subs.iter().map(|(n, r)| (*n, r))),
            SubSource::Registry(reg) => Box::new(reg.live().map(|(_, n, r)| (n, r))),
        }
    }
}

impl SubscriptionStream for SubSource<'_> {
    fn len(&self) -> usize {
        match self {
            SubSource::Slice(subs) => subs.len(),
            SubSource::Registry(reg) => reg.len(),
        }
    }

    fn for_each(&self, f: &mut dyn FnMut(NodeId, &Rect)) {
        for (node, rect) in self.iter() {
            f(node, rect);
        }
    }
}

/// Compiles matcher, grid model, partition and groups from a subscription
/// source. Deterministic in the input order: subscription ids are
/// assigned in stream order and the clustering is seed-free. With
/// `covering` set, the matcher compiles the covering layer's
/// representative set into a quantized compact index instead of one flat
/// entry per subscription; the grid model, partition and groups see the
/// identical per-subscription sequence either way, so everything
/// downstream of matching is bit-identical.
fn compile_engine(
    space: &Space,
    subs: &SubSource<'_>,
    stree_config: STreeConfig,
    clustering: &ClusteringConfig,
    grid_cells: usize,
    density: Option<&(dyn Fn(&Rect) -> f64 + Send + Sync)>,
    covering: Option<&CoveringConfig>,
) -> Result<CompiledEngine, BrokerError> {
    let matcher = match covering {
        Some(config) => Matcher::build_covered(space, subs, config)?,
        None => match subs {
            SubSource::Slice(list) => Matcher::build(space, list, stree_config)?,
            SubSource::Registry(reg) => {
                // The flat backend bulk-loads from a slice; only the
                // covered path streams.
                let list: Vec<(NodeId, Rect)> =
                    reg.live().map(|(_, n, r)| (n, r.clone())).collect();
                Matcher::build(space, &list, stree_config)?
            }
        },
    };

    // Dense subscriber indexing for the clustering model.
    let mut distinct: Vec<NodeId> = subs.iter().map(|(n, _)| n).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let index_of = |n: NodeId| distinct.binary_search(&n).expect("collected above");

    let grid = Grid::uniform(space.bounds().clone(), grid_cells)?;
    let space_volume = space.bounds().volume();
    let default_density = move |r: &Rect| r.volume() / space_volume;
    let grid_model = {
        let indexed = subs.iter().map(|(n, r)| (index_of(n), space.clamp(r)));
        match density {
            Some(f) => GridModel::build_iter(grid, distinct.len(), indexed, f)?,
            None => GridModel::build_iter(grid, distinct.len(), indexed, default_density)?,
        }
    };
    let partition = cluster(&grid_model, clustering)?;
    let groups = MulticastGroups::from_partition(&grid_model, &partition, &distinct);
    Ok(CompiledEngine {
        matcher,
        grid_model,
        partition,
        groups,
    })
}

/// Epoch-keyed, per-publisher memo of group-send costs: the scheme cost
/// of a multicast depends only on (epoch, fault stamp, publisher, group,
/// delivery mode). Entries survive publisher switches; the whole memo
/// resets lazily when the snapshot epoch or the fault stamp moves past
/// it. The fault stamp is `route_generation + decision_gen` — it only
/// moves when a heal actually changed routing bits or a committed group
/// health transition changed the fallback ladder, so a flapping link
/// that never changes either does not thrash the memo.
#[derive(Debug, Default)]
struct SchemeMemo {
    epoch: u64,
    fault_stamp: u64,
    per_publisher: Vec<(NodeId, Vec<Option<f64>>)>,
}

impl SchemeMemo {
    /// The memo row for `publisher` at `(epoch, fault_stamp)`, clearing
    /// stale keys first. The row has one slot per group.
    fn slot(
        &mut self,
        epoch: u64,
        fault_stamp: u64,
        publisher: NodeId,
        groups: usize,
    ) -> &mut Vec<Option<f64>> {
        if self.epoch != epoch || self.fault_stamp != fault_stamp {
            self.per_publisher.clear();
            self.epoch = epoch;
            self.fault_stamp = fault_stamp;
        }
        match self.per_publisher.iter().position(|(p, _)| *p == publisher) {
            Some(i) => &mut self.per_publisher[i].1,
            None => {
                self.per_publisher.push((publisher, vec![None; groups]));
                &mut self.per_publisher.last_mut().expect("just pushed").1
            }
        }
    }
}

/// Consecutive identical raw health evaluations (differing from the
/// committed state) required before a (publisher, group) pair's
/// committed health moves — the hysteresis that keeps a flapping link
/// from thrashing the scheme-cost memo.
const HEALTH_HYSTERESIS: u32 = 2;

/// Delivery health of one (publisher, group) pair under the current
/// fault state, classified from the fraction of group members reachable
/// from the publisher and committed under hysteresis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupHealth {
    /// Every member is reachable: multicast over the full tree.
    Healthy,
    /// At least half the members are reachable: the group degrades to a
    /// partial multicast over the surviving subtree.
    Degraded,
    /// Fewer than half the members are reachable: the tree counts as
    /// severed and delivery falls back to per-receiver unicast.
    Severed,
}

/// Hysteresis state of one (publisher, group) pair.
#[derive(Clone, Copy, Debug)]
struct HealthSlot {
    committed: GroupHealth,
    candidate: GroupHealth,
    streak: u32,
    /// Publish step of the last raw evaluation (`u64::MAX` = never).
    eval_step: u64,
}

impl Default for HealthSlot {
    fn default() -> Self {
        HealthSlot {
            committed: GroupHealth::Healthy,
            candidate: GroupHealth::Healthy,
            streak: 0,
            eval_step: u64::MAX,
        }
    }
}

/// The broker's fault machinery: the overlay-backed self-healing routing
/// state, the installed schedule with its publish-step clock, and the
/// per-(publisher, group) health classification driving the degraded
/// fallback ladder.
#[derive(Debug)]
struct FaultState {
    routing: FaultyRouting,
    plan: FaultPlan,
    /// Index of the first plan event not yet fired.
    next_event: usize,
    /// The publish-step clock: incremented once per publish attempt.
    step: u64,
    /// Snapshot epoch the health table was built for; group identities
    /// change with the snapshot, so the table resets when it moves.
    health_epoch: u64,
    health: Vec<(NodeId, Vec<HealthSlot>)>,
    /// Bumps on every committed health transition; part of the scheme
    /// memo's fault stamp.
    decision_gen: u64,
}

/// Classifies — and commits, under hysteresis — the health of one
/// (publisher, group) pair from the fraction of members reachable in
/// the publisher's fault-healed routing view. Raw evaluations run at
/// most once per publish step per slot, so consecutive publishes
/// advance the hysteresis streak while repeated health queries within
/// one publish stay stable; a committed transition bumps
/// `decision_gen`, invalidating the scheme-cost memo.
fn eval_group_health(
    faults: &mut FaultState,
    snapshot_epoch: u64,
    group_count: usize,
    publisher: NodeId,
    q: usize,
    members: &[NodeId],
    view: SptView<'_>,
) -> GroupHealth {
    if faults.health_epoch != snapshot_epoch {
        // Group identities changed with the snapshot: start the
        // classification (and its hysteresis) over.
        faults.health.clear();
        faults.health_epoch = snapshot_epoch;
    }
    let step = faults.step;
    let row = match faults.health.iter().position(|(p, _)| *p == publisher) {
        Some(i) => &mut faults.health[i].1,
        None => {
            faults
                .health
                .push((publisher, vec![HealthSlot::default(); group_count]));
            &mut faults.health.last_mut().expect("just pushed").1
        }
    };
    let slot = &mut row[q];
    if slot.eval_step == step {
        return slot.committed;
    }
    slot.eval_step = step;
    let total = members.len();
    let reachable = members.iter().filter(|&&m| view.reachable(m)).count();
    let raw = if total == 0 || reachable == total {
        GroupHealth::Healthy
    } else if reachable * 2 >= total {
        GroupHealth::Degraded
    } else {
        GroupHealth::Severed
    };
    if raw == slot.committed {
        slot.streak = 0;
        slot.candidate = slot.committed;
    } else {
        if raw == slot.candidate {
            slot.streak += 1;
        } else {
            slot.candidate = raw;
            slot.streak = 1;
        }
        if slot.streak >= HEALTH_HYSTERESIS {
            slot.committed = raw;
            slot.streak = 0;
            faults.decision_gen += 1;
        }
    }
    slot.committed
}

/// The broker's churn machinery, created lazily on the first
/// subscribe/unsubscribe: the mirror clusterer, the match-side overlay and
/// tombstones, and the per-(group, node) incidence refcounts that keep
/// multicast groups exact between partition refreshes.
#[derive(Debug)]
struct ChurnState {
    clusterer: IncrementalClusterer,
    cl_handles: HashMap<SubscriptionHandle, ClustererHandle>,
    /// Per group: a dense node-indexed count of (subscription, cell)
    /// incidences in the group's region. A node is a member iff its count
    /// is positive. Dense indexing keeps the per-churn-op update O(cells
    /// intersected) with no hashing.
    group_rc: Vec<Vec<u32>>,
    overlay: DeltaOverlay,
    tombstones: Tombstones,
    /// Owner nodes of overlay entries, indexed by `engine_id - base`;
    /// slots of removed entries keep their value so indexing stays
    /// stable.
    overlay_owners: Vec<NodeId>,
    /// Registry handles of overlay entries (`None` once unsubscribed).
    overlay_handles: Vec<Option<SubscriptionHandle>>,
    overlay_max_node: u32,
    ops_since_refresh: usize,
}

/// The content-based pub-sub broker of the paper, end to end: publish an
/// event, get back the matched subscribers, the unicast/multicast
/// decision and the communication costs. Subscriptions can be added and
/// removed live; see the module docs for the two-layer architecture.
pub struct Broker {
    topology: Topology,
    space: Space,
    /// The mutable layer: live subscriptions with stable handles.
    registry: SubscriptionRegistry,
    /// The immutable layer: everything the publish path reads, swapped
    /// atomically on change.
    snapshot: Arc<EngineSnapshot>,
    policy: DistributionPolicy,
    /// The default publisher; `publish_from` supports others.
    publisher: NodeId,
    /// The CSR compilation of the topology graph.
    net: FlatNet,
    /// Precomputed SPT rows per routing source (publishers seen so far
    /// plus the rendezvous point in sparse mode).
    spt: SptTable,
    /// Reusable Dijkstra state for lazily added publishers.
    route_scratch: DijkstraScratch,
    /// Reusable epoch-stamped marks for the per-event cost walks.
    cost_scratch: CostScratch,
    /// Epoch-keyed per-publisher group-send cost memo.
    scheme_memo: SchemeMemo,
    /// How many scheme-cost tree walks actually ran (memo misses).
    scheme_walks: u64,
    delivery: DeliveryMode,
    alm_dist: Option<Vec<Vec<f64>>>,
    report: CostReport,
    // Compile inputs, retained so `recompile` reproduces `build` exactly.
    stree_config: STreeConfig,
    clustering: ClusteringConfig,
    grid_cells: usize,
    density: Option<DensityFn>,
    covering: Option<CoveringConfig>,
    recluster_fraction: f64,
    local_refresh_every: usize,
    churn: Option<ChurnState>,
    counters: ChurnCounters,
    /// The persistent worker pool behind `publish_batch`; `None` until a
    /// batch first asks for more than one worker (or one was injected via
    /// [`BrokerBuilder::worker_pool`]).
    pool: Option<Arc<WorkerPool>>,
    /// Per-worker fused-pipeline states, constructed once and reused for
    /// every batch (index = pool worker index).
    pipeline_states: Vec<PublishScratch>,
    pipeline_counters: PipelineCounters,
    /// Fault-injection state; `None` until a plan is installed. While a
    /// plan is installed, batch publishes run as fault-clock segments:
    /// the fused pipeline inside each segment, the per-event clock
    /// replayed by the sequential fold.
    faults: Option<FaultState>,
    /// Test hook: pool-worker index armed to panic once on its next
    /// fused pass (`usize::MAX` = disarmed).
    panic_trap: AtomicUsize,
    /// The durable subscription journal; `None` (the default) keeps the
    /// churn path exactly as it was — no I/O, no clones, no allocation.
    journal: Option<DurableJournal>,
    /// Counters describing the recovery that produced this broker (all
    /// zero for a broker built fresh) plus supervisor restarts reported
    /// via [`Broker::note_recovery`].
    recovery: RecoveryCounters,
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("live_subscriptions", &self.registry.len())
            .field("epoch", &self.snapshot.epoch)
            .field("publisher", &self.publisher)
            .field("delivery", &self.delivery)
            .field("clustering", &self.clustering)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl Broker {
    /// Starts building a broker over a topology and event space.
    pub fn builder(topology: Topology, space: Space) -> BrokerBuilder {
        BrokerBuilder {
            topology,
            space,
            subscriptions: Vec::new(),
            publisher: None,
            stree_config: STreeConfig::default(),
            clustering: ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 11),
            grid_cells: 10,
            threshold: 0.15,
            delivery: DeliveryMode::DenseMode,
            density: None,
            recluster_fraction: 0.5,
            local_refresh_every: 64,
            pool: None,
            covering: None,
            journal: None,
        }
    }

    /// Aggregation statistics of the current snapshot's covering layer;
    /// `None` when the broker compiles without covering (see
    /// [`BrokerBuilder::covering`]).
    pub fn covering_stats(&self) -> Option<&CoveringStats> {
        self.snapshot.matcher.covering_stats()
    }

    /// Publishes one event from the default publisher: matches, decides,
    /// costs, and records.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DimensionMismatch`] if the event's
    /// dimensionality differs from the space's.
    pub fn publish(&mut self, event: &Point) -> Result<PublishOutcome, BrokerError> {
        self.publish_from(self.publisher, event)
    }

    /// Publishes one event from an arbitrary publisher node. The paper
    /// notes dense-mode router state is proportional to *publishers* ×
    /// groups; this entry point lets experiments model multiple feeds.
    /// Shortest-path trees are computed once per publisher and cached.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownNode`] if `publisher` is not in the
    ///   topology;
    /// * [`BrokerError::DimensionMismatch`] for a wrong-dimensional
    ///   event;
    /// * [`BrokerError::Net`] with [`NetError::Unreachable`] if an
    ///   installed fault plan has taken the publisher node down.
    pub fn publish_from(
        &mut self,
        publisher: NodeId,
        event: &Point,
    ) -> Result<PublishOutcome, BrokerError> {
        if publisher.0 as usize >= self.topology.graph().node_count() {
            return Err(BrokerError::UnknownNode { node: publisher.0 });
        }
        if event.dims() != self.space.dims() {
            return Err(BrokerError::DimensionMismatch {
                expected: self.space.dims(),
                got: event.dims(),
            });
        }
        if self.tick_faults() {
            return self.publish_degraded(publisher, event);
        }
        self.spt
            .ensure(&self.net, publisher, &mut self.route_scratch);
        let (matched_subscriptions, interested) = self.match_only(event);
        Ok(self.decide_and_record(publisher, event, matched_subscriptions, interested))
    }

    /// Publishes a batch of events from the default publisher.
    ///
    /// The batch runs as a fused pipeline on the broker's persistent
    /// [`WorkerPool`]: each worker executes match → cost → decide for its
    /// block-cyclic share of the events in one pass, reusing a
    /// per-worker [`PublishScratch`] (match scratch, epoch-stamped cost
    /// scratch, CSR result arena) that is constructed once — the warm
    /// batch path performs zero per-event heap allocations up to output
    /// materialization. The record stage then folds sequentially **in
    /// event order**, so the cumulative [`CostReport`] and the returned
    /// outcomes are identical to calling [`Broker::publish`] in a loop —
    /// for any thread count (`None` = available parallelism), including
    /// mid-churn with a pending overlay and tombstones.
    ///
    /// With a fault plan installed the batch still runs through the
    /// worker pool: it is cut into *fault-clock segments* at the plan's
    /// scheduled firings (routing and node state are constant inside a
    /// segment), each segment runs the same fused pipeline — with matched
    /// nodes additionally partitioned by reachability when a fault has
    /// applied — and the sequential fold replays the per-event fault
    /// clock, health hysteresis and fallback ladder. Outcomes and the
    /// report stay bit-identical to a loop of [`Broker::publish`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DimensionMismatch`] if any event has the
    /// wrong dimensionality; the whole batch is validated up front, so on
    /// error nothing has been published or recorded. With a fault plan
    /// installed, [`NetError::Unreachable`] (the publisher went down
    /// mid-plan) aborts the batch at the failing event; earlier events
    /// stay recorded, exactly as the equivalent `publish` loop would
    /// leave them.
    pub fn publish_batch(
        &mut self,
        events: &[Point],
        threads: Option<usize>,
    ) -> Result<Vec<PublishOutcome>, BrokerError> {
        if self.faults.is_some() {
            let mut outcomes = Vec::with_capacity(events.len());
            self.publish_batch_faulted(events, threads, Some(&mut outcomes))?;
            return Ok(outcomes);
        }
        let used = self.run_pipeline(events, threads, false)?;
        let mut outcomes = Vec::with_capacity(events.len());
        self.fold_batch(events.len(), used, Some(&mut outcomes));
        Ok(outcomes)
    }

    /// [`Broker::publish_batch`] without materializing per-event
    /// outcomes: the fused pipeline and the sequential record fold run
    /// identically (the cumulative report advances by exactly the same
    /// values), but nothing is copied out of the worker arenas. With warm
    /// pipeline states this path performs **no heap allocation at all**
    /// in dense mode. Returns a copy of the cumulative report.
    ///
    /// # Errors
    ///
    /// As [`Broker::publish_batch`].
    pub fn publish_batch_stats(
        &mut self,
        events: &[Point],
        threads: Option<usize>,
    ) -> Result<CostReport, BrokerError> {
        if self.faults.is_some() {
            self.publish_batch_faulted(events, threads, None)?;
            return Ok(self.report);
        }
        let used = self.run_pipeline(events, threads, false)?;
        self.fold_batch(events.len(), used, None);
        Ok(self.report)
    }

    /// The batch driver under an installed fault plan: cuts the batch
    /// into fault-clock segments (a segment ends right before the next
    /// scheduled plan firing, so routing, node state and the fault
    /// overlay are constant within it), runs every segment through the
    /// fused worker pipeline, and folds sequentially. Pristine segments
    /// (no fault has ever applied) take the exact pristine fold; degraded
    /// segments replay the per-event step clock, health hysteresis and
    /// fallback ladder in [`Broker::fold_batch_degraded`]. The result —
    /// outcomes, report, memo and hysteresis state — is bit-identical to
    /// a loop of [`Broker::publish`] calls.
    fn publish_batch_faulted(
        &mut self,
        events: &[Point],
        threads: Option<usize>,
        mut outcomes: Option<&mut Vec<PublishOutcome>>,
    ) -> Result<(), BrokerError> {
        self.validate_batch(events)?;
        let publisher = self.publisher;
        let mut start = 0usize;
        while start < events.len() {
            // Tick the clock for the segment's first event: fires
            // everything due and decides the segment's mode. Any later
            // firing is, by the segmentation below, the start of the
            // *next* segment, so no event inside this one can change
            // routing or node state.
            let degraded = self.tick_faults();
            let faults = self.faults.as_ref().expect("fault path implies a plan");
            let current = faults.step - 1;
            let remaining = (events.len() - start) as u64;
            let seg = match faults.plan.events().get(faults.next_event) {
                Some(scheduled) => (scheduled.at - current).min(remaining) as usize,
                None => remaining as usize,
            };
            let seg_events = &events[start..start + seg];
            if !degraded {
                // Nothing has ever faulted: the pristine pipeline and
                // fold apply unchanged; the remaining seg - 1 ticks fire
                // nothing, so the clock advances in bulk.
                let used = self.run_pipeline(seg_events, threads, false)?;
                self.fold_batch(seg, used, outcomes.as_deref_mut());
                let faults = self.faults.as_mut().expect("fault path implies a plan");
                faults.step += seg as u64 - 1;
            } else {
                {
                    let faults = self.faults.as_mut().expect("fault path implies a plan");
                    if !faults.routing.node_up(publisher) {
                        // The publisher is down for the whole segment;
                        // the segment's first event is exactly where the
                        // sequential loop would abort.
                        return Err(BrokerError::Net(NetError::Unreachable {
                            node: publisher.0,
                        }));
                    }
                    faults.routing.heal(&self.net, &mut self.spt, publisher);
                    if let DeliveryMode::SparseMode { rendezvous } = self.delivery {
                        faults.routing.heal(&self.net, &mut self.spt, rendezvous);
                    }
                }
                let used = self.run_pipeline(seg_events, threads, true)?;
                self.fold_batch_degraded(seg, used, outcomes.as_deref_mut());
            }
            self.pipeline_counters.fault_segments += 1;
            if degraded {
                self.pipeline_counters.degraded_segments += 1;
            }
            start += seg;
        }
        Ok(())
    }

    /// Up-front dimensionality validation shared by the batch entry
    /// points, so a bad event rejects the batch before anything records.
    fn validate_batch(&self, events: &[Point]) -> Result<(), BrokerError> {
        for event in events {
            if event.dims() != self.space.dims() {
                return Err(BrokerError::DimensionMismatch {
                    expected: self.space.dims(),
                    got: event.dims(),
                });
            }
        }
        Ok(())
    }

    /// The parallel front of a batch publication: validates the batch,
    /// dispatches the fused match → cost → decide pass over the worker
    /// pool (created lazily on first use) and leaves the results in the
    /// per-worker arenas. Returns the number of workers used, which the
    /// fold needs to invert the block-cyclic assignment.
    ///
    /// In `degraded` mode (a fault has applied; the caller has already
    /// healed the routing rows this pass reads) the workers additionally
    /// partition each event's matched nodes by reachability and cost only
    /// the reachable prefix; the distribution decision is left to
    /// [`Broker::fold_batch_degraded`], which owns the step-clocked
    /// health state.
    fn run_pipeline(
        &mut self,
        events: &[Point],
        threads: Option<usize>,
        degraded: bool,
    ) -> Result<usize, BrokerError> {
        self.validate_batch(events)?;
        let publisher = self.publisher;
        self.spt
            .ensure(&self.net, publisher, &mut self.route_scratch);
        let requested = pubsub_parallel::effective_threads(threads);
        if requested > 1 && self.pool.is_none() && pubsub_parallel::effective_threads(None) > 1 {
            // Size the lazily created pool for the machine, not for this
            // call, so a later batch asking for more workers reuses it.
            // On a single-core host no pool is ever created here: pool
            // dispatch can only lose to the fused inline path, so a
            // deferred or explicit multi-worker request degenerates to
            // inline unless a pool was injected via the builder.
            self.pool = Some(Arc::new(WorkerPool::new(
                pubsub_parallel::effective_threads(None).max(requested),
            )));
        }
        let workers = match &self.pool {
            Some(pool) => requested.min(pool.threads()),
            None => 1,
        };
        if self.pipeline_states.len() < workers {
            self.pipeline_states
                .resize_with(workers, PublishScratch::default);
        }
        if self.pipeline_states.is_empty() {
            self.pipeline_states.push(PublishScratch::default());
        }

        // Everything the workers read, bound up front so the dispatch
        // below can borrow `pipeline_states` mutably alongside. The pass
        // itself lives in [`FusedPass::run`], shared byte-for-byte with
        // the concurrent serving executors ([`PublishView`]).
        let pub_view = self.spt.view(publisher).expect("ensured above");
        let sparse = match self.delivery {
            DeliveryMode::SparseMode { rendezvous } => {
                let rp_view = self.spt.view(rendezvous).expect("rendezvous SPT built");
                Some((rp_view, pub_view.dist(rendezvous)))
            }
            _ => None,
        };
        let pass = FusedPass {
            snapshot: &self.snapshot,
            policy: &self.policy,
            delivery: self.delivery,
            publisher,
            alm_dist: self.alm_dist.as_deref(),
            overlay: churn_view_of(&self.churn, &self.snapshot),
            pub_view,
            sparse,
            degraded,
            events,
            soa: None,
        };
        let trap = &self.panic_trap;
        let worker = |_w: usize, state: &mut PublishScratch, ranges: BlockRanges| {
            if trap
                .compare_exchange(_w, usize::MAX, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                panic!("injected worker panic (test hook)");
            }
            pass.run(state, ranges);
        };

        let run = if workers <= 1 {
            pipeline_inline(&mut self.pipeline_states[0], events.len(), worker);
            PipelineRun {
                workers: 1,
                quarantined: 0,
            }
        } else {
            self.pool
                .as_ref()
                .expect("pool exists when workers > 1")
                .try_pipeline(workers, &mut self.pipeline_states, events.len(), worker)
        };
        let used = run.workers;

        self.pipeline_counters.batches += 1;
        self.pipeline_counters.events += events.len() as u64;
        if used > 1 {
            self.pipeline_counters.pooled_batches += 1;
        } else {
            self.pipeline_counters.inline_batches += 1;
        }
        if run.quarantined > 0 {
            self.pipeline_counters.quarantined_workers += run.quarantined as u64;
            self.pipeline_counters.retried_batches += 1;
        }
        self.pipeline_counters.max_workers = self.pipeline_counters.max_workers.max(used as u64);
        if self.pipeline_states[..used].iter().any(|s| s.grew()) {
            self.pipeline_counters.arena_growths += 1;
        }
        // Drain the per-worker SIMD kernel tallies (every state, not just
        // `..used`: a quarantined worker's partial pass still dispatched
        // blocks worth counting).
        let mut kernels = KernelCounters::default();
        for state in &mut self.pipeline_states {
            kernels.merge(&state.matching.take_kernels());
        }
        self.pipeline_counters.match_blocks += kernels.blocks;
        self.pipeline_counters.simd_blocks += kernels.simd_blocks;
        self.pipeline_counters.scalar_blocks += kernels.scalar_blocks;
        self.pipeline_counters.match_lanes += kernels.lanes;
        Ok(used)
    }

    /// The sequential tail of a batch publication: walks the fused
    /// results **in global event order**, resolves multicast scheme costs
    /// through the epoch-keyed memo (walking each (epoch, publisher,
    /// group) at most once, exactly as [`Broker::decide_and_record`]
    /// does) and folds every event into the cumulative report. When
    /// `outcomes` is given, also materializes one [`PublishOutcome`] per
    /// event by copying the arena slices.
    fn fold_batch(&mut self, len: usize, used: usize, outcomes: Option<&mut Vec<PublishOutcome>>) {
        let batch = BatchMatches {
            states: &self.pipeline_states[..used],
            workers: used,
            len,
        };
        fold_pristine(
            batch,
            &self.snapshot,
            self.publisher,
            self.delivery,
            &self.spt,
            self.alm_dist.as_deref(),
            &mut self.scheme_memo,
            &mut self.scheme_walks,
            &mut self.cost_scratch,
            &mut self.report,
            outcomes,
        );
    }

    /// Folds one staged batch whose fused pass already ran on a serving
    /// executor thread (via [`crate::PublishView::process_into`]) into
    /// the broker — scheme-cost memoization, cumulative report, pipeline
    /// counters and SIMD-kernel tallies — materializing one
    /// [`PublishOutcome`] per event. Calling this for every executor
    /// batch **in submission order** reproduces, bit for bit, the report
    /// and outcomes a synchronous [`Broker::publish_batch`] sequence
    /// would have produced: the fused pass is byte-identical per event
    /// and the f64 accumulation order of the report is the fold order.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` (the epoch of the [`crate::PublishView`] the
    /// batch was processed under) differs from the broker's current
    /// snapshot epoch. The staged server's epoch barrier makes this
    /// impossible — control operations serialize through the same
    /// ordered queue — so a mismatch is a lost-update bug upstream, not
    /// an input error.
    pub fn fold_staged(
        &mut self,
        len: usize,
        epoch: u64,
        scratch: &mut PublishScratch,
        outcomes: &mut Vec<PublishOutcome>,
    ) {
        assert_eq!(
            epoch, self.snapshot.epoch,
            "epoch barrier violated: batch ran under epoch {epoch}, folding at {}",
            self.snapshot.epoch
        );
        self.pipeline_counters.batches += 1;
        self.pipeline_counters.events += len as u64;
        self.pipeline_counters.inline_batches += 1;
        if scratch.grew() {
            self.pipeline_counters.arena_growths += 1;
        }
        let kernels = scratch.matching.take_kernels();
        self.pipeline_counters.match_blocks += kernels.blocks;
        self.pipeline_counters.simd_blocks += kernels.simd_blocks;
        self.pipeline_counters.scalar_blocks += kernels.scalar_blocks;
        self.pipeline_counters.match_lanes += kernels.lanes;
        let batch = BatchMatches {
            states: std::slice::from_ref(scratch),
            workers: 1,
            len,
        };
        fold_pristine(
            batch,
            &self.snapshot,
            self.publisher,
            self.delivery,
            &self.spt,
            self.alm_dist.as_deref(),
            &mut self.scheme_memo,
            &mut self.scheme_walks,
            &mut self.cost_scratch,
            &mut self.report,
            Some(outcomes),
        );
    }

    /// Snapshots the publish-side read state into an owned
    /// [`PublishView`] — the shared read path of the concurrent serving
    /// pipeline. The view is pinned to the current snapshot epoch;
    /// rebuild it (and republish through the serving layer's versioned
    /// cell) after any control operation that changes what publishing
    /// reads: subscribe, unsubscribe, recompile, threshold or policy
    /// edits. The engine snapshot is Arc-shared; the churn overlay, SPT
    /// rows and policy are cloned, so view construction is
    /// control-plane-rate work, not per-batch work.
    pub fn publish_view(&mut self) -> PublishView {
        self.spt
            .ensure(&self.net, self.publisher, &mut self.route_scratch);
        if let DeliveryMode::SparseMode { rendezvous } = self.delivery {
            self.spt
                .ensure(&self.net, rendezvous, &mut self.route_scratch);
        }
        let overlay = self.churn.as_ref().and_then(|c| {
            // Same "compiled matcher alone is current" test as
            // `churn_view_of`, so view and synchronous paths agree on
            // when the overlay participates in matching.
            if c.overlay.is_empty() && c.tombstones.is_empty() {
                return None;
            }
            Some(OwnedOverlay {
                overlay: c.overlay.clone(),
                tombstones: c.tombstones.clone(),
                owners: c.overlay_owners.clone(),
                base_count: self.snapshot.compiled_count() as u32,
                max_node: c.overlay_max_node,
            })
        });
        PublishView {
            snapshot: Arc::clone(&self.snapshot),
            policy: self.policy.clone(),
            delivery: self.delivery,
            publisher: self.publisher,
            alm_dist: self.alm_dist.clone(),
            overlay,
            spt: self.spt.clone(),
            epoch: self.snapshot.epoch,
            dims: self.space.dims(),
            faults_active: self.faults.is_some(),
        }
    }

    /// The sequential tail of one *degraded* batch segment: walks the
    /// fused results in global event order, replaying per event exactly
    /// what [`Broker::publish_degraded`] does — advance the fault clock,
    /// evaluate group health under hysteresis at that event's step, walk
    /// the fallback ladder over the reachability-masked interested set,
    /// memoize scheme costs under the per-event fault stamp — and folds
    /// everything into the cumulative report. The workers already
    /// partitioned each event's nodes and costed the reachable prefix;
    /// only the step-clocked state lives here.
    fn fold_batch_degraded(
        &mut self,
        len: usize,
        used: usize,
        mut outcomes: Option<&mut Vec<PublishOutcome>>,
    ) {
        // The arenas move out of `self` for the duration of the fold so
        // the step-clock and health methods can borrow the broker.
        let states = std::mem::take(&mut self.pipeline_states);
        let snapshot = Arc::clone(&self.snapshot);
        let publisher = self.publisher;
        for i in 0..len {
            if i > 0 {
                // Fires nothing — the segment ends right before the next
                // scheduled plan event — but advances the per-event step
                // clock the health hysteresis is keyed on.
                self.tick_faults();
            }
            let batch = BatchMatches {
                states: &states[..used],
                workers: used,
                len,
            };
            let meta = batch.meta(i);
            let interested = batch.interested(i);
            let unreach = batch.unreachable(i);
            let group = (meta.group != NO_GROUP).then_some(meta.group as usize);
            let view = self
                .spt
                .view(publisher)
                .expect("healed by the segment driver");
            let faults = self.faults.as_mut().expect("degraded fold implies a plan");
            let health = match group {
                Some(q) => eval_group_health(
                    faults,
                    snapshot.epoch,
                    snapshot.groups.len(),
                    publisher,
                    q,
                    snapshot.groups.members(q),
                    view,
                ),
                None => GroupHealth::Healthy,
            };
            let fault_stamp = faults.routing.route_generation() + faults.decision_gen;
            let sparse = match self.delivery {
                DeliveryMode::SparseMode { rendezvous } => {
                    let rp_view = self
                        .spt
                        .view(rendezvous)
                        .expect("healed by the segment driver");
                    Some((rp_view, view.dist(rendezvous)))
                }
                _ => None,
            };
            let rp_reachable = sparse.is_none_or(|(_, d)| d.is_finite());

            let decision = if interested.is_empty() {
                Decision::Drop
            } else {
                match group {
                    None => Decision::Unicast {
                        reason: UnicastReason::CatchAll,
                    },
                    Some(q) => {
                        let members = snapshot.groups.members(q);
                        let ladder = match health {
                            GroupHealth::Severed => Decision::Unicast {
                                reason: UnicastReason::GroupSevered,
                            },
                            GroupHealth::Degraded => {
                                let reach_size =
                                    members.iter().filter(|&&m| view.reachable(m)).count();
                                match self.policy.decide_counts(
                                    Some(q),
                                    interested.len(),
                                    reach_size,
                                ) {
                                    Decision::Multicast { group } => {
                                        Decision::PartialMulticast { group }
                                    }
                                    other => other,
                                }
                            }
                            GroupHealth::Healthy => {
                                self.policy
                                    .decide_counts(Some(q), interested.len(), members.len())
                            }
                        };
                        if !rp_reachable
                            && matches!(
                                ladder,
                                Decision::Multicast { .. } | Decision::PartialMulticast { .. }
                            )
                        {
                            Decision::Unicast {
                                reason: UnicastReason::GroupSevered,
                            }
                        } else {
                            ladder
                        }
                    }
                }
            };

            let (unicast, ideal) = (meta.unicast, meta.ideal);
            let skipped = unreach.len() as u64;
            let (scheme, delivered, wasted) = match &decision {
                Decision::Drop => (
                    0.0,
                    Delivery::Dropped {
                        unreachable: unreach.len() as u32,
                    },
                    0,
                ),
                Decision::Unicast { .. } => (unicast, Delivery::Unicast, 0),
                Decision::Multicast { group: q } | Decision::PartialMulticast { group: q } => {
                    let members = snapshot.groups.members(*q);
                    let reach_members: Vec<NodeId> = members
                        .iter()
                        .copied()
                        .filter(|&m| view.reachable(m))
                        .collect();
                    let row = self.scheme_memo.slot(
                        snapshot.epoch,
                        fault_stamp,
                        publisher,
                        snapshot.groups.len(),
                    );
                    let scheme = match row[*q] {
                        Some(cost) => cost,
                        None => {
                            let cost = match self.delivery {
                                DeliveryMode::DenseMode => multicast_tree_cost_flat(
                                    view,
                                    &reach_members,
                                    &mut self.cost_scratch,
                                ),
                                DeliveryMode::SparseMode { .. } => {
                                    let (rp_view, pub_to_rp) = sparse.expect("bound above");
                                    sparse_mode_cost_flat(
                                        rp_view,
                                        pub_to_rp,
                                        &reach_members,
                                        &mut self.cost_scratch,
                                    )
                                }
                                DeliveryMode::ApplicationLevel => {
                                    unreachable!("fault plans are rejected for ALM delivery")
                                }
                            };
                            row[*q] = Some(cost);
                            self.scheme_walks += 1;
                            cost
                        }
                    };
                    let delivered = if matches!(decision, Decision::Multicast { .. }) {
                        Delivery::Multicast
                    } else {
                        Delivery::PartialMulticast
                    };
                    (
                        scheme,
                        delivered,
                        (reach_members.len() - interested.len()) as u64,
                    )
                }
            };
            let costs = MessageCosts {
                scheme,
                unicast,
                ideal,
            };
            self.report.record(costs, delivered, wasted, skipped);
            if let Some(out) = outcomes.as_mut() {
                out.push(PublishOutcome {
                    decision,
                    group_region: group,
                    matched_subscriptions: batch.subs(i).to_vec(),
                    interested: interested.to_vec(),
                    unreachable: unreach.to_vec(),
                    costs,
                });
            }
        }
        self.pipeline_states = states;
    }

    /// The sequential tail of a single publication: distribution
    /// decision, cost accounting and report recording. The publisher's
    /// SPT row must already be in the table. The per-event cost
    /// arithmetic here is what the fused batch pipeline replicates in
    /// its workers ([`Broker::run_pipeline`]) — the two must stay
    /// bit-identical.
    fn decide_and_record(
        &mut self,
        publisher: NodeId,
        event: &Point,
        matched_subscriptions: Vec<SubscriptionId>,
        interested: Vec<NodeId>,
    ) -> PublishOutcome {
        let snapshot = &self.snapshot;
        let group = snapshot.partition.group_of_point(event);
        let group_size = group.map_or(0, |q| snapshot.groups.members(q).len());
        let decision = self
            .policy
            .decide_counts(group, interested.len(), group_size);

        let (unicast, ideal) = match self.delivery {
            DeliveryMode::DenseMode => {
                let view = self.spt.view(publisher).expect("publisher SPT ensured");
                let pair = unicast_and_tree_cost(view, &interested, &mut self.cost_scratch);
                (pair.unicast, pair.tree)
            }
            _ => {
                let view = self.spt.view(publisher).expect("publisher SPT ensured");
                let unicast = unicast_cost_flat(view, &interested, &mut self.cost_scratch);
                let ideal = Self::send_cost(
                    self.delivery,
                    &self.spt,
                    self.alm_dist.as_deref(),
                    publisher,
                    &interested,
                    &mut self.cost_scratch,
                );
                (unicast, ideal)
            }
        };
        let (scheme, delivery, wasted) = match &decision {
            Decision::Drop => (0.0, Delivery::Dropped { unreachable: 0 }, 0),
            Decision::Unicast { .. } => (unicast, Delivery::Unicast, 0),
            // `decide_counts` never returns `PartialMulticast` (only the
            // degraded fault path synthesizes it); the arm resolves like
            // a full multicast for totality.
            Decision::Multicast { group: q } | Decision::PartialMulticast { group: q } => {
                // The scheme cost of a group send is event-independent, so
                // each (epoch, publisher, group) triple is walked at most
                // once; switching publishers does not evict other
                // publishers' rows.
                let members = snapshot.groups.members(*q);
                let row =
                    self.scheme_memo
                        .slot(snapshot.epoch, 0, publisher, snapshot.groups.len());
                let scheme = match row[*q] {
                    Some(cost) => cost,
                    None => {
                        let cost = Self::send_cost(
                            self.delivery,
                            &self.spt,
                            self.alm_dist.as_deref(),
                            publisher,
                            members,
                            &mut self.cost_scratch,
                        );
                        row[*q] = Some(cost);
                        self.scheme_walks += 1;
                        cost
                    }
                };
                (
                    scheme,
                    Delivery::Multicast,
                    (members.len() - interested.len()) as u64,
                )
            }
        };
        let costs = MessageCosts {
            scheme,
            unicast,
            ideal,
        };
        self.report.record(costs, delivery, wasted, 0);
        PublishOutcome {
            decision,
            group_region: group,
            matched_subscriptions,
            interested,
            unreachable: Vec::new(),
            costs,
        }
    }

    // ------------------------------------------------------------------
    // Fault injection: scheduled plans, degraded-mode delivery,
    // self-healing routing state.
    // ------------------------------------------------------------------

    /// Installs a deterministic fault schedule. Before each publication
    /// the broker fires every scheduled event whose step is due, then —
    /// once any fault has ever applied — publishes in degraded mode:
    /// matched subscribers are masked by reachability from the publisher,
    /// delivery walks the multicast → partial multicast → unicast
    /// fallback ladder driven by per-(publisher, group) health (with
    /// hysteresis, so a flapping link does not thrash the scheme-cost
    /// memo), and routing rows are lazily re-derived against the fault
    /// overlay. An *empty* plan changes nothing: the pristine fast path
    /// keeps running and every outcome stays bit-identical to a broker
    /// without a plan.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::InvalidConfig`] for application-level-multicast
    ///   delivery (the precomputed ALM distance matrix has no fault
    ///   overlay) or when a plan is already installed;
    /// * [`BrokerError::UnknownNode`] / [`BrokerError::InvalidConfig`]
    ///   for plan events naming out-of-topology nodes or carrying an
    ///   invalid degrade factor.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<(), BrokerError> {
        if self.delivery == DeliveryMode::ApplicationLevel {
            return Err(BrokerError::InvalidConfig {
                parameter: "delivery",
                constraint: "dense- or sparse-mode for fault injection",
            });
        }
        if self.faults.is_some() {
            return Err(BrokerError::InvalidConfig {
                parameter: "fault_plan",
                constraint: "at most one installed plan per broker",
            });
        }
        for scheduled in plan.events() {
            self.validate_fault_event(&scheduled.event)?;
        }
        self.faults = Some(FaultState {
            routing: FaultyRouting::new(&self.net, &self.spt),
            plan,
            next_event: 0,
            step: 0,
            health_epoch: self.snapshot.epoch,
            health: Vec::new(),
            decision_gen: 0,
        });
        Ok(())
    }

    /// Applies one fault or repair immediately, out of band of any
    /// scheduled plan (an empty plan is installed on first use). Returns
    /// whether the event changed the overlay at all.
    ///
    /// # Errors
    ///
    /// As [`Broker::install_fault_plan`].
    pub fn inject_fault(&mut self, event: &FaultEvent) -> Result<bool, BrokerError> {
        self.validate_fault_event(event)?;
        if self.faults.is_none() {
            self.install_fault_plan(FaultPlan::new())?;
        }
        let faults = self.faults.as_mut().expect("installed above");
        Ok(faults.routing.apply(&self.net, &self.spt, event)?)
    }

    /// Whether a fault plan is installed (even an empty one). Installed
    /// faults cut batch publishes into fault-clock segments, each still
    /// dispatched on the worker pipeline, with the per-event fault clock
    /// replayed exactly by the sequential fold.
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// The fault-overlay epoch: 0 with no (or an untouched) fault state,
    /// bumping on every fault or repair that changed the overlay.
    pub fn fault_epoch(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.routing.fault_epoch())
    }

    /// The committed delivery health of one (publisher, group) pair —
    /// `Healthy` when no faults are installed or the pair has never been
    /// evaluated.
    pub fn group_health(&self, publisher: NodeId, group: usize) -> GroupHealth {
        self.faults
            .as_ref()
            .and_then(|f| {
                f.health
                    .iter()
                    .find(|(p, _)| *p == publisher)
                    .and_then(|(_, row)| row.get(group))
                    .map(|slot| slot.committed)
            })
            .unwrap_or(GroupHealth::Healthy)
    }

    /// Test hook: arms pool worker `worker` to panic once at the start
    /// of its next fused batch pass, exercising the quarantine-and-retry
    /// path end to end.
    #[doc(hidden)]
    pub fn arm_worker_panic(&mut self, worker: usize) {
        self.panic_trap.store(worker, Ordering::SeqCst);
    }

    /// Validates one fault event against the topology (node ranges,
    /// degrade factor) so scheduled applications cannot fail
    /// mid-publish.
    fn validate_fault_event(&self, event: &FaultEvent) -> Result<(), BrokerError> {
        let nodes = self.topology.graph().node_count();
        let check = |n: NodeId| -> Result<(), BrokerError> {
            if n.0 as usize >= nodes {
                Err(BrokerError::UnknownNode { node: n.0 })
            } else {
                Ok(())
            }
        };
        match *event {
            FaultEvent::LinkCut { a, b } | FaultEvent::LinkRestore { a, b } => {
                check(a)?;
                check(b)
            }
            FaultEvent::LinkDegrade { a, b, factor } => {
                check(a)?;
                check(b)?;
                if factor >= 1.0 && factor.is_finite() {
                    Ok(())
                } else {
                    Err(BrokerError::InvalidConfig {
                        parameter: "factor",
                        constraint: "1 <= factor < inf",
                    })
                }
            }
            FaultEvent::NodeDown { node } | FaultEvent::NodeUp { node } => check(node),
        }
    }

    /// Fires every scheduled fault due at the current publish step, then
    /// advances the step clock. Returns whether the broker must take the
    /// degraded publish path (any fault has ever been applied).
    fn tick_faults(&mut self) -> bool {
        let Some(faults) = self.faults.as_mut() else {
            return false;
        };
        while let Some(scheduled) = faults.plan.events().get(faults.next_event) {
            if scheduled.at > faults.step {
                break;
            }
            let event = scheduled.event;
            faults.next_event += 1;
            faults
                .routing
                .apply(&self.net, &self.spt, &event)
                .expect("plan events are validated at install time");
        }
        faults.step += 1;
        faults.routing.ever_faulted()
    }

    /// The degraded-mode publish path, taken once any fault has ever
    /// been applied: heals (only) the routing rows this publish reads,
    /// masks matched subscribers by reachability, walks the health-driven
    /// fallback ladder and memoizes scheme costs under the fault stamp.
    /// Kept separate from the pristine path so a broker whose plan never
    /// fires stays on the untouched fast path.
    fn publish_degraded(
        &mut self,
        publisher: NodeId,
        event: &Point,
    ) -> Result<PublishOutcome, BrokerError> {
        {
            let faults = self.faults.as_mut().expect("degraded path implies a plan");
            if !faults.routing.node_up(publisher) {
                return Err(BrokerError::Net(NetError::Unreachable {
                    node: publisher.0,
                }));
            }
            // Self-healing: re-derive the stale rows this publish reads,
            // lazily, against the current overlay.
            faults.routing.heal(&self.net, &mut self.spt, publisher);
            if let DeliveryMode::SparseMode { rendezvous } = self.delivery {
                faults.routing.heal(&self.net, &mut self.spt, rendezvous);
            }
        }
        let (matched_subscriptions, matched) = self.match_only(event);
        let snapshot = Arc::clone(&self.snapshot);
        let view = self.spt.view(publisher).expect("healed above");
        let mut interested = Vec::with_capacity(matched.len());
        let mut unreachable = Vec::new();
        for &n in &matched {
            if view.reachable(n) {
                interested.push(n);
            } else {
                unreachable.push(n);
            }
        }
        let group = snapshot.partition.group_of_point(event);

        let faults = self.faults.as_mut().expect("degraded path implies a plan");
        let health = match group {
            Some(q) => eval_group_health(
                faults,
                snapshot.epoch,
                snapshot.groups.len(),
                publisher,
                q,
                snapshot.groups.members(q),
                view,
            ),
            None => GroupHealth::Healthy,
        };
        let fault_stamp = faults.routing.route_generation() + faults.decision_gen;

        // In sparse mode a down or cut-off rendezvous point severs every
        // shared tree: no multicast flavor is available at all.
        let sparse = match self.delivery {
            DeliveryMode::SparseMode { rendezvous } => {
                let rp_view = self.spt.view(rendezvous).expect("healed above");
                Some((rp_view, view.dist(rendezvous)))
            }
            _ => None,
        };
        let rp_reachable = sparse.is_none_or(|(_, d)| d.is_finite());

        let decision = if interested.is_empty() {
            Decision::Drop
        } else {
            match group {
                None => Decision::Unicast {
                    reason: UnicastReason::CatchAll,
                },
                Some(q) => {
                    let members = snapshot.groups.members(q);
                    let ladder = match health {
                        GroupHealth::Severed => Decision::Unicast {
                            reason: UnicastReason::GroupSevered,
                        },
                        GroupHealth::Degraded => {
                            let reach_size = members.iter().filter(|&&m| view.reachable(m)).count();
                            match self
                                .policy
                                .decide_counts(Some(q), interested.len(), reach_size)
                            {
                                Decision::Multicast { group } => {
                                    Decision::PartialMulticast { group }
                                }
                                other => other,
                            }
                        }
                        GroupHealth::Healthy => {
                            self.policy
                                .decide_counts(Some(q), interested.len(), members.len())
                        }
                    };
                    if !rp_reachable
                        && matches!(
                            ladder,
                            Decision::Multicast { .. } | Decision::PartialMulticast { .. }
                        )
                    {
                        Decision::Unicast {
                            reason: UnicastReason::GroupSevered,
                        }
                    } else {
                        ladder
                    }
                }
            }
        };

        let (unicast, ideal) = match self.delivery {
            DeliveryMode::DenseMode => {
                let pair = unicast_and_tree_cost(view, &interested, &mut self.cost_scratch);
                (pair.unicast, pair.tree)
            }
            DeliveryMode::SparseMode { .. } => {
                let (rp_view, pub_to_rp) = sparse.expect("bound above");
                let unicast = unicast_cost_flat(view, &interested, &mut self.cost_scratch);
                let ideal = if pub_to_rp.is_finite() {
                    sparse_mode_cost_flat(rp_view, pub_to_rp, &interested, &mut self.cost_scratch)
                } else {
                    // No shared tree exists at all: unicast is the only
                    // scheme left and the reference collapses onto it.
                    unicast
                };
                (unicast, ideal)
            }
            DeliveryMode::ApplicationLevel => {
                unreachable!("fault plans are rejected for ALM delivery")
            }
        };

        let skipped = unreachable.len() as u64;
        let (scheme, delivered, wasted) = match &decision {
            Decision::Drop => (
                0.0,
                Delivery::Dropped {
                    unreachable: unreachable.len() as u32,
                },
                0,
            ),
            Decision::Unicast { .. } => (unicast, Delivery::Unicast, 0),
            // Both multicast flavors cost (and deliver) over the
            // *reachable* member subset: an interested member is covered
            // exactly when the healed tree still reaches it, and pruned
            // branches cost nothing — this also keeps the scheme cost
            // finite while hysteresis lags a committed transition.
            Decision::Multicast { group: q } | Decision::PartialMulticast { group: q } => {
                let members = snapshot.groups.members(*q);
                let reach_members: Vec<NodeId> = members
                    .iter()
                    .copied()
                    .filter(|&m| view.reachable(m))
                    .collect();
                let row = self.scheme_memo.slot(
                    snapshot.epoch,
                    fault_stamp,
                    publisher,
                    snapshot.groups.len(),
                );
                let scheme = match row[*q] {
                    Some(cost) => cost,
                    None => {
                        let cost = match self.delivery {
                            DeliveryMode::DenseMode => multicast_tree_cost_flat(
                                view,
                                &reach_members,
                                &mut self.cost_scratch,
                            ),
                            DeliveryMode::SparseMode { .. } => {
                                let (rp_view, pub_to_rp) = sparse.expect("bound above");
                                sparse_mode_cost_flat(
                                    rp_view,
                                    pub_to_rp,
                                    &reach_members,
                                    &mut self.cost_scratch,
                                )
                            }
                            DeliveryMode::ApplicationLevel => {
                                unreachable!("fault plans are rejected for ALM delivery")
                            }
                        };
                        row[*q] = Some(cost);
                        self.scheme_walks += 1;
                        cost
                    }
                };
                let delivered = if matches!(decision, Decision::Multicast { .. }) {
                    Delivery::Multicast
                } else {
                    Delivery::PartialMulticast
                };
                (
                    scheme,
                    delivered,
                    (reach_members.len() - interested.len()) as u64,
                )
            }
        };
        let costs = MessageCosts {
            scheme,
            unicast,
            ideal,
        };
        self.report.record(costs, delivered, wasted, skipped);
        Ok(PublishOutcome {
            decision,
            group_region: group,
            matched_subscriptions,
            interested,
            unreachable,
            costs,
        })
    }

    /// The cost of one multicast to the *whole* group `q` from the
    /// default publisher under the configured delivery mode — the
    /// per-group fixed cost the adaptive controller balances against
    /// unicast. Cold path (`&self`): allocates a fresh scratch rather
    /// than borrowing the broker's.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn group_multicast_cost(&self, q: usize) -> f64 {
        let mut scratch = CostScratch::new();
        Self::send_cost(
            self.delivery,
            &self.spt,
            self.alm_dist.as_deref(),
            self.publisher,
            self.snapshot.groups.members(q),
            &mut scratch,
        )
    }

    /// Cost of one group send from `publisher` to `members` under the
    /// given delivery mode. Free of `&self` so the hot path can borrow
    /// the SPT table and the cost scratch disjointly. The publisher's
    /// (and, in sparse mode, the rendezvous point's) SPT row must be in
    /// the table.
    fn send_cost(
        delivery: DeliveryMode,
        spt: &SptTable,
        alm_dist: Option<&[Vec<f64>]>,
        publisher: NodeId,
        members: &[NodeId],
        scratch: &mut CostScratch,
    ) -> f64 {
        match delivery {
            DeliveryMode::DenseMode => {
                let view = spt.view(publisher).expect("publisher SPT ensured");
                multicast_tree_cost_flat(view, members, scratch)
            }
            DeliveryMode::SparseMode { rendezvous } => {
                let pub_view = spt.view(publisher).expect("publisher SPT ensured");
                let rp_view = spt.view(rendezvous).expect("rendezvous SPT built");
                sparse_mode_cost_flat(rp_view, pub_view.dist(rendezvous), members, scratch)
            }
            DeliveryMode::ApplicationLevel => Self::alm_cost(
                alm_dist.expect("ALM mode precomputes this"),
                publisher,
                members,
            ),
        }
    }

    /// Greedy Prim overlay over the precomputed distance matrix.
    fn alm_cost(dist: &[Vec<f64>], publisher: NodeId, members: &[NodeId]) -> f64 {
        let mut uniq: Vec<usize> = Vec::new();
        for &m in members {
            let i = m.0 as usize;
            if m != publisher && !uniq.contains(&i) {
                uniq.push(i);
            }
        }
        if uniq.is_empty() {
            return 0.0;
        }
        let src = publisher.0 as usize;
        let n = uniq.len();
        let mut in_tree = vec![false; n];
        let mut best: Vec<f64> = uniq.iter().map(|&m| dist[src][m]).collect();
        let mut total = 0.0;
        for _ in 0..n {
            let mut pick = usize::MAX;
            let mut pick_d = f64::INFINITY;
            for i in 0..n {
                if !in_tree[i] && best[i] < pick_d {
                    pick_d = best[i];
                    pick = i;
                }
            }
            in_tree[pick] = true;
            total += pick_d;
            for i in 0..n {
                if !in_tree[i] {
                    best[i] = best[i].min(dist[uniq[pick]][uniq[i]]);
                }
            }
        }
        total
    }

    // ------------------------------------------------------------------
    // Live churn: subscribe / unsubscribe / recompile.
    // ------------------------------------------------------------------

    /// Adds a subscription live, without recompiling the engine: the
    /// subscription lands in the delta overlay (matched by linear scan
    /// merged with the flat index) and the multicast groups are updated
    /// exactly under the current partition. When accumulated churn trips
    /// the clusterer's drift threshold, a full [`Broker::recompile`] runs
    /// automatically.
    ///
    /// Returns the stable handle for [`Broker::unsubscribe`]; handles
    /// survive recompiles.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownNode`] for an out-of-topology node;
    /// * [`BrokerError::DimensionMismatch`] for a wrong-dimensional
    ///   rectangle.
    pub fn subscribe(
        &mut self,
        node: NodeId,
        rect: Rect,
    ) -> Result<SubscriptionHandle, BrokerError> {
        if node.0 as usize >= self.topology.graph().node_count() {
            return Err(BrokerError::UnknownNode { node: node.0 });
        }
        if rect.dims() != self.space.dims() {
            return Err(BrokerError::DimensionMismatch {
                expected: self.space.dims(),
                got: rect.dims(),
            });
        }
        self.ensure_churn_state()?;
        let handle = self.registry.insert(node, rect.clone())?;
        // Captured up front (the rect moves into the clusterer below);
        // journal-less brokers skip the clone entirely.
        let journal_op = self.journal.is_some().then(|| JournalOp::Subscribe {
            handle: handle.raw(),
            node: node.0,
            rect: rect.clone(),
        });
        let clamped = self.space.clamp(&rect);
        let base = self.snapshot.compiled_count() as u32;
        let churn = self.churn.as_mut().expect("ensured above");
        let engine_id = base + churn.overlay_owners.len() as u32;
        churn
            .overlay
            .insert(Entry::new(clamped.clone(), EntryId(engine_id)))?;
        churn.overlay_owners.push(node);
        churn.overlay_handles.push(Some(handle));
        churn.overlay_max_node = churn.overlay_max_node.max(node.0);
        let ch = churn.clusterer.insert(node.0 as usize, rect)?;
        churn.cl_handles.insert(handle, ch);
        self.registry.set_engine_id(handle, engine_id);
        self.counters.subscribes += 1;
        self.after_churn_op(node, &clamped, 1)?;
        // Append-after-apply: if this fails the op is applied in memory
        // but must not be acked — the caller sees the journal error.
        if let Some(op) = journal_op {
            self.journal_append(&op)?;
            self.journal_snapshot_if_due()?;
        }
        Ok(handle)
    }

    /// Removes a live subscription by handle. Compiled subscriptions are
    /// tombstoned (filtered out of every match) until the next recompile;
    /// overlay subscriptions are dropped immediately. Groups are updated
    /// exactly, and heavy churn triggers a full recompile, as in
    /// [`Broker::subscribe`].
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownHandle`] for a handle that is not
    /// live.
    pub fn unsubscribe(&mut self, handle: SubscriptionHandle) -> Result<(), BrokerError> {
        if !self.registry.contains(handle) {
            return Err(BrokerError::UnknownHandle {
                handle: handle.raw(),
            });
        }
        self.ensure_churn_state()?;
        let engine_id = self.registry.engine_id(handle).expect("checked live");
        let (node, rect) = self.registry.remove(handle)?;
        let clamped = self.space.clamp(&rect);
        let base = self.snapshot.compiled_count() as u32;
        let churn = self.churn.as_mut().expect("ensured above");
        if engine_id < base {
            churn.tombstones.insert(EntryId(engine_id));
        } else {
            churn.overlay.remove(EntryId(engine_id));
            churn.overlay_handles[(engine_id - base) as usize] = None;
        }
        let ch = churn.cl_handles.remove(&handle).expect("mirrored on add");
        churn.clusterer.remove(ch)?;
        self.counters.unsubscribes += 1;
        self.after_churn_op(node, &clamped, -1)?;
        if self.journal.is_some() {
            self.journal_append(&JournalOp::Unsubscribe {
                handle: handle.raw(),
            })?;
            self.journal_snapshot_if_due()?;
        }
        Ok(())
    }

    /// Recompiles the whole engine from the registry's live
    /// subscriptions: fresh matcher, grid model, partition and groups —
    /// bit-identical to [`BrokerBuilder::build`] over the same
    /// subscription list — then swaps the snapshot (epoch + 1) and clears
    /// the overlay and tombstones. [`SubscriptionId`]s are renumbered in
    /// registry (insertion) order; handles are unaffected. Per-group
    /// threshold overrides are cleared (group identities change); the
    /// cost report is kept.
    ///
    /// # Errors
    ///
    /// Propagates compile errors; the broker is unchanged on error.
    pub fn recompile(&mut self) -> Result<(), BrokerError> {
        self.recompile_inner()?;
        if self.journal.is_some() {
            self.journal_append(&JournalOp::Recompile)?;
            self.journal_snapshot_if_due()?;
        }
        Ok(())
    }

    /// [`Broker::recompile`] without the journal hook — the shared body
    /// for explicit recompiles and the drift/config-triggered internal
    /// ones. Internal recompiles are not journaled: they are
    /// registry-neutral, replay treats `Recompile` as a no-op, and
    /// appending mid-operation would let the snapshot cadence fire while
    /// the registry is ahead of the WAL.
    fn recompile_inner(&mut self) -> Result<(), BrokerError> {
        let engine = compile_engine(
            &self.space,
            &SubSource::Registry(&self.registry),
            self.stree_config,
            &self.clustering,
            self.grid_cells,
            self.density.as_deref(),
            self.covering.as_ref(),
        )?;
        // Commit point: nothing below can fail (the clusterer re-adoption
        // is over the same grid by construction).
        let id_to_handle: Vec<SubscriptionHandle> =
            self.registry.live().map(|(h, _, _)| h).collect();
        for (i, handle) in id_to_handle.iter().enumerate() {
            self.registry.set_engine_id(*handle, i as u32);
        }
        self.snapshot = Arc::new(EngineSnapshot {
            epoch: self.snapshot.epoch + 1,
            matcher: Arc::new(engine.matcher),
            grid_model: Arc::new(engine.grid_model),
            partition: Arc::new(engine.partition),
            groups: Arc::new(engine.groups),
            id_to_handle: Arc::new(id_to_handle),
        });
        self.policy.clear_group_thresholds();
        self.counters.recompiles += 1;
        if let Some(churn) = self.churn.as_mut() {
            churn.overlay.clear();
            churn.tombstones.clear();
            churn.overlay_owners.clear();
            churn.overlay_handles.clear();
            churn.overlay_max_node = 0;
            churn.ops_since_refresh = 0;
            churn
                .clusterer
                .adopt_partition(&self.snapshot.partition)
                .expect("clusterer grid matches the compiled grid");
            churn.group_rc = rebuild_group_rc(&churn.clusterer, &self.snapshot.partition);
            debug_assert_eq!(
                rc_members(&churn.group_rc),
                (0..self.snapshot.groups.len())
                    .map(|q| self.snapshot.groups.members(q).to_vec())
                    .collect::<Vec<_>>(),
                "refcount-derived groups must equal compiled groups"
            );
        }
        Ok(())
    }

    /// Appends one op to the journal. Only called when a journal is
    /// attached, and only once the op is fully applied in memory.
    fn journal_append(&mut self, op: &JournalOp) -> Result<(), BrokerError> {
        self.journal.as_mut().expect("caller checked").append(op)
    }

    /// Writes a registry snapshot (truncating the WAL) when the cadence
    /// is due. Only called at operation boundaries, where the WAL fully
    /// reflects the registry — never mid-op, where a snapshot would
    /// double-count the record still in flight.
    fn journal_snapshot_if_due(&mut self) -> Result<(), BrokerError> {
        let journal = self.journal.as_mut().expect("caller checked");
        if journal.snapshot_due() {
            journal.write_snapshot(&self.registry)?;
        }
        Ok(())
    }

    /// The shared tail of every churn operation: recompile on drift,
    /// otherwise fold the operation's group-membership delta into the
    /// snapshot and periodically refresh the partition locally.
    fn after_churn_op(
        &mut self,
        node: NodeId,
        clamped: &Rect,
        delta: i32,
    ) -> Result<(), BrokerError> {
        if self
            .churn
            .as_ref()
            .expect("churn ops come from churn paths")
            .clusterer
            .needs_full_recluster()
        {
            return self.recompile_inner();
        }
        let churn = self.churn.as_mut().expect("checked above");
        let snapshot = &self.snapshot;
        let mut dirty: Vec<usize> = Vec::new();
        for cell in snapshot.partition.grid().cells_intersecting(clamped) {
            let Some(q) = snapshot.partition.group_of_cell(cell) else {
                continue;
            };
            let rc = &mut churn.group_rc[q][node.0 as usize];
            if delta > 0 {
                if *rc == 0 && !dirty.contains(&q) {
                    dirty.push(q);
                }
                *rc += 1;
            } else {
                debug_assert!(*rc > 0, "unbalanced group refcount");
                *rc -= 1;
                if *rc == 0 && !dirty.contains(&q) {
                    dirty.push(q);
                }
            }
        }
        churn.ops_since_refresh += 1;
        if churn.ops_since_refresh >= self.local_refresh_every {
            // The refcounts already include this op; hand its dirty set to
            // the refresh so the op's membership delta is re-materialized
            // even when no cell moves between partitions.
            return self.local_refresh(dirty);
        }
        if !dirty.is_empty() {
            let members: Vec<Vec<NodeId>> = (0..snapshot.groups.len())
                .map(|q| {
                    if dirty.contains(&q) {
                        dense_members(&churn.group_rc[q])
                    } else {
                        snapshot.groups.members(q).to_vec()
                    }
                })
                .collect();
            let groups = Arc::new(MulticastGroups::from_members(members));
            self.bump_snapshot(None, groups);
        }
        Ok(())
    }

    /// Runs an incremental-clusterer local update and folds the refreshed
    /// partition (and the groups re-derived from the refcounts) into a
    /// new snapshot. Per-group threshold overrides are kept: a local
    /// update preserves group identities (surviving cells keep their
    /// group). `dirty` seeds the set of groups whose members must be
    /// re-derived — the caller's pending membership delta (refcounts
    /// already folded in, snapshot members not yet) — and is extended
    /// with every group a cell moved into or out of.
    ///
    /// The refcounts are updated by *diffing* the partitions — only cells
    /// that changed groups move their counts — so the refresh costs
    /// O(cells + moved-cell incidences), not a full rebuild over every
    /// (cell, subscriber) incidence.
    fn local_refresh(&mut self, mut dirty: Vec<usize>) -> Result<(), BrokerError> {
        let churn = self.churn.as_mut().expect("called from churn path");
        let old_partition = Arc::clone(&self.snapshot.partition);
        let partition = churn.clusterer.partition()?;
        if partition.group_count() == old_partition.group_count() {
            for i in 0..partition.grid().cell_count() {
                let cell = CellId(i);
                let old_q = old_partition.group_of_cell(cell);
                let new_q = partition.group_of_cell(cell);
                if old_q == new_q {
                    continue;
                }
                let counts: Vec<(usize, u32)> = churn.clusterer.cell_refcounts(cell).collect();
                if let Some(q) = old_q {
                    if !dirty.contains(&q) {
                        dirty.push(q);
                    }
                    for &(s, c) in &counts {
                        churn.group_rc[q][s] -= c;
                    }
                }
                if let Some(q) = new_q {
                    if !dirty.contains(&q) {
                        dirty.push(q);
                    }
                    for &(s, c) in &counts {
                        churn.group_rc[q][s] += c;
                    }
                }
            }
            debug_assert_eq!(
                churn.group_rc,
                rebuild_group_rc(&churn.clusterer, &partition),
                "diffed refcounts must equal a full rebuild"
            );
        } else {
            // A local update never changes the group count; this arm only
            // guards against future clusterer behaviour changes.
            churn.group_rc = rebuild_group_rc(&churn.clusterer, &partition);
            dirty = (0..partition.group_count()).collect();
        }
        let snapshot = &self.snapshot;
        let members: Vec<Vec<NodeId>> = (0..partition.group_count())
            .map(|q| {
                if dirty.contains(&q) || q >= snapshot.groups.len() {
                    dense_members(&churn.group_rc[q])
                } else {
                    snapshot.groups.members(q).to_vec()
                }
            })
            .collect();
        let groups = Arc::new(MulticastGroups::from_members(members));
        churn.ops_since_refresh = 0;
        self.counters.local_refreshes += 1;
        self.bump_snapshot(Some(Arc::new(partition)), groups);
        Ok(())
    }

    /// Swaps in a new snapshot sharing everything except the partition
    /// (if given) and groups; bumps the epoch.
    fn bump_snapshot(
        &mut self,
        partition: Option<Arc<SpacePartition>>,
        groups: Arc<MulticastGroups>,
    ) {
        let old = &self.snapshot;
        self.snapshot = Arc::new(EngineSnapshot {
            epoch: old.epoch + 1,
            matcher: Arc::clone(&old.matcher),
            grid_model: Arc::clone(&old.grid_model),
            partition: partition.unwrap_or_else(|| Arc::clone(&old.partition)),
            groups,
            id_to_handle: Arc::clone(&old.id_to_handle),
        });
    }

    /// Creates the churn machinery on the first subscribe/unsubscribe:
    /// a mirror clusterer seeded with every live subscription, synced to
    /// the current snapshot's partition, plus empty overlay/tombstones.
    fn ensure_churn_state(&mut self) -> Result<(), BrokerError> {
        if self.churn.is_some() {
            return Ok(());
        }
        let grid = self.snapshot.grid_model.grid().clone();
        let node_count = self.topology.graph().node_count();
        let space_volume = self.space.bounds().volume();
        let density = self.density.as_deref();
        let mut clusterer = IncrementalClusterer::new(
            grid,
            node_count,
            move |r| match density {
                Some(f) => f(r),
                None => r.volume() / space_volume,
            },
            self.clustering,
            self.recluster_fraction,
        )?;
        let mut cl_handles = HashMap::with_capacity(self.registry.len());
        for (handle, node, rect) in self.registry.live() {
            let ch = clusterer.insert(node.0 as usize, rect.clone())?;
            cl_handles.insert(handle, ch);
        }
        clusterer
            .adopt_partition(&self.snapshot.partition)
            .expect("snapshot partition is over the compile grid");
        let group_rc = rebuild_group_rc(&clusterer, &self.snapshot.partition);
        self.churn = Some(ChurnState {
            clusterer,
            cl_handles,
            group_rc,
            overlay: DeltaOverlay::new(),
            tombstones: Tombstones::new(),
            overlay_owners: Vec::new(),
            overlay_handles: Vec::new(),
            overlay_max_node: 0,
            ops_since_refresh: 0,
        });
        Ok(())
    }

    /// The overlay view for match-time merging, or `None` when the
    /// compiled matcher alone is current (no churn since the last
    /// recompile).
    fn churn_view(&self) -> Option<MatchOverlay<'_>> {
        churn_view_of(&self.churn, &self.snapshot)
    }

    // ------------------------------------------------------------------
    // Introspection and configuration.
    // ------------------------------------------------------------------

    /// The cumulative cost report since construction (or the last
    /// [`Broker::reset_report`]).
    pub fn report(&self) -> &CostReport {
        &self.report
    }

    /// Clears the cumulative report.
    pub fn reset_report(&mut self) {
        self.report = CostReport::default();
    }

    /// Changes the distribution threshold `t` without rebuilding the
    /// index, clustering or groups — threshold sweeps (Figure 6) only
    /// re-publish.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidConfig`] unless `0 ≤ t ≤ 1`.
    pub fn set_threshold(&mut self, threshold: f64) -> Result<(), BrokerError> {
        self.policy = DistributionPolicy::new(threshold)?;
        Ok(())
    }

    /// Re-clusters the event space with a different configuration by
    /// recompiling the engine into a fresh snapshot (the matcher is
    /// rebuilt too, identically — matching behaviour does not change).
    /// The routing caches and the report are kept; per-group threshold
    /// overrides are cleared (group identities change).
    ///
    /// # Errors
    ///
    /// Propagates clustering configuration errors; the broker is left
    /// unchanged on error.
    pub fn set_clustering(&mut self, config: &ClusteringConfig) -> Result<(), BrokerError> {
        let old_config = self.clustering;
        // The mirror clusterer bakes in the old config; drop it so it is
        // lazily recreated with the new one.
        let old_churn = self.churn.take();
        self.clustering = *config;
        match self.recompile_inner() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.clustering = old_config;
                self.churn = old_churn;
                Err(e)
            }
        }
    }

    /// Matches an event without publishing: no decision, no cost, no
    /// report mutation. Returns the matching subscription ids and the
    /// deduplicated interested subscriber nodes. Uses thread-local
    /// scratch; hot callers with their own buffers should prefer
    /// [`Broker::match_only_into`].
    pub fn match_only(&self, event: &Point) -> (Vec<SubscriptionId>, Vec<NodeId>) {
        let mut subs = Vec::new();
        let mut nodes = Vec::new();
        matcher::with_thread_scratch(|scratch| {
            self.match_only_into(event, scratch, &mut subs, &mut nodes);
        });
        (subs, nodes)
    }

    /// [`Broker::match_only`] into caller-provided buffers: `subs` and
    /// `nodes` are cleared and refilled; with a warm scratch the call is
    /// allocation-free apart from output growth. Merges the churn overlay
    /// when one is pending.
    pub fn match_only_into(
        &self,
        event: &Point,
        scratch: &mut MatchScratch,
        subs: &mut Vec<SubscriptionId>,
        nodes: &mut Vec<NodeId>,
    ) {
        match self.churn_view() {
            Some(view) => self
                .snapshot
                .matcher
                .match_event_overlaid_into(event, &view, scratch, subs, nodes),
            None => self
                .snapshot
                .matcher
                .match_event_into(event, scratch, subs, nodes),
        }
    }

    /// The current engine snapshot (cheap `Arc` clone). The clone stays
    /// internally consistent — if stale — across later broker mutations.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// The current snapshot epoch (bumps on every snapshot swap).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch
    }

    /// Churn/epoch counters: subscribes, unsubscribes, recompiles, local
    /// refreshes, and the current overlay/tombstone backlog.
    pub fn churn_counters(&self) -> ChurnCounters {
        let mut counters = self.counters;
        counters.epoch = self.snapshot.epoch;
        if let Some(churn) = &self.churn {
            counters.overlay_len = churn.overlay.len();
            counters.tombstone_len = churn.tombstones.len();
        }
        counters
    }

    /// How many scheme-cost tree walks have actually run (memo misses).
    /// Diagnostics for the epoch-keyed per-publisher memo.
    pub fn scheme_cost_walks(&self) -> u64 {
        self.scheme_walks
    }

    /// Batch-pipeline counters: pooled vs inline dispatches, events
    /// processed, the largest worker fan-out, and how often the
    /// per-worker arenas grew (stops moving once the states are warm).
    pub fn pipeline_counters(&self) -> PipelineCounters {
        self.pipeline_counters
    }

    /// One coherent snapshot of every counter family — epoch, cost
    /// report, churn counters, pipeline/serving counters and memo
    /// misses — for serving front-ends and benchmarks that poll metrics
    /// as a unit instead of stitching the individual accessors together.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            epoch: self.snapshot.epoch,
            report: self.report,
            churn: self.churn_counters(),
            pipeline: self.pipeline_counters,
            scheme_cost_walks: self.scheme_walks,
            recovery: self.recovery,
        }
    }

    /// Counters describing the recovery that produced this broker and
    /// any supervisor restarts reported since (all zero for a broker that
    /// was built fresh and never supervised through a failure).
    pub fn recovery_counters(&self) -> RecoveryCounters {
        self.recovery
    }

    /// Reports supervised-restart work from a serving front-end:
    /// `restarts` stage restarts and `replayed_batches` in-flight batches
    /// replayed from the sequence window (both deltas, accumulated).
    pub fn note_recovery(&mut self, restarts: u64, replayed_batches: u64) {
        self.recovery.restarts += restarts;
        self.recovery.replayed_batches += replayed_batches;
    }

    /// The attached durable journal — its WAL length, directory and
    /// self-statistics. `None` for journal-less brokers (the default).
    pub fn journal(&self) -> Option<&DurableJournal> {
        self.journal.as_ref()
    }

    /// Reports an observed ingest-queue depth from a serving front-end;
    /// the counters keep the high-water mark
    /// ([`PipelineCounters::ingest_queue_max_depth`]).
    pub fn note_queue_depth(&mut self, depth: u64) {
        let gauge = &mut self.pipeline_counters.ingest_queue_max_depth;
        *gauge = (*gauge).max(depth);
    }

    /// Reports submissions the serving front-end rejected under
    /// backpressure (accumulates into
    /// [`PipelineCounters::ingest_rejected`]).
    pub fn note_rejected(&mut self, rejected: u64) {
        self.pipeline_counters.ingest_rejected += rejected;
    }

    /// Records one serving-stage latency sample into the matching
    /// fixed-bucket histogram (see [`StageKind`] for what each stage
    /// covers and its sampling granularity).
    pub fn note_stage_latency(&mut self, stage: StageKind, ns: u64) {
        self.stage_histo(stage).record(ns);
    }

    /// Folds a whole histogram kept by another stage's thread into the
    /// broker's counters — how the egress stage (which cannot touch the
    /// broker while the pipeline stage owns it) hands its latencies back
    /// at shutdown.
    pub fn merge_stage_latencies(&mut self, stage: StageKind, histo: &LatencyHisto) {
        self.stage_histo(stage).merge(histo);
    }

    fn stage_histo(&mut self, stage: StageKind) -> &mut LatencyHisto {
        match stage {
            StageKind::Ingest => &mut self.pipeline_counters.stage_ingest,
            StageKind::Batcher => &mut self.pipeline_counters.stage_batcher,
            StageKind::QueueWait => &mut self.pipeline_counters.stage_queue_wait,
            StageKind::Pipeline => &mut self.pipeline_counters.stage_pipeline,
            StageKind::Egress => &mut self.pipeline_counters.stage_egress,
        }
    }

    /// Installs (or replaces) the persistent [`WorkerPool`] behind the
    /// batch pipeline — the post-build equivalent of
    /// [`BrokerBuilder::worker_pool`]. An explicit pool is always
    /// honored, even on a single-core host where the broker would never
    /// spawn one of its own.
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// The live subscription registry (stable handles, per-node
    /// refcounts).
    pub fn registry(&self) -> &SubscriptionRegistry {
        &self.registry
    }

    /// The registry handle behind a subscription id from a match result
    /// (`None` if that subscription has been removed since).
    pub fn handle_of(&self, id: SubscriptionId) -> Option<SubscriptionHandle> {
        let base = self.snapshot.compiled_count() as u32;
        if id.0 < base {
            let handle = self.snapshot.handle_of(id)?;
            self.registry.contains(handle).then_some(handle)
        } else {
            self.churn
                .as_ref()?
                .overlay_handles
                .get((id.0 - base) as usize)
                .copied()
                .flatten()
        }
    }

    /// The grid model the clustering runs on (cell memberships, masses).
    /// Between recompiles this is the model of the last compile.
    pub fn grid_model(&self) -> &GridModel {
        &self.snapshot.grid_model
    }

    /// The matcher (S-tree statistics, subscription lookup). Overlay
    /// subscriptions added since the last recompile are *not* in it; see
    /// [`Broker::match_only`] for churn-aware matching.
    pub fn matcher(&self) -> &Matcher {
        &self.snapshot.matcher
    }

    /// The multicast groups `M_1..M_n`.
    pub fn groups(&self) -> &MulticastGroups {
        &self.snapshot.groups
    }

    /// The event-space partition `S_1..S_n` (+ implicit `S_0`).
    pub fn partition(&self) -> &SpacePartition {
        &self.snapshot.partition
    }

    /// The distribution policy in force.
    pub fn policy(&self) -> &DistributionPolicy {
        &self.policy
    }

    /// Mutable access to the distribution policy (e.g. to install
    /// per-group threshold overrides).
    pub fn policy_mut(&mut self) -> &mut DistributionPolicy {
        &mut self.policy
    }

    /// The publisher node.
    pub fn publisher(&self) -> NodeId {
        self.publisher
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The event space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The configured delivery mode.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.delivery
    }
}

/// The sequential fold shared by [`Broker::fold_batch`] (pool batches)
/// and [`Broker::fold_staged`] (executor batches): walks the fused
/// results **in global event order**, resolves multicast scheme costs
/// through the epoch-keyed memo (walking each (epoch, publisher, group)
/// at most once, exactly as `Broker::decide_and_record` does) and folds
/// every event into the cumulative report. When `outcomes` is given,
/// also materializes one [`PublishOutcome`] per event by copying the
/// arena slices.
#[allow(clippy::too_many_arguments)]
fn fold_pristine(
    batch: BatchMatches<'_>,
    snapshot: &EngineSnapshot,
    publisher: NodeId,
    delivery: DeliveryMode,
    spt: &SptTable,
    alm_dist: Option<&[Vec<f64>]>,
    scheme_memo: &mut SchemeMemo,
    scheme_walks: &mut u64,
    cost_scratch: &mut CostScratch,
    report: &mut CostReport,
    mut outcomes: Option<&mut Vec<PublishOutcome>>,
) {
    for i in 0..batch.len() {
        let meta = batch.meta(i);
        let (decision, group_region) = meta.decode();
        let (scheme, delivered, wasted) = match &decision {
            Decision::Drop => (0.0, Delivery::Dropped { unreachable: 0 }, 0),
            Decision::Unicast { .. } => (meta.unicast, Delivery::Unicast, 0),
            // This fold only handles pristine batches and segments
            // (degraded segments fold through `fold_batch_degraded`),
            // so the partial-multicast arm cannot actually fold here;
            // it resolves like a full multicast for totality.
            Decision::Multicast { group: q } | Decision::PartialMulticast { group: q } => {
                let members = snapshot.groups.members(*q);
                let row = scheme_memo.slot(snapshot.epoch, 0, publisher, snapshot.groups.len());
                let scheme = match row[*q] {
                    Some(cost) => cost,
                    None => {
                        let cost = Broker::send_cost(
                            delivery,
                            spt,
                            alm_dist,
                            publisher,
                            members,
                            cost_scratch,
                        );
                        row[*q] = Some(cost);
                        *scheme_walks += 1;
                        cost
                    }
                };
                (
                    scheme,
                    Delivery::Multicast,
                    (members.len() - batch.nodes(i).len()) as u64,
                )
            }
        };
        let costs = MessageCosts {
            scheme,
            unicast: meta.unicast,
            ideal: meta.ideal,
        };
        report.record(costs, delivered, wasted, 0);
        if let Some(out) = outcomes.as_mut() {
            out.push(PublishOutcome {
                decision,
                group_region,
                matched_subscriptions: batch.subs(i).to_vec(),
                interested: batch.nodes(i).to_vec(),
                unreachable: Vec::new(),
                costs,
            });
        }
    }
}

/// The read side of one fused match → cost → decide pass, bound up
/// front and free of `&Broker` so it can run (a) under the worker pool
/// while `pipeline_states` is mutably borrowed, and (b) on serving
/// executor threads that do not hold the broker at all
/// ([`crate::PublishView`] wraps one over owned state). Everything here
/// is read-only; results land in the caller's [`PublishScratch`].
///
/// Each BLOCK-sized range is matched into the arena, costed in one
/// batched walk (dense mode), and decided, before the next range starts
/// — one pass over the data per worker. The per-event arithmetic calls
/// exactly the functions the sequential `publish` path calls, with a
/// freshly-epoched scratch per event, so every stored float is
/// bit-identical to the sequential result regardless of worker count,
/// interleaving, or which thread runs the pass.
pub(crate) struct FusedPass<'a> {
    pub(crate) snapshot: &'a EngineSnapshot,
    pub(crate) policy: &'a DistributionPolicy,
    pub(crate) delivery: DeliveryMode,
    pub(crate) publisher: NodeId,
    pub(crate) alm_dist: Option<&'a [Vec<f64>]>,
    pub(crate) overlay: Option<MatchOverlay<'a>>,
    pub(crate) pub_view: SptView<'a>,
    /// Sparse mode: the rendezvous point's SPT view and the
    /// publisher → rendezvous distance.
    pub(crate) sparse: Option<(SptView<'a>, f64)>,
    pub(crate) degraded: bool,
    pub(crate) events: &'a [Point],
    /// Structure-of-arrays mirror of `events` when the batch arrived
    /// pre-transposed (the staged ingest path); the SIMD blocks then
    /// fill by contiguous column copies.
    pub(crate) soa: Option<&'a EventSoA>,
}

impl FusedPass<'_> {
    /// Runs the pass over `ranges` into `state`. See the type docs.
    pub(crate) fn run(&self, state: &mut PublishScratch, ranges: BlockRanges) {
        let FusedPass {
            snapshot,
            policy,
            delivery,
            publisher,
            alm_dist,
            overlay,
            pub_view,
            sparse,
            degraded,
            events,
            soa,
        } = *self;
        let matching = &mut state.matching;
        let cost = &mut state.cost;
        let arena = &mut state.arena;
        let pairs = &mut state.pairs;
        let meta = &mut state.meta;
        let reach_tmp = &mut state.reach_tmp;
        for range in ranges {
            let base = arena.event_count();
            match (soa, &overlay) {
                (Some(soa), view) => snapshot.matcher.match_events_soa_into_arena(
                    events,
                    soa,
                    std::iter::once(range.clone()),
                    view.as_ref(),
                    matching,
                    arena,
                ),
                (None, Some(view)) => snapshot.matcher.match_events_overlaid_into_arena(
                    events,
                    std::iter::once(range.clone()),
                    view,
                    matching,
                    arena,
                ),
                (None, None) => snapshot.matcher.match_events_into_arena(
                    events,
                    std::iter::once(range.clone()),
                    matching,
                    arena,
                ),
            }
            let count = arena.event_count();
            if degraded {
                // Mask matched nodes by reachability in the healed
                // routing view; only the reachable prefix is costed.
                for local in base..count {
                    arena.partition_reachable(local, reach_tmp, |n| pub_view.reachable(n));
                }
            }
            if delivery == DeliveryMode::DenseMode {
                pairs.clear();
                cost_events_into(
                    pub_view,
                    (base..count).map(|local| arena.interested_slice(local)),
                    cost,
                    pairs,
                );
            }
            for (k, i) in range.enumerate() {
                let local = base + k;
                let nodes = arena.interested_slice(local);
                let group = snapshot.partition.group_of_point(&events[i]);
                // In degraded mode the decision depends on the
                // step-clocked health state, which only the
                // sequential fold may touch: the tag pushed here is a
                // placeholder the fold overrides.
                let decision = if degraded {
                    DecisionTag::Drop
                } else {
                    let group_size = group.map_or(0, |q| snapshot.groups.members(q).len());
                    DecisionTag::from(&policy.decide_counts(group, nodes.len(), group_size))
                };
                let (unicast, ideal) = match delivery {
                    DeliveryMode::DenseMode => {
                        let pair = pairs[k];
                        (pair.unicast, pair.tree)
                    }
                    DeliveryMode::SparseMode { .. } => {
                        let (rp_view, pub_to_rp) = sparse.expect("bound for sparse mode");
                        let unicast = unicast_cost_flat(pub_view, nodes, cost);
                        let ideal = if degraded && !pub_to_rp.is_finite() {
                            // No shared tree exists at all: unicast is
                            // the only scheme left and the reference
                            // collapses onto it.
                            unicast
                        } else {
                            sparse_mode_cost_flat(rp_view, pub_to_rp, nodes, cost)
                        };
                        (unicast, ideal)
                    }
                    DeliveryMode::ApplicationLevel => {
                        let unicast = unicast_cost_flat(pub_view, nodes, cost);
                        let ideal = Broker::alm_cost(
                            alm_dist.expect("ALM mode precomputes this"),
                            publisher,
                            nodes,
                        );
                        (unicast, ideal)
                    }
                };
                meta.push(EventMeta {
                    unicast,
                    ideal,
                    group: group.map_or(NO_GROUP, |q| q as u32),
                    decision,
                });
            }
        }
    }
}

/// The overlay view over a broker's churn state, free of `&Broker` so
/// the batch pipeline can build it while `pipeline_states` is mutably
/// borrowed. `None` when the compiled matcher alone is current.
fn churn_view_of<'a>(
    churn: &'a Option<ChurnState>,
    snapshot: &EngineSnapshot,
) -> Option<MatchOverlay<'a>> {
    let churn = churn.as_ref()?;
    if churn.overlay.is_empty() && churn.tombstones.is_empty() {
        return None;
    }
    Some(MatchOverlay {
        overlay: &churn.overlay,
        owners: &churn.overlay_owners,
        tombstones: &churn.tombstones,
        base_count: snapshot.compiled_count() as u32,
        max_node: churn.overlay_max_node,
    })
}

/// Derives per-(group, node) incidence refcounts from the clusterer's
/// per-cell membership counts under `partition`. Each group's counts are
/// dense, indexed by node id (the clusterer's subscriber index).
fn rebuild_group_rc(clusterer: &IncrementalClusterer, partition: &SpacePartition) -> Vec<Vec<u32>> {
    let width = clusterer.subscriber_count();
    let mut rc: Vec<Vec<u32>> = vec![vec![0; width]; partition.group_count()];
    for (q, counts) in rc.iter_mut().enumerate() {
        for cell in partition.cells_of_group(q) {
            for (subscriber, count) in clusterer.cell_refcounts(cell) {
                counts[subscriber] += count;
            }
        }
    }
    rc
}

/// Materializes sorted member lists from group refcounts (dense node
/// indexing means ascending iteration is already sorted).
fn rc_members(group_rc: &[Vec<u32>]) -> Vec<Vec<NodeId>> {
    group_rc
        .iter()
        .map(|counts| dense_members(counts))
        .collect()
}

/// The nodes with a positive refcount, ascending.
fn dense_members(counts: &[u32]) -> Vec<NodeId> {
    counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(n, _)| NodeId(n as u32))
        .collect()
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnicastReason;
    use pubsub_netsim::TransitStubConfig;

    fn space_2d() -> Space {
        Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
    }

    fn tiny_topo() -> Topology {
        TransitStubConfig::tiny().generate(5).unwrap()
    }

    fn rect(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::from_corners(lo, hi).unwrap()
    }

    /// Stub nodes subscribing to opposite halves of the space.
    fn build_two_camp_broker(threshold: f64, mode: DeliveryMode) -> Broker {
        let topo = tiny_topo();
        let nodes = topo.stub_nodes().to_vec();
        assert!(nodes.len() >= 8);
        let mut b = Broker::builder(topo, space_2d())
            .threshold(threshold)
            .delivery_mode(mode)
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .grid_cells(4);
        for (i, &n) in nodes.iter().enumerate().take(8) {
            let r = if i % 2 == 0 {
                rect(&[0.0, 0.0], &[5.0, 10.0])
            } else {
                rect(&[5.0, 0.0], &[10.0, 10.0])
            };
            b = b.subscription(n, r);
        }
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_publish_accounts_costs() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let out = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        // Half the nodes are interested.
        assert_eq!(out.interested.len(), 4);
        assert!(out.costs.unicast > 0.0);
        assert!(out.costs.ideal <= out.costs.unicast);
        assert!(out.costs.scheme > 0.0);
        let report = broker.report();
        assert_eq!(report.messages, 1);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn event_nobody_wants_is_dropped() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        // Outside the space: no matches.
        let out = broker
            .publish(&Point::new(vec![-5.0, -5.0]).unwrap())
            .unwrap();
        assert_eq!(out.decision, Decision::Drop);
        assert_eq!(out.costs.scheme, 0.0);
        assert_eq!(broker.report().dropped, 1);
    }

    #[test]
    fn threshold_one_forces_unicast_for_partial_interest() {
        let mut broker = build_two_camp_broker(1.0, DeliveryMode::DenseMode);
        let out = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        match out.decision {
            Decision::Unicast { .. } => {
                assert_eq!(out.costs.scheme, out.costs.unicast);
            }
            Decision::Multicast { group } => {
                // Full-group interest is legitimately multicast even at t=1.
                assert_eq!(broker.groups().members(group).len(), out.interested.len());
            }
            Decision::Drop => panic!("subscribers exist"),
            Decision::PartialMulticast { .. } => panic!("no faults installed"),
        }
    }

    #[test]
    fn threshold_zero_is_static_multicast_when_group_hit() {
        let mut broker = build_two_camp_broker(0.0, DeliveryMode::DenseMode);
        let out = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        match out.decision {
            Decision::Multicast { .. } => {}
            Decision::Unicast {
                reason: UnicastReason::CatchAll,
            } => {} // event may fall in S0 depending on clustering
            other => panic!("static scheme should not threshold-unicast: {other:?}"),
        }
    }

    #[test]
    fn scheme_cost_never_below_ideal() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        for i in 0..50 {
            let x = f64::from(i % 10) + 0.5;
            let y = f64::from(i / 5) % 10.0 + 0.3;
            let out = broker.publish(&Point::new(vec![x, y]).unwrap()).unwrap();
            assert!(
                out.costs.scheme >= out.costs.ideal - 1e-9,
                "scheme {} < ideal {}",
                out.costs.scheme,
                out.costs.ideal
            );
        }
        let r = broker.report();
        assert_eq!(r.messages, 50);
        assert!(r.improvement_percent() <= 100.0 + 1e-9);
    }

    #[test]
    fn sparse_mode_pays_the_rendezvous_detour() {
        let topo = tiny_topo();
        let rp = topo.transit_nodes()[1];
        let mut dense = build_two_camp_broker(0.0, DeliveryMode::DenseMode);
        // Same broker but sparse via a rendezvous point that is not the
        // publisher.
        let nodes = tiny_topo().stub_nodes().to_vec();
        let mut builder = Broker::builder(tiny_topo(), space_2d())
            .threshold(0.0)
            .delivery_mode(DeliveryMode::SparseMode { rendezvous: rp })
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .grid_cells(4);
        for (i, &n) in nodes.iter().enumerate().take(8) {
            let r = if i % 2 == 0 {
                rect(&[0.0, 0.0], &[5.0, 10.0])
            } else {
                rect(&[5.0, 0.0], &[10.0, 10.0])
            };
            builder = builder.subscription(n, r);
        }
        let mut sparse = builder.build().unwrap();
        assert_eq!(
            sparse.delivery_mode(),
            DeliveryMode::SparseMode { rendezvous: rp }
        );

        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let d = dense.publish(&event).unwrap();
        let s = sparse.publish(&event).unwrap();
        assert_eq!(d.interested, s.interested);
        assert!(s.costs.scheme.is_finite());
        // Both multicast (t = 0); sparse additionally pays publisher->RP.
        if let (Decision::Multicast { .. }, Decision::Multicast { .. }) = (&d.decision, &s.decision)
        {
            assert!(s.costs.scheme >= d.costs.scheme - 1e-9 || s.costs.scheme > 0.0);
        }
        // Unknown rendezvous rejected at build time.
        let err = Broker::builder(tiny_topo(), space_2d())
            .delivery_mode(DeliveryMode::SparseMode {
                rendezvous: NodeId(40_000),
            })
            .build();
        assert!(matches!(err, Err(BrokerError::UnknownNode { .. })));
    }

    #[test]
    fn alm_mode_produces_finite_costs() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::ApplicationLevel);
        assert_eq!(broker.delivery_mode(), DeliveryMode::ApplicationLevel);
        let out = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        assert!(out.costs.scheme.is_finite());
        assert!(out.costs.ideal.is_finite());
        assert!(out.costs.ideal <= out.costs.unicast + 1e-9);
    }

    #[test]
    fn builder_validation() {
        let topo = tiny_topo();
        // Unknown subscriber node.
        let err = Broker::builder(topo.clone(), space_2d())
            .subscription(NodeId(9999), rect(&[0.0, 0.0], &[1.0, 1.0]))
            .build();
        assert!(matches!(err, Err(BrokerError::UnknownNode { node: 9999 })));
        // Unknown publisher.
        let err = Broker::builder(topo.clone(), space_2d())
            .publisher(NodeId(9999))
            .build();
        assert!(matches!(err, Err(BrokerError::UnknownNode { .. })));
        // Bad threshold.
        let err = Broker::builder(topo.clone(), space_2d())
            .threshold(2.0)
            .build();
        assert!(matches!(err, Err(BrokerError::InvalidConfig { .. })));
        // Wrong-dimension subscription.
        let err = Broker::builder(topo, space_2d())
            .subscription(NodeId(0), Rect::from_corners(&[0.0], &[1.0]).unwrap())
            .build();
        assert!(matches!(err, Err(BrokerError::DimensionMismatch { .. })));
    }

    #[test]
    fn publish_rejects_wrong_dimension_events() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let err = broker.publish(&Point::new(vec![1.0]).unwrap());
        assert!(matches!(err, Err(BrokerError::DimensionMismatch { .. })));
    }

    #[test]
    fn reports_reset() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        assert_eq!(broker.report().messages, 1);
        broker.reset_report();
        assert_eq!(broker.report().messages, 0);
    }

    #[test]
    fn accessors_are_consistent() {
        let broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        assert_eq!(broker.matcher().subscription_count(), 8);
        assert!(broker.groups().len() <= 2);
        assert_eq!(broker.policy().threshold(), 0.15);
        assert_eq!(broker.space().dims(), 2);
        let publisher = broker.publisher();
        assert!(matches!(
            broker.topology().role(publisher),
            pubsub_netsim::NodeRole::Transit { .. }
        ));
    }

    #[test]
    fn publish_from_alternate_publishers() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let default_out = broker.publish(&event).unwrap();
        // Matching is publisher-independent.
        let near = default_out.interested[0];
        let near_out = broker.publish_from(near, &event).unwrap();
        assert_eq!(near_out.interested, default_out.interested);
        assert!(near_out.costs.unicast.is_finite());
        // Publishing from a receiver: that receiver costs nothing, so the
        // unicast bill covers one fewer hop-path and the cost invariants
        // still hold.
        assert!(near_out.costs.ideal <= near_out.costs.unicast + 1e-9);
        // Cached SPTs make the repeat identical.
        let again = broker.publish_from(near, &event).unwrap();
        assert_eq!(again.costs, near_out.costs);
        // Unknown publisher rejected.
        assert!(matches!(
            broker.publish_from(NodeId(60_000), &event),
            Err(BrokerError::UnknownNode { .. })
        ));
    }

    #[test]
    fn adaptive_controller_end_to_end() {
        use crate::{AdaptiveConfig, AdaptiveController};
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let mut controller = AdaptiveController::for_broker(
            &broker,
            AdaptiveConfig {
                min_hits: 1,
                margin: 1.0,
            },
        );
        for i in 0..100 {
            let x = f64::from(i % 10) + 0.5;
            let y = f64::from(i % 7) + 0.5;
            let out = broker.publish(&Point::new(vec![x, y]).unwrap()).unwrap();
            controller.observe(&out);
        }
        assert!(controller.tracker().observed() > 0);
        let summaries = controller.tracker().summarize(&broker);
        assert_eq!(summaries.len(), broker.groups().len());
        for s in &summaries {
            assert!(s.break_even_ratio >= 0.0 && s.break_even_ratio <= 1.0);
            assert!(s.group_multicast_cost >= 0.0);
        }
        let applied = controller.apply(&mut broker).unwrap();
        assert!(applied >= 1);
        // The policy now carries overrides.
        let t0 = broker.policy().threshold_for(0);
        assert!((0.0..=1.0).contains(&t0));
    }

    #[test]
    fn set_clustering_rebuilds_groups_in_place() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let before = broker.publish(&event).unwrap();
        let groups_before = broker.groups().len();

        broker
            .set_clustering(&ClusteringConfig::new(
                ClusteringAlgorithm::MinimumSpanningTree,
                4,
            ))
            .unwrap();
        assert!(broker.groups().len() <= 4);
        assert_ne!(broker.groups().len(), 0);
        // Matching is untouched; only the group structure changed.
        let after = broker.publish(&event).unwrap();
        assert_eq!(after.interested, before.interested);
        // The report kept accumulating across the swap.
        assert_eq!(broker.report().messages, 2);
        let _ = groups_before;

        // Invalid config leaves the broker usable.
        let err =
            broker.set_clustering(&ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 0));
        assert!(err.is_err());
        assert!(broker.publish(&event).is_ok());
    }

    #[test]
    fn match_only_does_not_touch_the_report() {
        let broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let (subs, nodes) = broker.match_only(&event);
        assert!(!subs.is_empty());
        assert_eq!(nodes.len(), 4);
        assert_eq!(broker.report().messages, 0);
        assert!(broker.grid_model().subscriber_count() > 0);
    }

    #[test]
    fn publish_batch_is_identical_to_sequential_publish() {
        let events: Vec<Point> = (0..120)
            .map(|i| Point::new(vec![f64::from(i % 11), f64::from(i % 13) * 0.8]).unwrap())
            .collect();
        let mut sequential = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let expected: Vec<PublishOutcome> = events
            .iter()
            .map(|e| sequential.publish(e).unwrap())
            .collect();
        let expected_report = *sequential.report();

        for threads in [Some(1), Some(3), None] {
            let mut batched = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
            let outcomes = batched.publish_batch(&events, threads).unwrap();
            assert_eq!(outcomes, expected, "threads={threads:?}");
            assert_eq!(batched.report(), &expected_report, "threads={threads:?}");
        }
    }

    #[test]
    fn scheme_memo_survives_publisher_switches() {
        // t = 0 forces multicast on group hits, exercising the memo; the
        // costs must be identical whether the walk was fresh or cached,
        // and switching publishers must not leak another publisher's
        // group costs.
        let mut broker = build_two_camp_broker(0.0, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let first = broker.publish(&event).unwrap();
        let other = first.interested[0];
        let via_other = broker.publish_from(other, &event).unwrap();
        let back = broker.publish(&event).unwrap();
        assert_eq!(first.costs, back.costs);
        if first.decision == via_other.decision {
            // Same group, different root: the walk really re-ran.
            assert!(via_other.costs.scheme.is_finite());
        }
        // Repeating the other publisher hits its memo and agrees with the
        // fresh walk.
        let first_other = broker.publish_from(other, &event).unwrap();
        assert_eq!(via_other.costs, first_other.costs);
    }

    #[test]
    fn flat_costs_are_byte_identical_to_node_based_walks() {
        // Acceptance gate for the compiled engine: every cost the broker
        // reports must equal the legacy node-based SPT walk bit for bit.
        use pubsub_netsim::{dijkstra, multicast_tree_cost, unicast_cost};
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let spt = dijkstra(broker.topology().graph(), broker.publisher());
        let events: Vec<Point> = (0..60)
            .map(|i| Point::new(vec![f64::from(i % 10) + 0.5, f64::from(i % 7) + 0.5]).unwrap())
            .collect();
        let outcomes = broker.publish_batch(&events, None).unwrap();
        for out in &outcomes {
            assert_eq!(
                out.costs.unicast.to_bits(),
                unicast_cost(&spt, &out.interested).to_bits()
            );
            assert_eq!(
                out.costs.ideal.to_bits(),
                multicast_tree_cost(&spt, &out.interested).to_bits()
            );
            if let Decision::Multicast { group } = out.decision {
                assert_eq!(
                    out.costs.scheme.to_bits(),
                    multicast_tree_cost(&spt, broker.groups().members(group)).to_bits()
                );
            }
        }
    }

    #[test]
    fn publish_batch_rejects_bad_events_without_recording() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let events = vec![
            Point::new(vec![2.0, 5.0]).unwrap(),
            Point::new(vec![1.0]).unwrap(),
        ];
        assert!(matches!(
            broker.publish_batch(&events, None),
            Err(BrokerError::DimensionMismatch { .. })
        ));
        assert_eq!(broker.report().messages, 0);
    }

    #[test]
    fn default_publisher_is_first_transit_node() {
        let topo = tiny_topo();
        let first_transit = topo.transit_nodes()[0];
        let broker = Broker::builder(topo, space_2d()).build().unwrap();
        assert_eq!(broker.publisher(), first_transit);
    }

    /// Publishes a probe sweep on both brokers and asserts bit-identical
    /// interested sets and costs.
    fn assert_publish_parity(live: &mut Broker, fresh: &mut Broker) {
        for i in 0..40 {
            let event = Point::new(vec![f64::from(i % 10) + 0.5, f64::from(i % 7) + 0.7]).unwrap();
            let a = live.publish(&event).unwrap();
            let b = fresh.publish(&event).unwrap();
            assert_eq!(a.interested, b.interested, "event {i}");
            assert_eq!(a.decision, b.decision, "event {i}");
            assert_eq!(
                a.costs.scheme.to_bits(),
                b.costs.scheme.to_bits(),
                "event {i}"
            );
            assert_eq!(a.costs.unicast.to_bits(), b.costs.unicast.to_bits());
            assert_eq!(a.costs.ideal.to_bits(), b.costs.ideal.to_bits());
        }
    }

    #[test]
    fn live_churn_then_recompile_matches_fresh_build() {
        let mut live = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let nodes = live.topology().stub_nodes().to_vec();

        // Churn: two of the compiled camp members leave, three newcomers
        // subscribe to fresh regions.
        let compiled_ids = [SubscriptionId(1), SubscriptionId(4)];
        for id in compiled_ids {
            let handle = live.handle_of(id).unwrap();
            live.unsubscribe(handle).unwrap();
        }
        let h_a = live
            .subscribe(nodes[0], rect(&[0.0, 0.0], &[3.0, 3.0]))
            .unwrap();
        let _h_b = live
            .subscribe(nodes[5], rect(&[6.0, 6.0], &[10.0, 10.0]))
            .unwrap();
        let h_c = live
            .subscribe(nodes[2], rect(&[4.0, 4.0], &[6.0, 6.0]))
            .unwrap();
        live.unsubscribe(h_c).unwrap();

        let counters = live.churn_counters();
        assert_eq!(counters.subscribes, 3);
        assert_eq!(counters.unsubscribes, 3);
        assert!(counters.epoch > 0 || counters.recompiles > 0);

        // An overlay handle resolves back through a live match.
        let (subs, _) = live.match_only(&Point::new(vec![1.0, 1.0]).unwrap());
        assert!(subs.iter().any(|&s| live.handle_of(s) == Some(h_a)));

        // A fresh broker over the surviving subscriptions, in registry
        // order.
        let survivors: Vec<(NodeId, Rect)> = live
            .registry()
            .live()
            .map(|(_, n, r)| (n, r.clone()))
            .collect();
        let fresh_builder = Broker::builder(tiny_topo(), space_2d())
            .threshold(0.15)
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .grid_cells(4)
            .subscriptions(survivors.clone());

        // Before the recompile the overlay handles matching; interested
        // sets already agree with the fresh build.
        let mut fresh = fresh_builder.build().unwrap();
        for i in 0..20 {
            let event = Point::new(vec![f64::from(i % 10) + 0.5, f64::from(i % 7) + 0.7]).unwrap();
            let (_, live_nodes) = live.match_only(&event);
            let (_, fresh_nodes) = fresh.match_only(&event);
            assert_eq!(live_nodes, fresh_nodes, "pre-recompile event {i}");
        }

        // After the recompile everything is bit-identical.
        let epoch_before = live.epoch();
        live.recompile().unwrap();
        assert!(live.epoch() > epoch_before);
        assert_eq!(live.churn_counters().overlay_len, 0);
        assert_eq!(live.churn_counters().tombstone_len, 0);
        live.reset_report();
        assert_publish_parity(&mut live, &mut fresh);
        assert_eq!(live.matcher().subscription_count(), survivors.len());

        // Handles survive the recompile and keep working.
        assert!(live.unsubscribe(h_a).is_ok());
        assert!(matches!(
            live.unsubscribe(h_a),
            Err(BrokerError::UnknownHandle { .. })
        ));
    }

    #[test]
    fn drift_threshold_triggers_automatic_recompile() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let nodes = broker.topology().stub_nodes().to_vec();
        // 8 compiled subscriptions, recluster fraction 0.5 (default): the
        // population grows with the churn, so the 9th operation is the
        // first with churn > 0.5 × live.
        let mut handles = Vec::new();
        for i in 0..9 {
            handles.push(
                broker
                    .subscribe(nodes[i % nodes.len()], rect(&[1.0, 1.0], &[4.0, 4.0]))
                    .unwrap(),
            );
        }
        let counters = broker.churn_counters();
        assert!(
            counters.recompiles >= 1,
            "9 subscribes over 8 compiled subscriptions should trip the 0.5 drift threshold: {counters:?}"
        );
        // Post-recompile the overlay is drained into the compiled index.
        assert_eq!(broker.matcher().subscription_count(), 17);
        for h in handles {
            broker.unsubscribe(h).unwrap();
        }
        assert_eq!(broker.registry().len(), 8);
    }

    #[test]
    fn unsubscribe_rejects_stale_and_foreign_handles() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let node = broker.topology().stub_nodes()[0];
        let h = broker
            .subscribe(node, rect(&[0.0, 0.0], &[1.0, 1.0]))
            .unwrap();
        broker.unsubscribe(h).unwrap();
        assert!(matches!(
            broker.unsubscribe(h),
            Err(BrokerError::UnknownHandle { .. })
        ));
        // Validation errors leave the registry untouched.
        assert!(matches!(
            broker.subscribe(NodeId(60_000), rect(&[0.0, 0.0], &[1.0, 1.0])),
            Err(BrokerError::UnknownNode { .. })
        ));
        assert!(matches!(
            broker.subscribe(node, Rect::from_corners(&[0.0], &[1.0]).unwrap()),
            Err(BrokerError::DimensionMismatch { .. })
        ));
        assert_eq!(broker.registry().len(), 8);
    }

    #[test]
    fn scheme_memo_is_epoch_keyed_and_per_publisher() {
        // Satellite: alternating publishers must not thrash the memo —
        // each (publisher, group) pair is walked exactly once per epoch.
        let mut broker = build_two_camp_broker(0.0, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let first = broker.publish(&event).unwrap();
        assert!(matches!(first.decision, Decision::Multicast { .. }));
        let other = first.interested[0];
        let base = broker.scheme_cost_walks();
        assert_eq!(base, 1);
        // A-B-A-B-A-B on the same group: exactly one more walk (B's
        // first), regardless of the alternation.
        for _ in 0..3 {
            broker.publish_from(other, &event).unwrap();
            broker.publish(&event).unwrap();
        }
        assert_eq!(broker.scheme_cost_walks(), 2);
        // An epoch bump (recompile) invalidates the memo lazily.
        broker.recompile().unwrap();
        broker.publish(&event).unwrap();
        assert_eq!(broker.scheme_cost_walks(), 3);
    }

    #[test]
    fn match_only_into_reuses_caller_buffers() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let node = broker.topology().stub_nodes()[0];
        broker
            .subscribe(node, rect(&[0.0, 0.0], &[10.0, 10.0]))
            .unwrap();
        let mut scratch = MatchScratch::new();
        let mut subs = vec![SubscriptionId(999)];
        let mut nodes = vec![NodeId(999)];
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        broker.match_only_into(&event, &mut scratch, &mut subs, &mut nodes);
        let (subs2, nodes2) = broker.match_only(&event);
        assert_eq!(subs, subs2);
        assert_eq!(nodes, nodes2);
        assert!(nodes.contains(&node));
        assert_eq!(broker.report().messages, 0);
    }

    #[test]
    fn snapshot_clones_stay_consistent_across_churn() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let before = broker.snapshot();
        let node = broker.topology().stub_nodes()[3];
        let h = broker
            .subscribe(node, rect(&[0.0, 0.0], &[10.0, 10.0]))
            .unwrap();
        broker.recompile().unwrap();
        // The old snapshot is untouched by the swap.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.compiled_count(), 8);
        assert_eq!(broker.snapshot().compiled_count(), 9);
        assert!(broker.epoch() > 0);
        // id -> handle round-trip through the new snapshot.
        let id = broker
            .registry()
            .live()
            .position(|(hh, _, _)| hh == h)
            .unwrap();
        assert_eq!(
            broker.snapshot().handle_of(SubscriptionId(id as u32)),
            Some(h)
        );
        broker.unsubscribe(h).unwrap();
    }

    // --------------------------------------------------------------
    // Fault injection
    // --------------------------------------------------------------

    #[test]
    fn fault_plan_rejected_for_alm_and_double_install() {
        let mut alm = build_two_camp_broker(0.15, DeliveryMode::ApplicationLevel);
        assert!(matches!(
            alm.install_fault_plan(FaultPlan::new()),
            Err(BrokerError::InvalidConfig {
                parameter: "delivery",
                ..
            })
        ));
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        broker.install_fault_plan(FaultPlan::new()).unwrap();
        assert!(broker.faults_active());
        assert!(matches!(
            broker.install_fault_plan(FaultPlan::new()),
            Err(BrokerError::InvalidConfig {
                parameter: "fault_plan",
                ..
            })
        ));
    }

    #[test]
    fn fault_events_are_validated() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let mut plan = FaultPlan::new();
        plan.push(0, FaultEvent::NodeDown { node: NodeId(9999) });
        assert!(matches!(
            broker.install_fault_plan(plan),
            Err(BrokerError::UnknownNode { node: 9999 })
        ));
        assert!(!broker.faults_active());
        assert!(matches!(
            broker.inject_fault(&FaultEvent::LinkDegrade {
                a: NodeId(0),
                b: NodeId(1),
                factor: 0.5,
            }),
            Err(BrokerError::InvalidConfig {
                parameter: "factor",
                ..
            })
        ));
    }

    #[test]
    fn downed_publisher_is_unreachable() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let publisher = broker.publisher();
        broker
            .inject_fault(&FaultEvent::NodeDown { node: publisher })
            .unwrap();
        let err = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap_err();
        assert!(
            matches!(err, BrokerError::Net(NetError::Unreachable { node }) if node == publisher.0)
        );
        // Repair brings the publisher back.
        broker
            .inject_fault(&FaultEvent::NodeUp { node: publisher })
            .unwrap();
        broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
    }

    #[test]
    fn downed_subscriber_is_masked_not_delivered() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let pristine = broker.publish(&event).unwrap();
        assert!(pristine.unreachable.is_empty());
        let victim = pristine.interested[0];
        broker
            .inject_fault(&FaultEvent::NodeDown { node: victim })
            .unwrap();
        let out = broker.publish(&event).unwrap();
        assert!(out.unreachable.contains(&victim));
        assert!(!out.interested.contains(&victim));
        // interested ∪ unreachable is exactly the pristine matched set.
        let mut union: Vec<NodeId> = out
            .interested
            .iter()
            .chain(out.unreachable.iter())
            .copied()
            .collect();
        union.sort_by_key(|n| n.0);
        let mut matched = pristine.interested.clone();
        matched.sort_by_key(|n| n.0);
        assert_eq!(union, matched);
        assert_eq!(
            broker.report().unreachable_skipped,
            out.unreachable.len() as u64
        );
        assert!(out.costs.scheme.is_finite());
        assert!(out.costs.ideal.is_finite());
    }

    #[test]
    fn empty_plan_outcomes_are_bit_identical() {
        let mut plain = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let mut faulty = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        faulty.install_fault_plan(FaultPlan::new()).unwrap();
        let events = [
            Point::new(vec![2.0, 5.0]).unwrap(),
            Point::new(vec![8.0, 5.0]).unwrap(),
            Point::new(vec![5.0, 5.0]).unwrap(),
        ];
        for event in &events {
            let a = plain.publish(event).unwrap();
            let b = faulty.publish(event).unwrap();
            assert_eq!(a.decision, b.decision);
            assert_eq!(a.interested, b.interested);
            assert_eq!(a.unreachable, b.unreachable);
            assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
            assert_eq!(a.costs.unicast.to_bits(), b.costs.unicast.to_bits());
            assert_eq!(a.costs.ideal.to_bits(), b.costs.ideal.to_bits());
        }
        assert_eq!(plain.report(), faulty.report());
    }

    #[test]
    fn scheduled_fault_fires_on_its_step() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let victim = broker.publish(&event).unwrap().interested[0];
        let mut plan = FaultPlan::new();
        plan.push(2, FaultEvent::NodeDown { node: victim });
        broker.install_fault_plan(plan).unwrap();
        assert_eq!(broker.fault_epoch(), 0);
        // Steps 0 and 1: the fault is not due yet.
        assert!(broker.publish(&event).unwrap().unreachable.is_empty());
        assert!(broker.publish(&event).unwrap().unreachable.is_empty());
        // Step 2: fires before the event publishes.
        let out = broker.publish(&event).unwrap();
        assert!(out.unreachable.contains(&victim));
        assert!(broker.fault_epoch() > 0);
    }

    #[test]
    fn degraded_group_walks_the_fallback_ladder() {
        let mut broker = build_two_camp_broker(0.0, DeliveryMode::DenseMode);
        let publisher = broker.publisher();
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let pristine = broker.publish(&event).unwrap();
        let q = match pristine.decision {
            Decision::Multicast { group } => group,
            other => panic!("expected multicast at threshold 0, got {other:?}"),
        };
        let members = broker.groups().members(q).to_vec();
        assert!(members.len() >= 2);
        // Down every member except one interested node (and never the
        // publisher itself), then derive the expected classification.
        let keep = pristine.interested[0];
        for &m in &members {
            if m != keep && m != publisher {
                broker
                    .inject_fault(&FaultEvent::NodeDown { node: m })
                    .unwrap();
            }
        }
        let reachable = members
            .iter()
            .filter(|&&m| m == keep || m == publisher)
            .count();
        let expected = if reachable == members.len() {
            GroupHealth::Healthy
        } else if reachable * 2 >= members.len() {
            GroupHealth::Degraded
        } else {
            GroupHealth::Severed
        };
        assert_ne!(expected, GroupHealth::Healthy, "test needs a real fault");
        // Hysteresis: the committed health needs HEALTH_HYSTERESIS
        // consecutive raw evaluations to move.
        let mut last = broker.publish(&event).unwrap();
        for _ in 0..HEALTH_HYSTERESIS {
            last = broker.publish(&event).unwrap();
        }
        assert_eq!(broker.group_health(publisher, q), expected);
        match expected {
            GroupHealth::Severed => {
                assert!(matches!(
                    last.decision,
                    Decision::Unicast {
                        reason: UnicastReason::GroupSevered,
                    }
                ));
                assert_eq!(last.costs.scheme.to_bits(), last.costs.unicast.to_bits());
            }
            GroupHealth::Degraded => {
                assert!(matches!(last.decision, Decision::PartialMulticast { .. }));
                assert!(last.costs.scheme.is_finite());
            }
            GroupHealth::Healthy => unreachable!(),
        }
        assert!(!last.unreachable.is_empty());
    }

    #[test]
    fn quarantined_worker_batch_stays_bit_identical() {
        let mut clean = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let mut trapped = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        // Inject real 2-thread pools so the batch fans out even on a
        // single-core host (the broker never spawns its own pool there).
        clean.set_worker_pool(Arc::new(WorkerPool::new(2)));
        trapped.set_worker_pool(Arc::new(WorkerPool::new(2)));
        // More than 2 * BLOCK events so the batch actually fans out on
        // the pool (shorter batches run inline and bypass quarantine).
        let events: Vec<Point> = (0..160)
            .map(|i| Point::new(vec![(i % 10) as f64, 5.0]).unwrap())
            .collect();
        trapped.arm_worker_panic(1);
        let clean_out = clean.publish_batch(&events, Some(2)).unwrap();
        let trapped_out = trapped.publish_batch(&events, Some(2)).unwrap();
        assert_eq!(trapped.pipeline_counters().pooled_batches, 1);
        assert_eq!(clean_out.len(), trapped_out.len());
        for (a, b) in clean_out.iter().zip(&trapped_out) {
            assert_eq!(a.decision, b.decision);
            assert_eq!(a.interested, b.interested);
            assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
        }
        assert_eq!(clean.report(), trapped.report());
        let counters = trapped.pipeline_counters();
        assert_eq!(counters.quarantined_workers, 1);
        assert_eq!(counters.retried_batches, 1);
        // The trap disarms after firing once: the next batch is clean.
        let again = trapped.publish_batch(&events, Some(2)).unwrap();
        assert_eq!(again.len(), events.len());
        assert_eq!(trapped.pipeline_counters().quarantined_workers, 1);
    }

    #[test]
    fn single_thread_pool_batches_run_inline() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        // A 1-thread pool can only add dispatch overhead: the batch must
        // degenerate to the fused inline path even when the caller asks
        // for more workers.
        broker.set_worker_pool(Arc::new(WorkerPool::new(1)));
        let events: Vec<Point> = (0..200)
            .map(|i| Point::new(vec![(i % 10) as f64, 5.0]).unwrap())
            .collect();
        broker.publish_batch(&events, Some(4)).unwrap();
        let counters = broker.pipeline_counters();
        assert_eq!(counters.pooled_batches, 0);
        assert_eq!(counters.inline_batches, 1);

        // A deferred thread choice on a single-core host must never spawn
        // a pool either (host-gated: only observable on 1-core runners).
        if pubsub_parallel::effective_threads(None) == 1 {
            let mut deferred = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
            deferred.publish_batch(&events, None).unwrap();
            deferred.publish_batch(&events, Some(8)).unwrap();
            let counters = deferred.pipeline_counters();
            assert_eq!(counters.pooled_batches, 0);
            assert_eq!(counters.inline_batches, 2);
        }
    }

    #[test]
    fn pipeline_counts_kernel_blocks() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let events: Vec<Point> = (0..100)
            .map(|i| Point::new(vec![(i % 10) as f64, 5.0]).unwrap())
            .collect();
        broker.publish_batch(&events, None).unwrap();
        let counters = broker.pipeline_counters();
        // 100 events in 8-lane blocks: 64-event ranges cut into 8 full
        // blocks, the 36-event tail into 5 — 13 blocks however the
        // block-cyclic ranges fall.
        assert_eq!(counters.match_blocks, 13);
        assert_eq!(counters.match_lanes, 100);
        assert_eq!(
            counters.simd_blocks + counters.scalar_blocks,
            counters.match_blocks
        );
        // Fault-free batches dispatch no fault segments.
        assert_eq!(counters.fault_segments, 0);
        assert_eq!(counters.degraded_segments, 0);
    }

    #[test]
    fn batch_under_faults_matches_sequential_loop() {
        let mut seq = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let mut batch = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let victim = seq
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap()
            .interested[0];
        seq.reset_report();
        let mut plan = FaultPlan::new();
        plan.push(1, FaultEvent::NodeDown { node: victim });
        plan.push(3, FaultEvent::NodeUp { node: victim });
        seq.install_fault_plan(plan.clone()).unwrap();
        batch.install_fault_plan(plan).unwrap();
        let events: Vec<Point> = (0..6)
            .map(|i| Point::new(vec![(2 * i % 10) as f64, 5.0]).unwrap())
            .collect();
        let mut seq_outs = Vec::new();
        for event in &events {
            seq_outs.push(seq.publish(event).unwrap());
        }
        let batch_outs = batch.publish_batch(&events, Some(4)).unwrap();
        assert_eq!(seq_outs.len(), batch_outs.len());
        for (a, b) in seq_outs.iter().zip(&batch_outs) {
            assert_eq!(a.decision, b.decision);
            assert_eq!(a.interested, b.interested);
            assert_eq!(a.unreachable, b.unreachable);
            assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
        }
    }

    #[test]
    fn sparse_mode_survives_rendezvous_loss() {
        let topo = tiny_topo();
        let transit = topo.transit_nodes().to_vec();
        assert!(transit.len() >= 2);
        let mut broker = build_two_camp_broker(
            0.0,
            DeliveryMode::SparseMode {
                rendezvous: transit[1],
            },
        );
        // Downing the rendezvous must not down the publisher with it.
        let rendezvous = transit[1];
        assert_ne!(broker.publisher(), rendezvous);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let pristine = broker.publish(&event).unwrap();
        assert!(matches!(pristine.decision, Decision::Multicast { .. }));
        broker
            .inject_fault(&FaultEvent::NodeDown { node: rendezvous })
            .unwrap();
        let out = broker.publish(&event).unwrap();
        // No shared tree without the rendezvous point: forced unicast.
        if !out.interested.is_empty() {
            assert!(matches!(
                out.decision,
                Decision::Unicast {
                    reason: UnicastReason::GroupSevered,
                }
            ));
            assert!(out.costs.scheme.is_finite());
        }
    }
}
