//! The end-to-end broker: matching + clustering-derived groups + the
//! dynamic distribution scheme + cost accounting.

use std::fmt;

use pubsub_clustering::{
    cluster, ClusteringAlgorithm, ClusteringConfig, GridModel, SpacePartition,
};
use pubsub_geom::{Grid, Point, Rect, Space};
use pubsub_netsim::{
    cost_events, multicast_tree_cost_flat, sparse_mode_cost_flat, unicast_and_tree_cost,
    unicast_cost_flat, CostScratch, DijkstraScratch, FlatNet, NodeId, PairCost, SptTable, Topology,
};
use pubsub_stree::STreeConfig;
use serde::{Deserialize, Serialize};

use crate::metrics::Delivery;
use crate::{
    BrokerError, CostReport, Decision, DistributionPolicy, Matcher, MessageCosts, MulticastGroups,
    SubscriptionId,
};

/// Which multicast flavor the broker simulates (the paper notes its
/// results apply to both network-supported and application-level
/// multicast).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// Network-supported dense-mode multicast: one message down the
    /// shortest-path tree rooted at the publisher (the paper's §5.2
    /// assumption).
    DenseMode,
    /// Network-supported sparse-mode multicast: the message is tunneled
    /// to a rendezvous point and flooded down the RP-rooted shared tree
    /// (the other router flavor the paper names; see
    /// `pubsub_netsim::sparse_mode_cost`).
    SparseMode {
        /// The rendezvous point all groups share.
        rendezvous: NodeId,
    },
    /// Application-level multicast: a greedy overlay tree among group
    /// members, every overlay hop a unicast (extension; see
    /// `pubsub_netsim::alm_tree_cost`).
    ApplicationLevel,
}

/// The outcome of publishing one event. Passive data: public fields.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PublishOutcome {
    /// How the message was delivered.
    pub decision: Decision,
    /// The group region `S_q` the event fell in (`None` for `S_0`), even
    /// when the decision was unicast or drop — efficiency trackers need
    /// to attribute unicast decisions to the group they bypassed.
    pub group_region: Option<usize>,
    /// The matching subscription ids.
    pub matched_subscriptions: Vec<SubscriptionId>,
    /// The deduplicated interested subscriber nodes `s`.
    pub interested: Vec<NodeId>,
    /// Scheme / unicast / ideal costs of this message.
    pub costs: MessageCosts,
}

/// Builder for [`Broker`]; see [`Broker::builder`].
pub struct BrokerBuilder {
    topology: Topology,
    space: Space,
    subscriptions: Vec<(NodeId, Rect)>,
    publisher: Option<NodeId>,
    stree_config: STreeConfig,
    clustering: ClusteringConfig,
    grid_cells: usize,
    threshold: f64,
    delivery: DeliveryMode,
    #[allow(clippy::type_complexity)]
    density: Option<Box<dyn Fn(&Rect) -> f64>>,
}

impl fmt::Debug for BrokerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerBuilder")
            .field("subscriptions", &self.subscriptions.len())
            .field("publisher", &self.publisher)
            .field("clustering", &self.clustering)
            .field("grid_cells", &self.grid_cells)
            .field("threshold", &self.threshold)
            .field("delivery", &self.delivery)
            .field("density", &self.density.as_ref().map(|_| "<closure>"))
            .finish_non_exhaustive()
    }
}

impl BrokerBuilder {
    /// Adds one subscription.
    pub fn subscription(mut self, node: NodeId, rect: Rect) -> Self {
        self.subscriptions.push((node, rect));
        self
    }

    /// Adds many subscriptions.
    pub fn subscriptions<I>(mut self, subs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Rect)>,
    {
        self.subscriptions.extend(subs);
        self
    }

    /// Sets the publisher node (default: the topology's first transit
    /// node — "the exchange feed").
    pub fn publisher(mut self, node: NodeId) -> Self {
        self.publisher = Some(node);
        self
    }

    /// Overrides the S-tree configuration (default: `M = 40`, `p = 0.3`).
    pub fn stree_config(mut self, config: STreeConfig) -> Self {
        self.stree_config = config;
        self
    }

    /// Overrides the clustering configuration (default: Forgy k-means
    /// with 11 groups, `T = 200`).
    pub fn clustering(mut self, config: ClusteringConfig) -> Self {
        self.clustering = config;
        self
    }

    /// Overrides the grid resolution `C` (cells per dimension, default
    /// 10).
    pub fn grid_cells(mut self, cells: usize) -> Self {
        self.grid_cells = cells;
        self
    }

    /// Sets the distribution threshold `t` (default 0.15, the paper's
    /// recommendation; 0 reproduces the static scheme).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Selects the multicast flavor (default dense-mode).
    pub fn delivery_mode(mut self, mode: DeliveryMode) -> Self {
        self.delivery = mode;
        self
    }

    /// Sets the publication density `p_p(·)` used by clustering (default:
    /// uniform over the space). Pass the analytic mass of the publication
    /// model driving the experiment, e.g.
    /// `.density(move |r| model.mass(r))`.
    pub fn density<F>(mut self, density: F) -> Self
    where
        F: Fn(&Rect) -> f64 + 'static,
    {
        self.density = Some(Box::new(density));
        self
    }

    /// Builds the broker: indexes subscriptions, clusters the event
    /// space, materializes multicast groups and precomputes routing.
    ///
    /// # Errors
    ///
    /// Propagates every layer's configuration errors; additionally
    /// rejects out-of-topology nodes and dimensionality mismatches.
    pub fn build(self) -> Result<Broker, BrokerError> {
        let policy = DistributionPolicy::new(self.threshold)?;
        let node_count = self.topology.graph().node_count();
        for (node, _) in &self.subscriptions {
            if node.0 as usize >= node_count {
                return Err(BrokerError::UnknownNode { node: node.0 });
            }
        }
        let publisher = match self.publisher {
            Some(p) => {
                if p.0 as usize >= node_count {
                    return Err(BrokerError::UnknownNode { node: p.0 });
                }
                p
            }
            None => *self
                .topology
                .transit_nodes()
                .first()
                .or_else(|| self.topology.stub_nodes().first())
                .ok_or(BrokerError::InvalidConfig {
                    parameter: "topology",
                    constraint: "at least one node",
                })?,
        };

        let matcher = Matcher::build(&self.space, &self.subscriptions, self.stree_config)?;

        // Dense subscriber indexing for the clustering model.
        let mut distinct: Vec<NodeId> = self.subscriptions.iter().map(|&(n, _)| n).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let index_of = |n: NodeId| distinct.binary_search(&n).expect("collected above");

        let grid = Grid::uniform(self.space.bounds().clone(), self.grid_cells)?;
        let space = &self.space;
        let indexed: Vec<(usize, Rect)> = self
            .subscriptions
            .iter()
            .map(|(n, r)| (index_of(*n), space.clamp(r)))
            .collect();
        let space_volume = self.space.bounds().volume();
        let default_density = move |r: &Rect| r.volume() / space_volume;
        let grid_model = match &self.density {
            Some(f) => GridModel::build(grid, distinct.len(), &indexed, f)?,
            None => GridModel::build(grid, distinct.len(), &indexed, default_density)?,
        };
        let partition = cluster(&grid_model, &self.clustering)?;
        let groups = MulticastGroups::from_partition(&grid_model, &partition, &distinct);

        // The compiled network engine: CSR adjacency once, then dense SPT
        // rows for every routing source the delivery mode needs, built in
        // parallel.
        let net = FlatNet::compile(self.topology.graph());
        let mut spt_sources = vec![publisher];
        if let DeliveryMode::SparseMode { rendezvous } = self.delivery {
            if rendezvous.0 as usize >= node_count {
                return Err(BrokerError::UnknownNode { node: rendezvous.0 });
            }
            spt_sources.push(rendezvous);
        }
        let spt = SptTable::build(&net, &spt_sources, None);
        let alm_dist = match self.delivery {
            DeliveryMode::DenseMode | DeliveryMode::SparseMode { .. } => None,
            DeliveryMode::ApplicationLevel => {
                // Full distance matrix so per-message Prim is table
                // lookups; one parallel flat-Dijkstra pass per row.
                let sources: Vec<NodeId> = self.topology.graph().node_ids().collect();
                let rows = pubsub_parallel::map_with_scratch(
                    &sources,
                    pubsub_parallel::effective_threads(None),
                    DijkstraScratch::new,
                    |&s, scratch| {
                        let sp = net.shortest_paths(s, scratch);
                        (0..node_count).map(|t| sp.dist(NodeId(t as u32))).collect()
                    },
                );
                Some(rows)
            }
        };

        let scheme_memo = (publisher, vec![None; groups.len()]);
        Ok(Broker {
            topology: self.topology,
            space: self.space,
            matcher,
            policy,
            grid_model,
            subscriber_nodes: distinct,
            partition,
            groups,
            publisher,
            net,
            spt,
            route_scratch: DijkstraScratch::new(),
            cost_scratch: CostScratch::new(),
            scheme_memo,
            delivery: self.delivery,
            alm_dist,
            report: CostReport::default(),
        })
    }
}

/// The content-based pub-sub broker of the paper, end to end: publish an
/// event, get back the matched subscribers, the unicast/multicast
/// decision and the communication costs.
#[derive(Debug)]
pub struct Broker {
    topology: Topology,
    space: Space,
    matcher: Matcher,
    policy: DistributionPolicy,
    /// The clustering input, retained so groups can be re-derived.
    grid_model: GridModel,
    /// Dense-index → node mapping for the grid model's subscribers.
    subscriber_nodes: Vec<NodeId>,
    partition: SpacePartition,
    groups: MulticastGroups,
    /// The default publisher; `publish_from` supports others.
    publisher: NodeId,
    /// The CSR compilation of the topology graph.
    net: FlatNet,
    /// Precomputed SPT rows per routing source (publishers seen so far
    /// plus the rendezvous point in sparse mode).
    spt: SptTable,
    /// Reusable Dijkstra state for lazily added publishers.
    route_scratch: DijkstraScratch,
    /// Reusable epoch-stamped marks for the per-event cost walks.
    cost_scratch: CostScratch,
    /// Memoized group-send costs for one publisher: the scheme cost of a
    /// multicast depends only on (publisher, group, delivery mode), so
    /// each group's tree walk happens once, not once per event. Reset
    /// when the publisher changes or the groups are rebuilt.
    scheme_memo: (NodeId, Vec<Option<f64>>),
    delivery: DeliveryMode,
    alm_dist: Option<Vec<Vec<f64>>>,
    report: CostReport,
}

impl Broker {
    /// Starts building a broker over a topology and event space.
    pub fn builder(topology: Topology, space: Space) -> BrokerBuilder {
        BrokerBuilder {
            topology,
            space,
            subscriptions: Vec::new(),
            publisher: None,
            stree_config: STreeConfig::default(),
            clustering: ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 11),
            grid_cells: 10,
            threshold: 0.15,
            delivery: DeliveryMode::DenseMode,
            density: None,
        }
    }

    /// Publishes one event from the default publisher: matches, decides,
    /// costs, and records.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DimensionMismatch`] if the event's
    /// dimensionality differs from the space's.
    pub fn publish(&mut self, event: &Point) -> Result<PublishOutcome, BrokerError> {
        self.publish_from(self.publisher, event)
    }

    /// Publishes one event from an arbitrary publisher node. The paper
    /// notes dense-mode router state is proportional to *publishers* ×
    /// groups; this entry point lets experiments model multiple feeds.
    /// Shortest-path trees are computed once per publisher and cached.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownNode`] if `publisher` is not in the
    ///   topology;
    /// * [`BrokerError::DimensionMismatch`] for a wrong-dimensional
    ///   event.
    pub fn publish_from(
        &mut self,
        publisher: NodeId,
        event: &Point,
    ) -> Result<PublishOutcome, BrokerError> {
        if publisher.0 as usize >= self.topology.graph().node_count() {
            return Err(BrokerError::UnknownNode { node: publisher.0 });
        }
        if event.dims() != self.space.dims() {
            return Err(BrokerError::DimensionMismatch {
                expected: self.space.dims(),
                got: event.dims(),
            });
        }
        self.spt
            .ensure(&self.net, publisher, &mut self.route_scratch);
        let (matched_subscriptions, interested) = self.matcher.match_event(event);
        Ok(self.decide_and_record(publisher, event, matched_subscriptions, interested, None))
    }

    /// Publishes a batch of events from the default publisher.
    ///
    /// The read-only matching stage fans out across `threads` worker
    /// threads (`None` = available parallelism) with per-thread scratch;
    /// the decide/cost/record stage then folds sequentially **in event
    /// order**, so the cumulative [`CostReport`] and the returned
    /// outcomes are identical to calling [`Broker::publish`] in a loop —
    /// for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DimensionMismatch`] if any event has the
    /// wrong dimensionality; the whole batch is validated up front, so on
    /// error nothing has been published or recorded.
    pub fn publish_batch(
        &mut self,
        events: &[Point],
        threads: Option<usize>,
    ) -> Result<Vec<PublishOutcome>, BrokerError> {
        for event in events {
            if event.dims() != self.space.dims() {
                return Err(BrokerError::DimensionMismatch {
                    expected: self.space.dims(),
                    got: event.dims(),
                });
            }
        }
        let publisher = self.publisher;
        self.spt
            .ensure(&self.net, publisher, &mut self.route_scratch);
        let matched = self.matcher.match_events(events, threads);
        // Dense mode batches the unicast + ideal-tree cost walks through
        // `cost_events`: one epoch-stamped scratch across the whole batch,
        // and the per-set arithmetic is identical to the sequential path,
        // so outcomes stay byte-identical to a `publish` loop.
        let precomputed: Option<Vec<PairCost>> = match self.delivery {
            DeliveryMode::DenseMode => {
                let view = self.spt.view(publisher).expect("ensured above");
                Some(cost_events(
                    view,
                    matched.iter().map(|(_, nodes)| nodes.as_slice()),
                    &mut self.cost_scratch,
                ))
            }
            _ => None,
        };
        Ok(events
            .iter()
            .zip(matched)
            .enumerate()
            .map(|(i, (event, (subs, interested)))| {
                let pre = precomputed.as_ref().map(|costs| costs[i]);
                self.decide_and_record(publisher, event, subs, interested, pre)
            })
            .collect())
    }

    /// The sequential tail of a publication: distribution decision, cost
    /// accounting and report recording. The publisher's SPT row must
    /// already be in the table. `precomputed` carries the batched
    /// unicast/ideal pair in dense mode ([`cost_events`]); `None` computes
    /// them here with the same walks.
    fn decide_and_record(
        &mut self,
        publisher: NodeId,
        event: &Point,
        matched_subscriptions: Vec<SubscriptionId>,
        interested: Vec<NodeId>,
        precomputed: Option<PairCost>,
    ) -> PublishOutcome {
        let group = self.partition.group_of_point(event);
        let group_size = group.map_or(0, |q| self.groups.members(q).len());
        let decision = self
            .policy
            .decide_counts(group, interested.len(), group_size);

        let (unicast, ideal) = match (precomputed, self.delivery) {
            (Some(pair), DeliveryMode::DenseMode) => (pair.unicast, pair.tree),
            (_, DeliveryMode::DenseMode) => {
                let view = self.spt.view(publisher).expect("publisher SPT ensured");
                let pair = unicast_and_tree_cost(view, &interested, &mut self.cost_scratch);
                (pair.unicast, pair.tree)
            }
            _ => {
                let view = self.spt.view(publisher).expect("publisher SPT ensured");
                let unicast = unicast_cost_flat(view, &interested, &mut self.cost_scratch);
                let ideal = Self::send_cost(
                    self.delivery,
                    &self.spt,
                    self.alm_dist.as_deref(),
                    publisher,
                    &interested,
                    &mut self.cost_scratch,
                );
                (unicast, ideal)
            }
        };
        let (scheme, delivery, wasted) = match &decision {
            Decision::Drop => (0.0, Delivery::Dropped, 0),
            Decision::Unicast { .. } => (unicast, Delivery::Unicast, 0),
            Decision::Multicast { group: q } => {
                // The scheme cost of a group send is event-independent, so
                // each (publisher, group) pair is walked at most once.
                if self.scheme_memo.0 != publisher {
                    self.scheme_memo = (publisher, vec![None; self.groups.len()]);
                }
                let members = self.groups.members(*q);
                let scheme = match self.scheme_memo.1[*q] {
                    Some(cost) => cost,
                    None => {
                        let cost = Self::send_cost(
                            self.delivery,
                            &self.spt,
                            self.alm_dist.as_deref(),
                            publisher,
                            members,
                            &mut self.cost_scratch,
                        );
                        self.scheme_memo.1[*q] = Some(cost);
                        cost
                    }
                };
                (
                    scheme,
                    Delivery::Multicast,
                    (members.len() - interested.len()) as u64,
                )
            }
        };
        let costs = MessageCosts {
            scheme,
            unicast,
            ideal,
        };
        self.report.record(costs, delivery, wasted);
        PublishOutcome {
            decision,
            group_region: group,
            matched_subscriptions,
            interested,
            costs,
        }
    }

    /// The cost of one multicast to the *whole* group `q` from the
    /// default publisher under the configured delivery mode — the
    /// per-group fixed cost the adaptive controller balances against
    /// unicast. Cold path (`&self`): allocates a fresh scratch rather
    /// than borrowing the broker's.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn group_multicast_cost(&self, q: usize) -> f64 {
        let mut scratch = CostScratch::new();
        Self::send_cost(
            self.delivery,
            &self.spt,
            self.alm_dist.as_deref(),
            self.publisher,
            self.groups.members(q),
            &mut scratch,
        )
    }

    /// Cost of one group send from `publisher` to `members` under the
    /// given delivery mode. Free of `&self` so the hot path can borrow
    /// the SPT table and the cost scratch disjointly. The publisher's
    /// (and, in sparse mode, the rendezvous point's) SPT row must be in
    /// the table.
    fn send_cost(
        delivery: DeliveryMode,
        spt: &SptTable,
        alm_dist: Option<&[Vec<f64>]>,
        publisher: NodeId,
        members: &[NodeId],
        scratch: &mut CostScratch,
    ) -> f64 {
        match delivery {
            DeliveryMode::DenseMode => {
                let view = spt.view(publisher).expect("publisher SPT ensured");
                multicast_tree_cost_flat(view, members, scratch)
            }
            DeliveryMode::SparseMode { rendezvous } => {
                let pub_view = spt.view(publisher).expect("publisher SPT ensured");
                let rp_view = spt.view(rendezvous).expect("rendezvous SPT built");
                sparse_mode_cost_flat(rp_view, pub_view.dist(rendezvous), members, scratch)
            }
            DeliveryMode::ApplicationLevel => Self::alm_cost(
                alm_dist.expect("ALM mode precomputes this"),
                publisher,
                members,
            ),
        }
    }

    /// Greedy Prim overlay over the precomputed distance matrix.
    fn alm_cost(dist: &[Vec<f64>], publisher: NodeId, members: &[NodeId]) -> f64 {
        let mut uniq: Vec<usize> = Vec::new();
        for &m in members {
            let i = m.0 as usize;
            if m != publisher && !uniq.contains(&i) {
                uniq.push(i);
            }
        }
        if uniq.is_empty() {
            return 0.0;
        }
        let src = publisher.0 as usize;
        let n = uniq.len();
        let mut in_tree = vec![false; n];
        let mut best: Vec<f64> = uniq.iter().map(|&m| dist[src][m]).collect();
        let mut total = 0.0;
        for _ in 0..n {
            let mut pick = usize::MAX;
            let mut pick_d = f64::INFINITY;
            for i in 0..n {
                if !in_tree[i] && best[i] < pick_d {
                    pick_d = best[i];
                    pick = i;
                }
            }
            in_tree[pick] = true;
            total += pick_d;
            for i in 0..n {
                if !in_tree[i] {
                    best[i] = best[i].min(dist[uniq[pick]][uniq[i]]);
                }
            }
        }
        total
    }

    /// The cumulative cost report since construction (or the last
    /// [`Broker::reset_report`]).
    pub fn report(&self) -> &CostReport {
        &self.report
    }

    /// Clears the cumulative report.
    pub fn reset_report(&mut self) {
        self.report = CostReport::default();
    }

    /// Changes the distribution threshold `t` without rebuilding the
    /// index, clustering or groups — threshold sweeps (Figure 6) only
    /// re-publish.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidConfig`] unless `0 ≤ t ≤ 1`.
    pub fn set_threshold(&mut self, threshold: f64) -> Result<(), BrokerError> {
        self.policy = DistributionPolicy::new(threshold)?;
        Ok(())
    }

    /// Re-clusters the event space with a different configuration,
    /// rebuilding the multicast groups while keeping the matcher, routing
    /// caches and report intact. Per-group threshold overrides are
    /// cleared (group identities change).
    ///
    /// # Errors
    ///
    /// Propagates clustering configuration errors; the broker is left
    /// unchanged on error.
    pub fn set_clustering(&mut self, config: &ClusteringConfig) -> Result<(), BrokerError> {
        let partition = cluster(&self.grid_model, config)?;
        self.groups =
            MulticastGroups::from_partition(&self.grid_model, &partition, &self.subscriber_nodes);
        self.partition = partition;
        self.policy.clear_group_thresholds();
        // Group identities (and member sets) changed; stale send costs
        // must not survive.
        self.scheme_memo = (self.publisher, vec![None; self.groups.len()]);
        Ok(())
    }

    /// Matches an event without publishing: no decision, no cost, no
    /// report mutation. Returns the matching subscription ids and the
    /// deduplicated interested subscriber nodes.
    pub fn match_only(&self, event: &Point) -> (Vec<SubscriptionId>, Vec<NodeId>) {
        self.matcher.match_event(event)
    }

    /// The grid model the clustering runs on (cell memberships, masses).
    pub fn grid_model(&self) -> &GridModel {
        &self.grid_model
    }

    /// The matcher (S-tree statistics, subscription lookup).
    pub fn matcher(&self) -> &Matcher {
        &self.matcher
    }

    /// The multicast groups `M_1..M_n`.
    pub fn groups(&self) -> &MulticastGroups {
        &self.groups
    }

    /// The event-space partition `S_1..S_n` (+ implicit `S_0`).
    pub fn partition(&self) -> &SpacePartition {
        &self.partition
    }

    /// The distribution policy in force.
    pub fn policy(&self) -> &DistributionPolicy {
        &self.policy
    }

    /// Mutable access to the distribution policy (e.g. to install
    /// per-group threshold overrides).
    pub fn policy_mut(&mut self) -> &mut DistributionPolicy {
        &mut self.policy
    }

    /// The publisher node.
    pub fn publisher(&self) -> NodeId {
        self.publisher
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The event space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The configured delivery mode.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.delivery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnicastReason;
    use pubsub_netsim::TransitStubConfig;

    fn space_2d() -> Space {
        Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
    }

    fn tiny_topo() -> Topology {
        TransitStubConfig::tiny().generate(5).unwrap()
    }

    fn rect(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::from_corners(lo, hi).unwrap()
    }

    /// Stub nodes subscribing to opposite halves of the space.
    fn build_two_camp_broker(threshold: f64, mode: DeliveryMode) -> Broker {
        let topo = tiny_topo();
        let nodes = topo.stub_nodes().to_vec();
        assert!(nodes.len() >= 8);
        let mut b = Broker::builder(topo, space_2d())
            .threshold(threshold)
            .delivery_mode(mode)
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .grid_cells(4);
        for (i, &n) in nodes.iter().enumerate().take(8) {
            let r = if i % 2 == 0 {
                rect(&[0.0, 0.0], &[5.0, 10.0])
            } else {
                rect(&[5.0, 0.0], &[10.0, 10.0])
            };
            b = b.subscription(n, r);
        }
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_publish_accounts_costs() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let out = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        // Half the nodes are interested.
        assert_eq!(out.interested.len(), 4);
        assert!(out.costs.unicast > 0.0);
        assert!(out.costs.ideal <= out.costs.unicast);
        assert!(out.costs.scheme > 0.0);
        let report = broker.report();
        assert_eq!(report.messages, 1);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn event_nobody_wants_is_dropped() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        // Outside the space: no matches.
        let out = broker
            .publish(&Point::new(vec![-5.0, -5.0]).unwrap())
            .unwrap();
        assert_eq!(out.decision, Decision::Drop);
        assert_eq!(out.costs.scheme, 0.0);
        assert_eq!(broker.report().dropped, 1);
    }

    #[test]
    fn threshold_one_forces_unicast_for_partial_interest() {
        let mut broker = build_two_camp_broker(1.0, DeliveryMode::DenseMode);
        let out = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        match out.decision {
            Decision::Unicast { .. } => {
                assert_eq!(out.costs.scheme, out.costs.unicast);
            }
            Decision::Multicast { group } => {
                // Full-group interest is legitimately multicast even at t=1.
                assert_eq!(broker.groups().members(group).len(), out.interested.len());
            }
            Decision::Drop => panic!("subscribers exist"),
        }
    }

    #[test]
    fn threshold_zero_is_static_multicast_when_group_hit() {
        let mut broker = build_two_camp_broker(0.0, DeliveryMode::DenseMode);
        let out = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        match out.decision {
            Decision::Multicast { .. } => {}
            Decision::Unicast {
                reason: UnicastReason::CatchAll,
            } => {} // event may fall in S0 depending on clustering
            other => panic!("static scheme should not threshold-unicast: {other:?}"),
        }
    }

    #[test]
    fn scheme_cost_never_below_ideal() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        for i in 0..50 {
            let x = f64::from(i % 10) + 0.5;
            let y = f64::from(i / 5) % 10.0 + 0.3;
            let out = broker.publish(&Point::new(vec![x, y]).unwrap()).unwrap();
            assert!(
                out.costs.scheme >= out.costs.ideal - 1e-9,
                "scheme {} < ideal {}",
                out.costs.scheme,
                out.costs.ideal
            );
        }
        let r = broker.report();
        assert_eq!(r.messages, 50);
        assert!(r.improvement_percent() <= 100.0 + 1e-9);
    }

    #[test]
    fn sparse_mode_pays_the_rendezvous_detour() {
        let topo = tiny_topo();
        let rp = topo.transit_nodes()[1];
        let mut dense = build_two_camp_broker(0.0, DeliveryMode::DenseMode);
        // Same broker but sparse via a rendezvous point that is not the
        // publisher.
        let nodes = tiny_topo().stub_nodes().to_vec();
        let mut builder = Broker::builder(tiny_topo(), space_2d())
            .threshold(0.0)
            .delivery_mode(DeliveryMode::SparseMode { rendezvous: rp })
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .grid_cells(4);
        for (i, &n) in nodes.iter().enumerate().take(8) {
            let r = if i % 2 == 0 {
                rect(&[0.0, 0.0], &[5.0, 10.0])
            } else {
                rect(&[5.0, 0.0], &[10.0, 10.0])
            };
            builder = builder.subscription(n, r);
        }
        let mut sparse = builder.build().unwrap();
        assert_eq!(
            sparse.delivery_mode(),
            DeliveryMode::SparseMode { rendezvous: rp }
        );

        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let d = dense.publish(&event).unwrap();
        let s = sparse.publish(&event).unwrap();
        assert_eq!(d.interested, s.interested);
        assert!(s.costs.scheme.is_finite());
        // Both multicast (t = 0); sparse additionally pays publisher->RP.
        if let (Decision::Multicast { .. }, Decision::Multicast { .. }) = (&d.decision, &s.decision)
        {
            assert!(s.costs.scheme >= d.costs.scheme - 1e-9 || s.costs.scheme > 0.0);
        }
        // Unknown rendezvous rejected at build time.
        let err = Broker::builder(tiny_topo(), space_2d())
            .delivery_mode(DeliveryMode::SparseMode {
                rendezvous: NodeId(40_000),
            })
            .build();
        assert!(matches!(err, Err(BrokerError::UnknownNode { .. })));
    }

    #[test]
    fn alm_mode_produces_finite_costs() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::ApplicationLevel);
        assert_eq!(broker.delivery_mode(), DeliveryMode::ApplicationLevel);
        let out = broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        assert!(out.costs.scheme.is_finite());
        assert!(out.costs.ideal.is_finite());
        assert!(out.costs.ideal <= out.costs.unicast + 1e-9);
    }

    #[test]
    fn builder_validation() {
        let topo = tiny_topo();
        // Unknown subscriber node.
        let err = Broker::builder(topo.clone(), space_2d())
            .subscription(NodeId(9999), rect(&[0.0, 0.0], &[1.0, 1.0]))
            .build();
        assert!(matches!(err, Err(BrokerError::UnknownNode { node: 9999 })));
        // Unknown publisher.
        let err = Broker::builder(topo.clone(), space_2d())
            .publisher(NodeId(9999))
            .build();
        assert!(matches!(err, Err(BrokerError::UnknownNode { .. })));
        // Bad threshold.
        let err = Broker::builder(topo.clone(), space_2d())
            .threshold(2.0)
            .build();
        assert!(matches!(err, Err(BrokerError::InvalidConfig { .. })));
        // Wrong-dimension subscription.
        let err = Broker::builder(topo, space_2d())
            .subscription(NodeId(0), Rect::from_corners(&[0.0], &[1.0]).unwrap())
            .build();
        assert!(matches!(err, Err(BrokerError::DimensionMismatch { .. })));
    }

    #[test]
    fn publish_rejects_wrong_dimension_events() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let err = broker.publish(&Point::new(vec![1.0]).unwrap());
        assert!(matches!(err, Err(BrokerError::DimensionMismatch { .. })));
    }

    #[test]
    fn reports_reset() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        broker
            .publish(&Point::new(vec![2.0, 5.0]).unwrap())
            .unwrap();
        assert_eq!(broker.report().messages, 1);
        broker.reset_report();
        assert_eq!(broker.report().messages, 0);
    }

    #[test]
    fn accessors_are_consistent() {
        let broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        assert_eq!(broker.matcher().subscription_count(), 8);
        assert!(broker.groups().len() <= 2);
        assert_eq!(broker.policy().threshold(), 0.15);
        assert_eq!(broker.space().dims(), 2);
        let publisher = broker.publisher();
        assert!(matches!(
            broker.topology().role(publisher),
            pubsub_netsim::NodeRole::Transit { .. }
        ));
    }

    #[test]
    fn publish_from_alternate_publishers() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let default_out = broker.publish(&event).unwrap();
        // Matching is publisher-independent.
        let near = default_out.interested[0];
        let near_out = broker.publish_from(near, &event).unwrap();
        assert_eq!(near_out.interested, default_out.interested);
        assert!(near_out.costs.unicast.is_finite());
        // Publishing from a receiver: that receiver costs nothing, so the
        // unicast bill covers one fewer hop-path and the cost invariants
        // still hold.
        assert!(near_out.costs.ideal <= near_out.costs.unicast + 1e-9);
        // Cached SPTs make the repeat identical.
        let again = broker.publish_from(near, &event).unwrap();
        assert_eq!(again.costs, near_out.costs);
        // Unknown publisher rejected.
        assert!(matches!(
            broker.publish_from(NodeId(60_000), &event),
            Err(BrokerError::UnknownNode { .. })
        ));
    }

    #[test]
    fn adaptive_controller_end_to_end() {
        use crate::{AdaptiveConfig, AdaptiveController};
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let mut controller = AdaptiveController::for_broker(
            &broker,
            AdaptiveConfig {
                min_hits: 1,
                margin: 1.0,
            },
        );
        for i in 0..100 {
            let x = f64::from(i % 10) + 0.5;
            let y = f64::from(i % 7) + 0.5;
            let out = broker.publish(&Point::new(vec![x, y]).unwrap()).unwrap();
            controller.observe(&out);
        }
        assert!(controller.tracker().observed() > 0);
        let summaries = controller.tracker().summarize(&broker);
        assert_eq!(summaries.len(), broker.groups().len());
        for s in &summaries {
            assert!(s.break_even_ratio >= 0.0 && s.break_even_ratio <= 1.0);
            assert!(s.group_multicast_cost >= 0.0);
        }
        let applied = controller.apply(&mut broker).unwrap();
        assert!(applied >= 1);
        // The policy now carries overrides.
        let t0 = broker.policy().threshold_for(0);
        assert!((0.0..=1.0).contains(&t0));
    }

    #[test]
    fn set_clustering_rebuilds_groups_in_place() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let before = broker.publish(&event).unwrap();
        let groups_before = broker.groups().len();

        broker
            .set_clustering(&ClusteringConfig::new(
                ClusteringAlgorithm::MinimumSpanningTree,
                4,
            ))
            .unwrap();
        assert!(broker.groups().len() <= 4);
        assert_ne!(broker.groups().len(), 0);
        // Matching is untouched; only the group structure changed.
        let after = broker.publish(&event).unwrap();
        assert_eq!(after.interested, before.interested);
        // The report kept accumulating across the swap.
        assert_eq!(broker.report().messages, 2);
        let _ = groups_before;

        // Invalid config leaves the broker usable.
        let err =
            broker.set_clustering(&ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 0));
        assert!(err.is_err());
        assert!(broker.publish(&event).is_ok());
    }

    #[test]
    fn match_only_does_not_touch_the_report() {
        let broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let (subs, nodes) = broker.match_only(&event);
        assert!(!subs.is_empty());
        assert_eq!(nodes.len(), 4);
        assert_eq!(broker.report().messages, 0);
        assert!(broker.grid_model().subscriber_count() > 0);
    }

    #[test]
    fn publish_batch_is_identical_to_sequential_publish() {
        let events: Vec<Point> = (0..120)
            .map(|i| Point::new(vec![f64::from(i % 11), f64::from(i % 13) * 0.8]).unwrap())
            .collect();
        let mut sequential = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let expected: Vec<PublishOutcome> = events
            .iter()
            .map(|e| sequential.publish(e).unwrap())
            .collect();
        let expected_report = *sequential.report();

        for threads in [Some(1), Some(3), None] {
            let mut batched = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
            let outcomes = batched.publish_batch(&events, threads).unwrap();
            assert_eq!(outcomes, expected, "threads={threads:?}");
            assert_eq!(batched.report(), &expected_report, "threads={threads:?}");
        }
    }

    #[test]
    fn scheme_memo_survives_publisher_switches() {
        // t = 0 forces multicast on group hits, exercising the memo; the
        // costs must be identical whether the walk was fresh or cached,
        // and switching publishers must not leak another publisher's
        // group costs.
        let mut broker = build_two_camp_broker(0.0, DeliveryMode::DenseMode);
        let event = Point::new(vec![2.0, 5.0]).unwrap();
        let first = broker.publish(&event).unwrap();
        let other = first.interested[0];
        let via_other = broker.publish_from(other, &event).unwrap();
        let back = broker.publish(&event).unwrap();
        assert_eq!(first.costs, back.costs);
        if first.decision == via_other.decision {
            // Same group, different root: the walk really re-ran.
            assert!(via_other.costs.scheme.is_finite());
        }
        // Repeating the other publisher hits its memo and agrees with the
        // fresh walk.
        let first_other = broker.publish_from(other, &event).unwrap();
        assert_eq!(via_other.costs, first_other.costs);
    }

    #[test]
    fn flat_costs_are_byte_identical_to_node_based_walks() {
        // Acceptance gate for the compiled engine: every cost the broker
        // reports must equal the legacy node-based SPT walk bit for bit.
        use pubsub_netsim::{dijkstra, multicast_tree_cost, unicast_cost};
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let spt = dijkstra(broker.topology().graph(), broker.publisher());
        let events: Vec<Point> = (0..60)
            .map(|i| Point::new(vec![f64::from(i % 10) + 0.5, f64::from(i % 7) + 0.5]).unwrap())
            .collect();
        let outcomes = broker.publish_batch(&events, None).unwrap();
        for out in &outcomes {
            assert_eq!(
                out.costs.unicast.to_bits(),
                unicast_cost(&spt, &out.interested).to_bits()
            );
            assert_eq!(
                out.costs.ideal.to_bits(),
                multicast_tree_cost(&spt, &out.interested).to_bits()
            );
            if let Decision::Multicast { group } = out.decision {
                assert_eq!(
                    out.costs.scheme.to_bits(),
                    multicast_tree_cost(&spt, broker.groups().members(group)).to_bits()
                );
            }
        }
    }

    #[test]
    fn publish_batch_rejects_bad_events_without_recording() {
        let mut broker = build_two_camp_broker(0.15, DeliveryMode::DenseMode);
        let events = vec![
            Point::new(vec![2.0, 5.0]).unwrap(),
            Point::new(vec![1.0]).unwrap(),
        ];
        assert!(matches!(
            broker.publish_batch(&events, None),
            Err(BrokerError::DimensionMismatch { .. })
        ));
        assert_eq!(broker.report().messages, 0);
    }

    #[test]
    fn default_publisher_is_first_transit_node() {
        let topo = tiny_topo();
        let first_transit = topo.transit_nodes()[0];
        let broker = Broker::builder(topo, space_2d()).build().unwrap();
        assert_eq!(broker.publisher(), first_transit);
    }
}
