//! Data structures of the fused batch-publish pipeline: per-worker CSR
//! match arenas and the zero-copy [`BatchMatches`] view stitched over
//! them.
//!
//! `Broker::publish_batch` runs match → cost → decide fused per worker on
//! a persistent [`pubsub_parallel::WorkerPool`]: each worker owns one
//! [`PublishScratch`] (match scratch, epoch-stamped cost scratch, result
//! arena, per-event metadata) that is constructed once and reused across
//! batches, so the steady-state batch path performs **zero per-event heap
//! allocations**. Matches are appended into a [`MatchArena`] — flat
//! `subs`/`nodes` id vectors plus CSR offset vectors — instead of one
//! `Vec` per event, and the per-worker arenas are read back *without
//! copying* through [`BatchMatches`], which maps a global event index to
//! its `(worker, local)` slot arithmetically from the block-cyclic
//! assignment.

use pubsub_netsim::{CostScratch, NodeId, PairCost};
use pubsub_parallel::{PipelineScratch, BLOCK};

use crate::matcher::MatchScratch;
use crate::{Decision, SubscriptionId, UnicastReason};

/// A reusable CSR result arena for batch matching: one flat vector of
/// matching subscription ids and one of deduplicated interested nodes,
/// each cut into per-event slices by an offsets vector. Filled through
/// `Matcher::match_events_into_arena` (or the overlaid variant); reset
/// with [`MatchArena::begin`], which keeps the capacity so a warm arena
/// never allocates.
#[derive(Debug, Default, Clone)]
pub struct MatchArena {
    /// Matching subscription ids, ascending within each event's slice.
    pub(crate) subs: Vec<SubscriptionId>,
    /// CSR offsets into `subs`: event `i` owns `subs[sub_offsets[i]..sub_offsets[i+1]]`.
    pub(crate) sub_offsets: Vec<u32>,
    /// Deduplicated interested nodes, ascending within each event's slice.
    pub(crate) nodes: Vec<NodeId>,
    /// CSR offsets into `nodes`.
    pub(crate) node_offsets: Vec<u32>,
    /// Per-event reachability split (degraded fault mode only): event
    /// `i`'s node slice is stably partitioned into `splits[i]` reachable
    /// nodes followed by the unreachable tail. Empty on pristine batches,
    /// where the whole slice is the interested set.
    pub(crate) splits: Vec<u32>,
    /// Capacities snapshotted by [`MatchArena::begin`] for growth
    /// detection.
    caps: [usize; 5],
}

impl MatchArena {
    /// Creates an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        MatchArena::default()
    }

    /// Starts a new batch: clears the arena but keeps its capacity.
    pub fn begin(&mut self) {
        self.subs.clear();
        self.nodes.clear();
        self.sub_offsets.clear();
        self.node_offsets.clear();
        self.splits.clear();
        self.sub_offsets.push(0);
        self.node_offsets.push(0);
        self.caps = self.capacities();
    }

    fn capacities(&self) -> [usize; 5] {
        [
            self.subs.capacity(),
            self.sub_offsets.capacity(),
            self.nodes.capacity(),
            self.node_offsets.capacity(),
            self.splits.capacity(),
        ]
    }

    /// Whether any buffer reallocated since the last [`MatchArena::begin`]
    /// — false on every batch once the arena is warm.
    pub fn grew(&self) -> bool {
        self.capacities() != self.caps
    }

    /// Seals the current event: everything appended to `subs`/`nodes`
    /// since the previous seal becomes the next event's slices.
    pub(crate) fn end_event(&mut self) {
        self.sub_offsets.push(self.subs.len() as u32);
        self.node_offsets.push(self.nodes.len() as u32);
    }

    /// Number of events appended since the last [`MatchArena::begin`].
    pub fn event_count(&self) -> usize {
        self.sub_offsets.len().saturating_sub(1)
    }

    /// The matching subscription ids of local event `local` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `local >= event_count()`.
    pub fn sub_slice(&self, local: usize) -> &[SubscriptionId] {
        &self.subs[self.sub_offsets[local] as usize..self.sub_offsets[local + 1] as usize]
    }

    /// The deduplicated interested nodes of local event `local`
    /// (ascending by node id).
    ///
    /// # Panics
    ///
    /// Panics if `local >= event_count()`.
    pub fn node_slice(&self, local: usize) -> &[NodeId] {
        &self.nodes[self.node_offsets[local] as usize..self.node_offsets[local + 1] as usize]
    }

    /// The nodes the event can actually be delivered to: on a pristine
    /// batch (no reachability split recorded) the full node slice, on a
    /// degraded batch the reachable prefix left by
    /// [`MatchArena::partition_reachable`]. Ascending by node id either
    /// way.
    pub(crate) fn interested_slice(&self, local: usize) -> &[NodeId] {
        let start = self.node_offsets[local] as usize;
        let end = match self.splits.get(local) {
            Some(&split) => start + split as usize,
            None => self.node_offsets[local + 1] as usize,
        };
        &self.nodes[start..end]
    }

    /// The matched-but-unreachable tail of a degraded event's node slice
    /// (empty on pristine batches).
    pub(crate) fn unreachable_slice(&self, local: usize) -> &[NodeId] {
        let end = self.node_offsets[local + 1] as usize;
        let start = match self.splits.get(local) {
            Some(&split) => self.node_offsets[local] as usize + split as usize,
            None => end,
        };
        &self.nodes[start..end]
    }

    /// Stably partitions event `local`'s node slice in place into the
    /// reachable prefix and the unreachable tail (both keep their
    /// ascending order) and records the split point. Must be called once
    /// per event, in local order, right after the event is matched.
    pub(crate) fn partition_reachable(
        &mut self,
        local: usize,
        tmp: &mut Vec<NodeId>,
        mut reachable: impl FnMut(NodeId) -> bool,
    ) {
        debug_assert_eq!(self.splits.len(), local, "splits recorded in order");
        let start = self.node_offsets[local] as usize;
        let end = self.node_offsets[local + 1] as usize;
        tmp.clear();
        let mut w = start;
        for r in start..end {
            let n = self.nodes[r];
            if reachable(n) {
                self.nodes[w] = n;
                w += 1;
            } else {
                tmp.push(n);
            }
        }
        self.nodes[w..end].copy_from_slice(tmp);
        self.splits.push((w - start) as u32);
    }

    /// Total subscription ids across all events of the batch.
    pub fn total_subs(&self) -> usize {
        self.subs.len()
    }

    /// Total interested-node entries across all events of the batch.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// How the fused decide stage resolved one event — a compact tag the
/// sequential fold re-expands into a [`Decision`]. Kept separate from
/// `Decision` so per-event metadata stays `Copy` and heap-free.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DecisionTag {
    Drop,
    UnicastCatchAll,
    UnicastBelowThreshold,
    UnicastGroupSevered,
    Multicast,
    PartialMulticast,
}

/// Sentinel for "the event fell in the catch-all region `S_0`".
pub(crate) const NO_GROUP: u32 = u32::MAX;

/// Per-event output of the fused match → cost → decide worker pass:
/// everything the sequential fold needs besides the arena slices.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EventMeta {
    /// Pure-unicast cost to the interested set.
    pub unicast: f64,
    /// Ideal per-message multicast cost to the interested set.
    pub ideal: f64,
    /// The group region `S_q` the event fell in ([`NO_GROUP`] = `S_0`).
    pub group: u32,
    pub decision: DecisionTag,
}

impl EventMeta {
    /// Re-expands the tag into the `Decision` / `group_region` pair of
    /// `PublishOutcome` — bit-identical to what the sequential path's
    /// `DistributionPolicy::decide_counts` returned in the worker.
    pub fn decode(&self) -> (Decision, Option<usize>) {
        let region = (self.group != NO_GROUP).then_some(self.group as usize);
        let decision = match self.decision {
            DecisionTag::Drop => Decision::Drop,
            DecisionTag::UnicastCatchAll => Decision::Unicast {
                reason: UnicastReason::CatchAll,
            },
            DecisionTag::UnicastBelowThreshold => Decision::Unicast {
                reason: UnicastReason::BelowThreshold,
            },
            DecisionTag::UnicastGroupSevered => Decision::Unicast {
                reason: UnicastReason::GroupSevered,
            },
            DecisionTag::Multicast => Decision::Multicast {
                group: self.group as usize,
            },
            DecisionTag::PartialMulticast => Decision::PartialMulticast {
                group: self.group as usize,
            },
        };
        (decision, region)
    }
}

impl From<&Decision> for DecisionTag {
    fn from(decision: &Decision) -> Self {
        match decision {
            Decision::Drop => DecisionTag::Drop,
            Decision::Unicast {
                reason: UnicastReason::CatchAll,
            } => DecisionTag::UnicastCatchAll,
            Decision::Unicast {
                reason: UnicastReason::BelowThreshold,
            } => DecisionTag::UnicastBelowThreshold,
            Decision::Unicast {
                reason: UnicastReason::GroupSevered,
            } => DecisionTag::UnicastGroupSevered,
            Decision::Multicast { .. } => DecisionTag::Multicast,
            Decision::PartialMulticast { .. } => DecisionTag::PartialMulticast,
        }
    }
}

/// One worker's whole reusable state for the fused publish pipeline:
/// match scratch, epoch-stamped cost scratch, the CSR result arena, a
/// per-block cost buffer and the per-event metadata. Constructed once per
/// pool worker and reused for every batch.
#[derive(Debug, Default)]
pub struct PublishScratch {
    pub(crate) matching: MatchScratch,
    pub(crate) cost: CostScratch,
    pub(crate) arena: MatchArena,
    /// Unicast/ideal pairs of the block being fused (dense mode).
    pub(crate) pairs: Vec<PairCost>,
    pub(crate) meta: Vec<EventMeta>,
    /// Scratch for the stable reachability partition of degraded-mode
    /// batches.
    pub(crate) reach_tmp: Vec<NodeId>,
    /// `pairs`/`meta`/`reach_tmp` capacities snapshotted at batch start
    /// for growth detection.
    aux_caps: [usize; 3],
}

impl PublishScratch {
    /// Whether any of the worker's buffers reallocated during the current
    /// batch — false once the state is warm.
    pub(crate) fn grew(&self) -> bool {
        self.arena.grew()
            || self.aux_caps
                != [
                    self.pairs.capacity(),
                    self.meta.capacity(),
                    self.reach_tmp.capacity(),
                ]
    }
}

impl PipelineScratch for PublishScratch {
    fn begin_batch(&mut self) {
        self.arena.begin();
        self.pairs.clear();
        self.meta.clear();
        self.reach_tmp.clear();
        self.aux_caps = [
            self.pairs.capacity(),
            self.meta.capacity(),
            self.reach_tmp.capacity(),
        ];
    }
}

/// A zero-copy view over the per-worker arenas of one fused batch,
/// presenting them as if they were a single CSR structure indexed by the
/// *global* event index. No stitching copy happens: the block-cyclic
/// assignment (fixed [`BLOCK`]-sized blocks, block `b` → worker
/// `b % workers`) makes the owning worker and the local slot of any
/// global index pure arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct BatchMatches<'a> {
    pub(crate) states: &'a [PublishScratch],
    pub(crate) workers: usize,
    pub(crate) len: usize,
}

impl<'a> BatchMatches<'a> {
    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `(worker, local event)` slot of global event `i`. Worker `w`
    /// owns blocks `w, w + workers, …`; all of a worker's blocks are full
    /// except possibly the globally last one, so the local index is
    /// `(full blocks before it) · BLOCK + offset in block`.
    fn locate(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.len);
        let block = i / BLOCK;
        (
            block % self.workers,
            (block / self.workers) * BLOCK + i % BLOCK,
        )
    }

    /// The matching subscription ids of event `i` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn subs(&self, i: usize) -> &'a [SubscriptionId] {
        let (w, local) = self.locate(i);
        self.states[w].arena.sub_slice(local)
    }

    /// The deduplicated interested nodes of event `i` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn nodes(&self, i: usize) -> &'a [NodeId] {
        let (w, local) = self.locate(i);
        self.states[w].arena.node_slice(local)
    }

    /// The fused-stage metadata of event `i`.
    pub(crate) fn meta(&self, i: usize) -> EventMeta {
        let (w, local) = self.locate(i);
        self.states[w].meta[local]
    }

    /// The deliverable (reachable) interested nodes of event `i` — the
    /// full node slice on pristine batches, the reachable prefix on
    /// degraded ones.
    pub(crate) fn interested(&self, i: usize) -> &'a [NodeId] {
        let (w, local) = self.locate(i);
        self.states[w].arena.interested_slice(local)
    }

    /// The matched-but-unreachable nodes of event `i` (empty on pristine
    /// batches).
    pub(crate) fn unreachable(&self, i: usize) -> &'a [NodeId] {
        let (w, local) = self.locate(i);
        self.states[w].arena.unreachable_slice(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_reuse_keeps_capacity() {
        let mut arena = MatchArena::new();
        arena.begin();
        for i in 0..100u32 {
            arena.subs.push(SubscriptionId(i));
            arena.nodes.push(NodeId(i % 7));
            arena.end_event();
        }
        assert_eq!(arena.event_count(), 100);
        assert!(arena.grew(), "first batch grows from empty");
        assert_eq!(arena.sub_slice(3), &[SubscriptionId(3)]);
        assert_eq!(arena.node_slice(8), &[NodeId(1)]);
        assert_eq!(arena.total_subs(), 100);
        assert_eq!(arena.total_nodes(), 100);

        arena.begin();
        for i in 0..100u32 {
            arena.subs.push(SubscriptionId(i));
            arena.nodes.push(NodeId(i % 7));
            arena.end_event();
        }
        assert!(!arena.grew(), "second identical batch reuses capacity");
    }

    #[test]
    fn empty_events_get_empty_slices() {
        let mut arena = MatchArena::new();
        arena.begin();
        arena.end_event();
        arena.subs.push(SubscriptionId(9));
        arena.end_event();
        assert_eq!(arena.event_count(), 2);
        assert!(arena.sub_slice(0).is_empty());
        assert!(arena.node_slice(0).is_empty());
        assert_eq!(arena.sub_slice(1), &[SubscriptionId(9)]);
    }

    #[test]
    fn batch_view_locates_block_cyclic_slots() {
        // 3 workers, BLOCK-sized blocks, 2.5 blocks of events: global
        // index -> (worker, local) must invert the assignment.
        let workers = 3;
        let len = BLOCK * 2 + BLOCK / 2;
        let mut states: Vec<PublishScratch> =
            (0..workers).map(|_| PublishScratch::default()).collect();
        for (w, state) in states.iter_mut().enumerate() {
            state.begin_batch();
            for range in pubsub_parallel::block_ranges(len, workers, w) {
                for i in range {
                    state.arena.subs.push(SubscriptionId(i as u32));
                    state.arena.end_event();
                }
            }
        }
        let batch = BatchMatches {
            states: &states,
            workers,
            len,
        };
        assert_eq!(batch.len(), len);
        assert!(!batch.is_empty());
        for i in 0..len {
            assert_eq!(batch.subs(i), &[SubscriptionId(i as u32)], "event {i}");
            assert!(batch.nodes(i).is_empty());
        }
    }

    #[test]
    fn decision_tags_roundtrip() {
        for decision in [
            Decision::Drop,
            Decision::Unicast {
                reason: UnicastReason::CatchAll,
            },
            Decision::Unicast {
                reason: UnicastReason::BelowThreshold,
            },
            Decision::Unicast {
                reason: UnicastReason::GroupSevered,
            },
            Decision::Multicast { group: 5 },
            Decision::PartialMulticast { group: 5 },
        ] {
            let group = match &decision {
                Decision::Multicast { group } | Decision::PartialMulticast { group } => {
                    *group as u32
                }
                Decision::Unicast {
                    reason: UnicastReason::CatchAll,
                } => NO_GROUP,
                _ => 5,
            };
            let meta = EventMeta {
                unicast: 0.0,
                ideal: 0.0,
                group,
                decision: DecisionTag::from(&decision),
            };
            let (decoded, region) = meta.decode();
            assert_eq!(decoded, decision);
            assert_eq!(region, (group != NO_GROUP).then_some(group as usize));
        }
    }
}
