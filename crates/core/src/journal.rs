//! Durable subscription journal: a checksummed, length-prefixed WAL of
//! subscribe/unsubscribe/recompile operations plus epoch-consistent
//! registry snapshots with log truncation.
//!
//! The journal persists the **mutable layer** of the two-layer broker —
//! the [`SubscriptionRegistry`] — because everything else the publish
//! path reads is a deterministic compile of it. Recovery therefore
//! replays `snapshot + WAL tail` into a restored registry (dead slots
//! preserved, so handle numbering is identical) and runs **one** engine
//! compile, which by the recompile-parity property is bit-identical to a
//! live broker that called `recompile()` at the recovery point.
//!
//! # On-disk format
//!
//! Both files live in one journal directory:
//!
//! * `wal.bin` — a sequence of records, each
//!   `[u32 LE payload_len][u32 LE crc32(payload)][payload]`. The payload
//!   is one operation: tag byte `1` (subscribe: handle, node, dims, and
//!   per-dimension `f64` corner bits), `2` (unsubscribe: handle) or `3`
//!   (recompile, no fields).
//! * `snapshot.bin` — a 4-byte magic followed by one record-framed
//!   registry image (node count, next slot, live entries). Written to a
//!   temporary file and atomically renamed, so a crash never leaves a
//!   half-written snapshot; the WAL is truncated only after the rename.
//!
//! # Torn-write analysis
//!
//! A crash can leave the WAL with (a) a partial header, (b) a complete
//! header but a short payload, or (c) a complete record whose payload
//! was torn mid-write (checksum mismatch). Replay stops cleanly at the
//! first such record, counts it as truncated, and resuming truncates the
//! file back to the valid prefix — an op is recovered iff its record was
//! fully written, which is exactly the append-after-apply, ack-after-
//! append contract: **acked control ops are exactly-once, the single op
//! in flight at the crash is at-most-once**.
//!
//! A crash can also land *between* the snapshot rename and the WAL
//! truncation, leaving a snapshot that already folded the records still
//! sitting in the WAL. Recovery handles that window by replaying
//! idempotently: handles are never reused, so a subscribe whose handle
//! is below the restored `next_slot`, or an unsubscribe of an
//! already-dead handle, is a stale record the snapshot absorbed — it is
//! skipped and counted (`RecoveryCounters::stale_ops`), never an error.
//!
//! # Durability scope
//!
//! With the default [`JournalConfig::sync_writes`] (on), every append
//! is `fsync`ed (`sync_data`) before the caller acks, the snapshot file
//! is synced before the rename, and the journal directory is synced
//! after it — acked ops survive OS crashes and power loss, not just
//! process death. Turning `sync_writes` off relaxes appends to
//! page-cache durability: acked ops then survive any *process*-level
//! kill (the crash model the chaos tests exercise) but an OS crash may
//! drop the most recent acks. Benchmarks use the relaxed mode where
//! journal setup cost would otherwise dominate.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pubsub_geom::Rect;
use pubsub_netsim::NodeId;

use crate::registry::SubscriptionRegistry;
use crate::BrokerError;

/// WAL file name inside the journal directory.
const WAL_FILE: &str = "wal.bin";
/// Snapshot file name inside the journal directory.
const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary snapshot name; renamed over [`SNAPSHOT_FILE`] atomically.
const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// Snapshot magic: `PSJ1`.
const SNAPSHOT_MAGIC: [u8; 4] = *b"PSJ1";

const TAG_SUBSCRIBE: u8 = 1;
const TAG_UNSUBSCRIBE: u8 = 2;
const TAG_RECOMPILE: u8 = 3;

fn io_err(context: &str, e: &std::io::Error) -> BrokerError {
    BrokerError::Journal {
        message: format!("{context}: {e}"),
    }
}

fn corrupt(context: impl Into<String>) -> BrokerError {
    BrokerError::Journal {
        message: context.into(),
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `data`. Implemented in-crate —
/// journal records are control-plane sized, so the bitwise form is fast
/// enough and avoids a dependency.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One durable control-plane operation, as journaled.
#[derive(Clone, PartialEq, Debug)]
pub enum JournalOp {
    /// A subscription was registered under `handle`.
    Subscribe {
        /// The raw handle the registry issued (slot index).
        handle: u32,
        /// The owning node's raw id.
        node: u32,
        /// The registered (pre-clamp) rectangle.
        rect: Rect,
    },
    /// The subscription at `handle` was removed.
    Unsubscribe {
        /// The raw handle that was removed.
        handle: u32,
    },
    /// A full engine recompile ran. Replay treats this as a no-op — the
    /// recovery compile already folds every surviving subscription — but
    /// journaling it keeps the op stream a faithful history.
    Recompile,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BrokerError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| corrupt("journal payload shorter than its fields"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, BrokerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, BrokerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn u8(&mut self) -> Result<u8, BrokerError> {
        Ok(self.take(1)?[0])
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn put_rect(buf: &mut Vec<u8>, rect: &Rect) {
    put_u32(buf, rect.dims() as u32);
    for d in 0..rect.dims() {
        let side = rect.side(d);
        put_u64(buf, side.lo().to_bits());
        put_u64(buf, side.hi().to_bits());
    }
}

fn read_rect(cur: &mut Cursor<'_>) -> Result<Rect, BrokerError> {
    let dims = cur.u32()? as usize;
    if dims == 0 || dims > 1 << 16 {
        return Err(corrupt(format!("journal rect has {dims} dimensions")));
    }
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        lo.push(f64::from_bits(cur.u64()?));
        hi.push(f64::from_bits(cur.u64()?));
    }
    Rect::from_corners(&lo, &hi)
        .map_err(|e| corrupt(format!("journal rect failed validation: {e}")))
}

impl JournalOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.clear();
        match self {
            JournalOp::Subscribe { handle, node, rect } => {
                buf.push(TAG_SUBSCRIBE);
                put_u32(buf, *handle);
                put_u32(buf, *node);
                put_rect(buf, rect);
            }
            JournalOp::Unsubscribe { handle } => {
                buf.push(TAG_UNSUBSCRIBE);
                put_u32(buf, *handle);
            }
            JournalOp::Recompile => buf.push(TAG_RECOMPILE),
        }
    }

    fn decode(payload: &[u8]) -> Result<JournalOp, BrokerError> {
        let mut cur = Cursor::new(payload);
        let op = match cur.u8()? {
            TAG_SUBSCRIBE => JournalOp::Subscribe {
                handle: cur.u32()?,
                node: cur.u32()?,
                rect: read_rect(&mut cur)?,
            },
            TAG_UNSUBSCRIBE => JournalOp::Unsubscribe { handle: cur.u32()? },
            TAG_RECOMPILE => JournalOp::Recompile,
            other => return Err(corrupt(format!("unknown journal op tag {other}"))),
        };
        if !cur.done() {
            return Err(corrupt("journal op payload has trailing bytes"));
        }
        Ok(op)
    }
}

/// A registry image as stored in `snapshot.bin`: enough to rebuild the
/// [`SubscriptionRegistry`] with identical handle numbering (dead slots
/// stay dead, so removed handles stay invalid after recovery).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RegistryImage {
    /// Node count of the topology the registry was created for.
    pub node_count: u32,
    /// Next slot the registry would issue (total handles ever issued).
    pub next_slot: u32,
    /// Live subscriptions: (raw handle, raw node, registered rect), in
    /// handle order.
    pub live: Vec<(u32, u32, Rect)>,
}

impl RegistryImage {
    /// Captures the image of a live registry.
    pub fn capture(registry: &SubscriptionRegistry) -> Self {
        RegistryImage {
            node_count: registry.node_capacity() as u32,
            next_slot: registry.issued() as u32,
            live: registry
                .live()
                .map(|(h, n, r)| (h.raw(), n.0, r.clone()))
                .collect(),
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        buf.clear();
        put_u32(buf, self.node_count);
        put_u32(buf, self.next_slot);
        put_u32(buf, self.live.len() as u32);
        for (handle, node, rect) in &self.live {
            put_u32(buf, *handle);
            put_u32(buf, *node);
            put_rect(buf, rect);
        }
    }

    fn decode(payload: &[u8]) -> Result<RegistryImage, BrokerError> {
        let mut cur = Cursor::new(payload);
        let node_count = cur.u32()?;
        let next_slot = cur.u32()?;
        let count = cur.u32()? as usize;
        if count > next_slot as usize {
            return Err(corrupt("snapshot live count exceeds issued slots"));
        }
        let mut live = Vec::with_capacity(count);
        for _ in 0..count {
            let handle = cur.u32()?;
            let node = cur.u32()?;
            let rect = read_rect(&mut cur)?;
            live.push((handle, node, rect));
        }
        if !cur.done() {
            return Err(corrupt("snapshot payload has trailing bytes"));
        }
        Ok(RegistryImage {
            node_count,
            next_slot,
            live,
        })
    }

    /// Rebuilds a registry from the image.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Journal`] if the image is internally inconsistent
    /// (out-of-range handles or nodes, duplicate handles).
    pub fn restore(&self) -> Result<SubscriptionRegistry, BrokerError> {
        SubscriptionRegistry::restore(
            self.node_count as usize,
            self.next_slot,
            self.live
                .iter()
                .map(|(h, n, r)| (*h, NodeId(*n), r.clone())),
        )
    }
}

/// What [`DurableJournal::resume`] found on disk: the last snapshot (if
/// any), the valid WAL tail after it, and how many trailing records were
/// torn and discarded.
#[derive(Debug)]
pub struct JournalReplay {
    /// The last durable registry snapshot; `None` for a journal that
    /// never snapshotted (replay starts from an empty registry).
    pub image: Option<RegistryImage>,
    /// Operations journaled after the snapshot, in append order.
    pub tail: Vec<JournalOp>,
    /// Torn/corrupt trailing records discarded by replay (at most the
    /// single record in flight at the crash, unless the file was
    /// damaged).
    pub truncated_records: u64,
}

/// Statistics the journal keeps about itself, surfaced through
/// `Broker::recovery_counters` after a recovery.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct JournalStats {
    /// Operations appended since open.
    pub appended_ops: u64,
    /// Snapshots written since open.
    pub snapshots: u64,
}

/// Where a journal lives and how often it snapshots. Passed to
/// `BrokerBuilder::journal`.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    dir: PathBuf,
    snapshot_every: u64,
    sync_writes: bool,
}

impl JournalConfig {
    /// A journal in `dir` (created if missing) snapshotting every 4096
    /// appended operations, with synced writes (see
    /// [`JournalConfig::sync_writes`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            snapshot_every: 4096,
            sync_writes: true,
        }
    }

    /// Overrides the snapshot cadence: a registry snapshot is written
    /// (and the WAL truncated) after every `ops` appended operations
    /// (minimum 1).
    pub fn snapshot_every(mut self, ops: u64) -> Self {
        self.snapshot_every = ops.max(1);
        self
    }

    /// Whether appends `fsync` before the caller acks (the default).
    /// On, acked ops survive OS crashes and power loss; off, appends
    /// only reach the page cache, scoping durability to process-level
    /// kills — the trade is one `sync_data` per control op.
    pub fn sync_writes(mut self, sync: bool) -> Self {
        self.sync_writes = sync;
        self
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// The open, append-side journal a journaled broker owns. Create with
/// [`DurableJournal::create`] (fresh broker) or [`DurableJournal::resume`]
/// (recovery).
#[derive(Debug)]
pub struct DurableJournal {
    dir: PathBuf,
    wal: File,
    wal_len: u64,
    snapshot_every: u64,
    ops_since_snapshot: u64,
    sync_writes: bool,
    stats: JournalStats,
    encode_buf: Vec<u8>,
}

/// Flushes directory metadata (new files, renames) to stable storage.
/// Windows cannot open a directory as a `File`; there the rename's
/// durability is what the filesystem gives us.
fn sync_dir(dir: &Path) -> Result<(), BrokerError> {
    #[cfg(unix)]
    {
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("sync journal directory", &e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

impl DurableJournal {
    /// Creates (or wipes) the journal directory for a fresh broker: an
    /// empty WAL and no snapshot. `BrokerBuilder::build` writes the
    /// initial registry snapshot right after this.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Journal`] on any I/O failure.
    pub fn create(config: &JournalConfig) -> Result<Self, BrokerError> {
        std::fs::create_dir_all(&config.dir).map_err(|e| io_err("create journal directory", &e))?;
        let snapshot_path = config.dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            std::fs::remove_file(&snapshot_path)
                .map_err(|e| io_err("remove stale snapshot", &e))?;
        }
        let wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(config.dir.join(WAL_FILE))
            .map_err(|e| io_err("create WAL", &e))?;
        if config.sync_writes {
            sync_dir(&config.dir)?;
        }
        Ok(DurableJournal {
            dir: config.dir.clone(),
            wal,
            wal_len: 0,
            snapshot_every: config.snapshot_every,
            ops_since_snapshot: 0,
            sync_writes: config.sync_writes,
            stats: JournalStats::default(),
            encode_buf: Vec::new(),
        })
    }

    /// Opens an existing journal for recovery: loads the snapshot and the
    /// valid WAL tail (discarding a torn final record), truncates the WAL
    /// back to the valid prefix, and returns the journal positioned to
    /// append.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Journal`] on I/O failure or a corrupt snapshot (the
    /// snapshot is written atomically, so corruption there is damage, not
    /// a torn write).
    pub fn resume(config: &JournalConfig) -> Result<(Self, JournalReplay), BrokerError> {
        std::fs::create_dir_all(&config.dir).map_err(|e| io_err("create journal directory", &e))?;
        let image = match std::fs::read(config.dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => Some(decode_snapshot(&bytes)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err("read snapshot", &e)),
        };
        let wal_path = config.dir.join(WAL_FILE);
        let bytes = match std::fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read WAL", &e)),
        };
        let (tail, valid_len, truncated_records) = scan_wal(&bytes)?;
        let mut wal = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&wal_path)
            .map_err(|e| io_err("open WAL", &e))?;
        wal.set_len(valid_len)
            .map_err(|e| io_err("truncate torn WAL tail", &e))?;
        if config.sync_writes {
            wal.sync_data()
                .map_err(|e| io_err("sync truncated WAL", &e))?;
        }
        wal.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek WAL end", &e))?;
        Ok((
            DurableJournal {
                dir: config.dir.clone(),
                wal,
                wal_len: valid_len,
                snapshot_every: config.snapshot_every,
                ops_since_snapshot: tail.len() as u64,
                sync_writes: config.sync_writes,
                stats: JournalStats::default(),
                encode_buf: Vec::new(),
            },
            JournalReplay {
                image,
                tail,
                truncated_records,
            },
        ))
    }

    /// Appends one operation record and makes it durable — `sync_data`
    /// under the default [`JournalConfig::sync_writes`], page cache
    /// otherwise. Called *after* the in-memory apply succeeded and
    /// *before* the caller acks, so an acked op is always recoverable.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Journal`] on I/O failure.
    pub fn append(&mut self, op: &JournalOp) -> Result<(), BrokerError> {
        let mut payload = std::mem::take(&mut self.encode_buf);
        op.encode(&mut payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.encode_buf = payload;
        self.wal
            .write_all(&frame)
            .map_err(|e| io_err("append WAL record", &e))?;
        if self.sync_writes {
            self.wal
                .sync_data()
                .map_err(|e| io_err("sync WAL record", &e))?;
        }
        self.wal_len += frame.len() as u64;
        self.ops_since_snapshot += 1;
        self.stats.appended_ops += 1;
        Ok(())
    }

    /// Whether the snapshot cadence says a snapshot is due.
    pub fn snapshot_due(&self) -> bool {
        self.ops_since_snapshot >= self.snapshot_every
    }

    /// Writes an atomic registry snapshot (temp file + rename), then
    /// truncates the WAL — the epoch-consistent checkpoint after which
    /// the tail is empty.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Journal`] on I/O failure; the previous snapshot
    /// stays intact if the write or rename fails.
    pub fn write_snapshot(&mut self, registry: &SubscriptionRegistry) -> Result<(), BrokerError> {
        let image = RegistryImage::capture(registry);
        let mut payload = std::mem::take(&mut self.encode_buf);
        image.encode(&mut payload);
        let mut bytes = Vec::with_capacity(12 + payload.len());
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        self.encode_buf = payload;
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create snapshot temp", &e))?;
            f.write_all(&bytes)
                .map_err(|e| io_err("write snapshot", &e))?;
            f.sync_all().map_err(|e| io_err("sync snapshot", &e))?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))
            .map_err(|e| io_err("commit snapshot", &e))?;
        if self.sync_writes {
            // Make the rename itself durable before truncating the WAL:
            // otherwise an OS crash could surface the *old* snapshot
            // next to an already-truncated log.
            sync_dir(&self.dir)?;
        }
        self.wal
            .set_len(0)
            .map_err(|e| io_err("truncate WAL after snapshot", &e))?;
        if self.sync_writes {
            self.wal
                .sync_data()
                .map_err(|e| io_err("sync truncated WAL", &e))?;
        }
        self.wal
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("rewind WAL after snapshot", &e))?;
        self.wal_len = 0;
        self.ops_since_snapshot = 0;
        self.stats.snapshots += 1;
        Ok(())
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Self-statistics since open.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

fn decode_snapshot(bytes: &[u8]) -> Result<RegistryImage, BrokerError> {
    if bytes.len() < 12 || bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt("snapshot file missing magic"));
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("4")) as usize;
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4"));
    let payload = bytes
        .get(12..12 + len)
        .ok_or_else(|| corrupt("snapshot payload shorter than its header"))?;
    if crc32(payload) != crc {
        return Err(corrupt("snapshot checksum mismatch"));
    }
    RegistryImage::decode(payload)
}

/// Scans the WAL, returning the decodable prefix of operations, the byte
/// length of that prefix, and how many trailing records were discarded
/// as torn (incomplete header, short payload, or checksum mismatch).
fn scan_wal(bytes: &[u8]) -> Result<(Vec<JournalOp>, u64, u64), BrokerError> {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            // Short payload: the record in flight at the crash.
            return Ok((ops, pos as u64, 1));
        };
        if crc32(payload) != crc {
            return Ok((ops, pos as u64, 1));
        }
        // A checksummed payload that fails to decode is not a torn
        // write — it is a format error worth surfacing loudly.
        ops.push(JournalOp::decode(payload)?);
        pos += 8 + len;
    }
    let torn_header = u64::from(pos < bytes.len());
    Ok((ops, pos as u64, torn_header))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect2(lo: [f64; 2], hi: [f64; 2]) -> Rect {
        Rect::from_corners(&lo, &hi).expect("rect")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn ops_round_trip_bit_exactly() {
        let ops = vec![
            JournalOp::Subscribe {
                handle: 7,
                node: 3,
                rect: rect2([0.25, -1.5], [9.75, f64::INFINITY]),
            },
            JournalOp::Unsubscribe { handle: 7 },
            JournalOp::Recompile,
        ];
        let mut buf = Vec::new();
        for op in &ops {
            op.encode(&mut buf);
            assert_eq!(&JournalOp::decode(&buf).expect("decode"), op);
        }
    }

    #[test]
    fn append_resume_replays_tail_and_truncates_torn_bytes() {
        let dir = std::env::temp_dir().join(format!("pubsub-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = JournalConfig::new(&dir).snapshot_every(1_000_000);
        let mut journal = DurableJournal::create(&config).expect("create");
        let ops = vec![
            JournalOp::Subscribe {
                handle: 0,
                node: 1,
                rect: rect2([0.0, 0.0], [5.0, 5.0]),
            },
            JournalOp::Recompile,
            JournalOp::Unsubscribe { handle: 0 },
        ];
        for op in &ops {
            journal.append(op).expect("append");
        }
        drop(journal);

        // Clean resume: the whole tail comes back.
        let (journal, replay) = DurableJournal::resume(&config).expect("resume");
        assert_eq!(replay.tail, ops);
        assert_eq!(replay.truncated_records, 0);
        assert!(replay.image.is_none());
        let full_len = journal.wal_len();
        drop(journal);

        // Torn tail: chop mid-record; resume drops exactly the torn one.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).expect("read");
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).expect("tear");
        let (journal, replay) = DurableJournal::resume(&config).expect("resume torn");
        assert_eq!(replay.tail, ops[..2]);
        assert_eq!(replay.truncated_records, 1);
        assert!(journal.wal_len() < full_len);
        drop(journal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
