//! The content-based pub-sub core: everything the paper's two dynamic
//! problems need, glued into an end-to-end [`Broker`].
//!
//! * **Matching** (§3) — [`Matcher`] answers "which subscribers are
//!   interested in event `ω`?" with an S-tree point query, deduplicating
//!   subscriptions into subscriber nodes.
//! * **Multicast groups** (§4) — [`MulticastGroups`] materializes
//!   `M_q = {v : ∃ b ∩ S_q ≠ ∅}` from a clustering
//!   [`pubsub_clustering::SpacePartition`].
//! * **Distribution method** (§4) — [`DistributionPolicy`] makes the
//!   per-message decision: drop when nobody matched, unicast when the
//!   event falls in the catch-all region `S_0` or when the interested
//!   fraction `|s|/|M_q|` is below the threshold `t`, multicast to `M_q`
//!   otherwise.
//! * **Cost accounting** (§5.2) — every publication is costed three ways
//!   (scheme / pure unicast / ideal per-message multicast) so the paper's
//!   "improvement percentage" scale (0% = unicast, 100% = ideal) can be
//!   reported directly from a [`CostReport`].
//! * **Live churn** — the broker is split into a mutable
//!   [`SubscriptionRegistry`] (stable [`SubscriptionHandle`]s) and an
//!   immutable, epoch-versioned [`EngineSnapshot`]; `subscribe` /
//!   `unsubscribe` absorb churn through a delta overlay and tombstones
//!   until drift triggers a full recompile. See [`Broker::subscribe`].
//!
//! # Example
//!
//! ```
//! use pubsub_core::Broker;
//! use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
//! use pubsub_geom::{Point, Rect, Space};
//! use pubsub_netsim::TransitStubConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = TransitStubConfig::tiny().generate(1)?;
//! let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0])?)?;
//! let node = topo.stub_nodes()[0];
//! let mut broker = Broker::builder(topo, space)
//!     .subscription(node, Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0])?)
//!     .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
//!     .threshold(0.15)
//!     .build()?;
//! let outcome = broker.publish(&Point::new(vec![2.0, 2.0])?)?;
//! assert_eq!(outcome.interested, vec![node]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod broker;
mod covering;
mod distribution;
mod efficiency;
mod error;
mod event;
mod groups;
mod journal;
mod matcher;
mod metrics;
mod pipeline;
mod registry;
mod snapshot;
mod spec;
mod stage;
mod view;

pub use broker::{Broker, BrokerBuilder, DeliveryMode, GroupHealth, PublishOutcome};
pub use covering::{CoveringConfig, CoveringStats, CoveringTable, SubscriptionStream};
pub use distribution::{Decision, DistributionPolicy, UnicastReason};
pub use efficiency::{AdaptiveConfig, AdaptiveController, EfficiencyTracker, GroupEfficiency};
pub use error::BrokerError;
pub use event::EventBuilder;
pub use groups::MulticastGroups;
pub use journal::{
    crc32, DurableJournal, JournalConfig, JournalOp, JournalReplay, JournalStats, RegistryImage,
};
pub use matcher::{KernelCounters, MatchOverlay, MatchScratch, Matcher, SubscriptionId};
pub use metrics::{
    ChurnCounters, CostReport, Delivery, LatencyHisto, MessageCosts, MetricsSnapshot,
    PipelineCounters, RecoveryCounters, HISTO_BUCKETS,
};
pub use pipeline::{BatchMatches, MatchArena, PublishScratch};
pub use registry::{SubscriptionHandle, SubscriptionRegistry};
pub use snapshot::EngineSnapshot;
pub use spec::{Predicate, SubscriptionSpec};
pub use stage::{PublishStage, StageKind, StagedBatch};
pub use view::PublishView;
