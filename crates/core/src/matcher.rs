//! The matching problem (paper §3): event → interested subscribers.

use std::cell::RefCell;
use std::fmt;

use serde::{Deserialize, Serialize};

use pubsub_geom::{EventSoA, Point, Rect, Space};
use pubsub_netsim::NodeId;
use pubsub_stree::simd::{self, EventBlock, QuantBlock, SimdLevel, LANES};
use pubsub_stree::{
    CompactConfig, CompactSTree, DeltaOverlay, Entry, EntryId, FlatSTree, STree, STreeConfig,
    Tombstones,
};

use crate::covering::{build_covering, CoveringConfig, CoveringStats, CoveringTable};
use crate::pipeline::MatchArena;
use crate::{BrokerError, SubscriptionStream};

/// Identifier of one subscription (one rectangle; a subscriber may own
/// several).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SubscriptionId(pub u32);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// The matcher: an S-tree point index over the (clamped) subscription
/// rectangles, plus the subscription→subscriber mapping.
///
/// # Example
///
/// ```
/// use pubsub_core::Matcher;
/// use pubsub_geom::{Point, Rect, Space};
/// use pubsub_netsim::NodeId;
/// use pubsub_stree::STreeConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = Space::anonymous(Rect::from_corners(&[0.0], &[10.0])?)?;
/// let matcher = Matcher::build(
///     &space,
///     &[
///         (NodeId(7), Rect::from_corners(&[0.0], &[5.0])?),
///         (NodeId(7), Rect::from_corners(&[2.0], &[8.0])?),
///         (NodeId(9), Rect::from_corners(&[6.0], &[9.0])?),
///     ],
///     STreeConfig::default(),
/// )?;
/// // Both of node 7's subscriptions match, but the node appears once.
/// let (subs, nodes) = matcher.match_event(&Point::new(vec![3.0])?);
/// assert_eq!(subs.len(), 2);
/// assert_eq!(nodes, vec![NodeId(7)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Matcher {
    backend: Backend,
    owners: Vec<NodeId>,
    /// Scratch-free upper bound for the subscriber dedup bitmap.
    max_node: u32,
}

/// The two index backends a [`Matcher`] can compile to.
#[derive(Debug, Clone)]
enum Backend {
    /// One index entry per concrete subscription, exact `f64` bounds —
    /// the default, built by [`Matcher::build`].
    Flat {
        index: STree,
        /// Cache-friendly compilation of `index`; the matching hot path.
        flat: FlatSTree,
    },
    /// Scale mode, built by [`Matcher::build_covered`]: the covering
    /// layer's representative set in a quantized [`CompactSTree`], with
    /// hits expanded back to concrete ids through the
    /// [`CoveringTable`] (boundary-ambiguous hits re-checked exactly).
    Compact {
        index: CompactSTree,
        /// Boxed to keep the enum near the `Flat` variant's size.
        covering: Box<CoveringTable>,
    },
}

/// Running totals of the SIMD block kernels: how many event blocks were
/// dispatched, at which kernel level, and how full their lanes were.
/// Accumulated per [`MatchScratch`], drained by the publish pipeline
/// into [`crate::metrics::PipelineCounters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Event blocks dispatched through the block-mode queries.
    pub blocks: u64,
    /// Blocks matched by a SIMD kernel level (SSE2 or AVX2).
    pub simd_blocks: u64,
    /// Blocks matched by the portable scalar fallback kernels.
    pub scalar_blocks: u64,
    /// Active event lanes summed over all blocks; lane utilization is
    /// `lanes / (blocks × LANES)`.
    pub lanes: u64,
}

impl KernelCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.blocks += other.blocks;
        self.simd_blocks += other.simd_blocks;
        self.scalar_blocks += other.scalar_blocks;
        self.lanes += other.lanes;
    }
}

/// Reusable per-thread scratch for [`Matcher::match_event_into`]: the
/// traversal stack and hit buffer of the flat point query, the
/// subscriber dedup bitmap, and the SoA event block plus per-lane hit
/// buffers of the block-mode batch path. One scratch makes every
/// subsequent match on the same thread allocation-free (output vectors
/// aside).
#[derive(Debug, Default, Clone)]
pub struct MatchScratch {
    /// Flat-tree traversal stack.
    stack: Vec<u32>,
    /// Raw entry hits before dedup/sort.
    hits: Vec<EntryId>,
    /// Subscriber dedup bitmap, indexed by node id; bits are cleared
    /// after every match so the buffer stays reusable.
    seen: Vec<u64>,
    /// Dimension-major SoA transpose of the current event block.
    block: EventBlock,
    /// Lane-masked traversal stack of the block query.
    block_stack: Vec<u64>,
    /// Per-lane raw hits of the current block ([`LANES`] buffers).
    lane_hits: Vec<Vec<EntryId>>,
    /// Block-kernel dispatch totals since the last drain.
    kernels: KernelCounters,
    /// Quantized point buffer of the compact (covered) backend.
    qpoint: Vec<u16>,
    /// Quantized SoA block of the compact (covered) backend.
    qblock: QuantBlock,
}

impl MatchScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MatchScratch::default()
    }

    /// Drains the accumulated [`KernelCounters`], resetting them to
    /// zero.
    pub fn take_kernels(&mut self) -> KernelCounters {
        std::mem::take(&mut self.kernels)
    }
}

thread_local! {
    /// Scratch for the non-allocating [`Matcher::match_event`] wrapper.
    static MATCH_SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::new());
}

/// Runs `f` with this thread's shared [`MatchScratch`] (the one
/// [`Matcher::match_event`] uses), so crate-internal callers can reuse it
/// without owning a scratch.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut MatchScratch) -> R) -> R {
    MATCH_SCRATCH.with_borrow_mut(f)
}

/// A borrowed view of the churn state the broker layers over a compiled
/// [`Matcher`] between engine recompiles: subscriptions added since the
/// last compile (linear-scan overlay) and compiled subscriptions removed
/// since (tombstones).
///
/// Overlay entry ids start at `base_count` (the compiled subscription
/// count); `owners[id - base_count]` is the subscriber node of overlay
/// entry `id`. Owner slots of removed overlay entries keep their value —
/// the indexing stays stable, the entry itself is gone from the overlay.
#[derive(Debug, Clone, Copy)]
pub struct MatchOverlay<'a> {
    /// Entries inserted since the last compile.
    pub overlay: &'a DeltaOverlay,
    /// Owner nodes of overlay entries, indexed by `id - base_count`.
    pub owners: &'a [NodeId],
    /// Compiled entries removed since the last compile.
    pub tombstones: &'a Tombstones,
    /// Number of compiled subscriptions (= first overlay id).
    pub base_count: u32,
    /// Largest owner node id in `owners` (sizes the dedup bitmap).
    pub max_node: u32,
}

impl Matcher {
    /// Builds the matcher from `(subscriber node, rectangle)` pairs.
    /// Rectangles are clamped to `space` so unbounded predicates index
    /// cleanly. Subscription ids are assigned in input order.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DimensionMismatch`] if a rectangle disagrees
    /// with the space and propagates S-tree build errors.
    pub fn build(
        space: &Space,
        subscriptions: &[(NodeId, Rect)],
        config: STreeConfig,
    ) -> Result<Self, BrokerError> {
        let mut entries = Vec::with_capacity(subscriptions.len());
        let mut owners = Vec::with_capacity(subscriptions.len());
        let mut max_node = 0u32;
        for (i, (node, rect)) in subscriptions.iter().enumerate() {
            if rect.dims() != space.dims() {
                return Err(BrokerError::DimensionMismatch {
                    expected: space.dims(),
                    got: rect.dims(),
                });
            }
            entries.push(Entry::new(space.clamp(rect), EntryId(i as u32)));
            owners.push(*node);
            max_node = max_node.max(node.0);
        }
        let index = STree::build(entries, config)?;
        let flat = FlatSTree::from_stree(&index);
        Ok(Matcher {
            backend: Backend::Flat { index, flat },
            owners,
            max_node,
        })
    }

    /// Builds the matcher through the **covering layer**: subscriptions
    /// are streamed (never materialized as an O(N) rectangle array),
    /// interned/subsumed/merged into a representative set, and the
    /// representatives compiled into a quantized [`CompactSTree`].
    /// Matching results are bit-identical to [`Matcher::build`] over
    /// the same stream; memory per subscription is an order of
    /// magnitude lower on duplicate-heavy workloads.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DimensionMismatch`] if a rectangle
    /// disagrees with the space.
    pub fn build_covered(
        space: &Space,
        subscriptions: &dyn SubscriptionStream,
        config: &CoveringConfig,
    ) -> Result<Self, BrokerError> {
        let built = build_covering(space, subscriptions, config)?;
        let table = built.table;
        let reps = table.rep_count();
        let index = CompactSTree::build(
            space.dims(),
            reps,
            |r, d| table.rep_bounds(r, d),
            CompactConfig::default(),
        );
        Ok(Matcher {
            backend: Backend::Compact {
                index,
                covering: Box::new(table),
            },
            owners: built.owners,
            max_node: built.max_node,
        })
    }

    /// Whether this matcher was built through the covering layer
    /// ([`Matcher::build_covered`]).
    pub fn is_covered(&self) -> bool {
        matches!(self.backend, Backend::Compact { .. })
    }

    /// Aggregation statistics of the covering build (`None` for the
    /// default flat backend).
    pub fn covering_stats(&self) -> Option<&CoveringStats> {
        match &self.backend {
            Backend::Compact { covering, .. } => Some(covering.stats()),
            Backend::Flat { .. } => None,
        }
    }

    /// Bytes of heap held by the compact index and expansion table
    /// (`None` for the default flat backend).
    pub fn compact_heap_bytes(&self) -> Option<usize> {
        match &self.backend {
            Backend::Compact { index, covering } => {
                Some(index.heap_bytes() + covering.heap_bytes())
            }
            Backend::Flat { .. } => None,
        }
    }

    /// Number of subscriptions indexed.
    pub fn subscription_count(&self) -> usize {
        self.owners.len()
    }

    /// The subscriber node owning a subscription.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn owner(&self, id: SubscriptionId) -> NodeId {
        self.owners[id.0 as usize]
    }

    /// The underlying S-tree (for statistics and benchmarking).
    ///
    /// # Panics
    ///
    /// Panics on a covered matcher ([`Matcher::build_covered`]), which
    /// has no per-subscription S-tree.
    pub fn index(&self) -> &STree {
        match &self.backend {
            Backend::Flat { index, .. } => index,
            Backend::Compact { .. } => panic!("covered matcher has no S-tree index"),
        }
    }

    /// The flat compilation of the S-tree (the matching hot path).
    ///
    /// # Panics
    ///
    /// Panics on a covered matcher ([`Matcher::build_covered`]).
    pub fn flat_index(&self) -> &FlatSTree {
        match &self.backend {
            Backend::Flat { flat, .. } => flat,
            Backend::Compact { .. } => panic!("covered matcher has no flat index"),
        }
    }

    /// Matches an event: returns the matching subscription ids and the
    /// deduplicated subscriber nodes (ascending by node id).
    ///
    /// Thin wrapper over [`Matcher::match_event_into`] using thread-local
    /// scratch, so it performs no intermediate allocation (the two output
    /// vectors aside).
    pub fn match_event(&self, event: &Point) -> (Vec<SubscriptionId>, Vec<NodeId>) {
        let mut subs = Vec::new();
        let mut nodes = Vec::new();
        MATCH_SCRATCH.with_borrow_mut(|scratch| {
            self.match_event_into(event, scratch, &mut subs, &mut nodes);
        });
        (subs, nodes)
    }

    /// Matches an event into caller-provided buffers: `subs` receives the
    /// matching subscription ids (ascending) and `nodes` the deduplicated
    /// subscriber nodes (ascending by node id). Both are cleared first.
    /// With a warm `scratch`, the only allocations are output-buffer
    /// growth.
    pub fn match_event_into(
        &self,
        event: &Point,
        scratch: &mut MatchScratch,
        subs: &mut Vec<SubscriptionId>,
        nodes: &mut Vec<NodeId>,
    ) {
        subs.clear();
        nodes.clear();
        self.match_event_append(event, scratch, subs, nodes);
    }

    /// [`Matcher::match_event_into`] with *append* semantics: the event's
    /// results are pushed onto the tails of `subs`/`nodes` (each tail
    /// sorted on its own), leaving earlier contents untouched — the
    /// primitive the CSR arenas build on.
    fn match_event_append(
        &self,
        event: &Point,
        scratch: &mut MatchScratch,
        subs: &mut Vec<SubscriptionId>,
        nodes: &mut Vec<NodeId>,
    ) {
        scratch.hits.clear();
        self.query_into_hits(event, scratch);
        append_tail(
            &mut scratch.seen,
            &scratch.hits,
            self.max_node,
            |e| self.owners[e.0 as usize],
            subs,
            nodes,
        );
    }

    /// Runs the backend's point query, appending concrete subscription
    /// hits to `scratch.hits`: the flat backend queries directly; the
    /// compact backend queries representatives and expands each hit
    /// through the covering table (with the exact re-check on
    /// boundary-ambiguous hits).
    fn query_into_hits(&self, event: &Point, scratch: &mut MatchScratch) {
        match &self.backend {
            Backend::Flat { flat, .. } => {
                flat.query_point_with(event, &mut scratch.stack, &mut scratch.hits);
            }
            Backend::Compact { index, covering } => {
                let point = event.as_slice();
                index.quantize_into(point, &mut scratch.qpoint);
                let MatchScratch {
                    stack,
                    hits,
                    qpoint,
                    ..
                } = scratch;
                index.query_point_with(qpoint, stack, |rep, amb| {
                    covering.expand(rep, amb, point, hits);
                });
            }
        }
    }

    /// Matches a batch of events, fanning the read-only point queries
    /// across `threads` worker threads (`None` = available parallelism)
    /// with one [`MatchScratch`] per worker. Results come back in event
    /// order and are identical to mapping [`Matcher::match_event`]
    /// sequentially, regardless of thread count.
    pub fn match_events(
        &self,
        events: &[Point],
        threads: Option<usize>,
    ) -> Vec<(Vec<SubscriptionId>, Vec<NodeId>)> {
        pubsub_parallel::map_with_scratch(
            events,
            pubsub_parallel::effective_threads(threads),
            MatchScratch::new,
            |event, scratch| {
                let mut subs = Vec::new();
                let mut nodes = Vec::new();
                self.match_event_into(event, scratch, &mut subs, &mut nodes);
                (subs, nodes)
            },
        )
    }

    /// Largest subscriber node id seen at build time (used to size
    /// bitmaps).
    pub fn max_node_id(&self) -> u32 {
        self.max_node
    }

    /// [`Matcher::match_event_into`] merged with a churn overlay: compiled
    /// hits are filtered through `view.tombstones`, then the overlay is
    /// scanned linearly, and subscriptions/subscribers are sorted and
    /// deduplicated across both sources. Semantics are identical to a
    /// matcher freshly built over (compiled − removed) ∪ overlay, except
    /// that overlay subscriptions keep their overlay ids.
    pub fn match_event_overlaid_into(
        &self,
        event: &Point,
        view: &MatchOverlay<'_>,
        scratch: &mut MatchScratch,
        subs: &mut Vec<SubscriptionId>,
        nodes: &mut Vec<NodeId>,
    ) {
        subs.clear();
        nodes.clear();
        self.match_event_overlaid_append(event, view, scratch, subs, nodes);
    }

    /// [`Matcher::match_event_overlaid_into`] with *append* semantics —
    /// see [`Matcher::match_event_append`].
    fn match_event_overlaid_append(
        &self,
        event: &Point,
        view: &MatchOverlay<'_>,
        scratch: &mut MatchScratch,
        subs: &mut Vec<SubscriptionId>,
        nodes: &mut Vec<NodeId>,
    ) {
        scratch.hits.clear();
        self.query_into_hits(event, scratch);
        view.tombstones.retain_live(&mut scratch.hits);
        view.overlay.query_point_into(event, &mut scratch.hits);
        append_tail(
            &mut scratch.seen,
            &scratch.hits,
            self.max_node.max(view.max_node),
            |e| {
                if e.0 < view.base_count {
                    self.owners[e.0 as usize]
                } else {
                    view.owners[(e.0 - view.base_count) as usize]
                }
            },
            subs,
            nodes,
        );
    }

    /// Matches [`LANES`] (or fewer) consecutive events starting at
    /// `events[start]` through one joint SIMD block query, then appends
    /// each lane's results to the arena in event order — per-event
    /// slices bit-identical to the scalar append path. `view` merges the
    /// churn overlay per lane exactly like the scalar overlaid path.
    #[allow(clippy::too_many_arguments)]
    fn match_block_append(
        &self,
        events: &[Point],
        cols: Option<&[&[f64]]>,
        start: usize,
        k: usize,
        view: Option<&MatchOverlay<'_>>,
        scratch: &mut MatchScratch,
        arena: &mut MatchArena,
    ) {
        debug_assert!((1..=LANES).contains(&k));
        let level = simd::active_level();
        let mut lane_refs: [&[f64]; LANES] = [&[]; LANES];
        for (l, slot) in lane_refs.iter_mut().take(k).enumerate() {
            *slot = events[start + l].as_slice();
        }
        if scratch.lane_hits.len() < LANES {
            scratch.lane_hits.resize_with(LANES, Vec::new);
        }
        let MatchScratch {
            block,
            block_stack,
            lane_hits,
            seen,
            kernels,
            qblock,
            ..
        } = scratch;
        for hits in lane_hits.iter_mut() {
            hits.clear();
        }
        match &self.backend {
            Backend::Flat { flat, .. } => {
                // A structure-of-arrays batch fills the block with
                // contiguous column copies; the fallback transposes the
                // per-event slices. Same block either way.
                match cols {
                    Some(cols) => block.fill_cols(cols, start, k),
                    None => block.fill(&lane_refs[..k]),
                }
                flat.query_point_block_at(level, block, block_stack, |id, lanes| {
                    let mut m = lanes;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        lane_hits[l].push(id);
                    }
                });
            }
            Backend::Compact { index, covering } => {
                match cols {
                    Some(cols) => index.fill_block_cols(cols, start, k, qblock),
                    None => index.fill_block(&lane_refs[..k], qblock),
                }
                index.query_point_block_at(level, qblock, block_stack, |rep, lanes, amb| {
                    let mut m = lanes;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        covering.expand(rep, amb >> l & 1 == 1, lane_refs[l], &mut lane_hits[l]);
                    }
                });
            }
        }
        kernels.blocks += 1;
        if level == SimdLevel::Scalar {
            kernels.scalar_blocks += 1;
        } else {
            kernels.simd_blocks += 1;
        }
        kernels.lanes += k as u64;

        let max_node = view.map_or(self.max_node, |v| self.max_node.max(v.max_node));
        for (l, hits) in lane_hits.iter_mut().take(k).enumerate() {
            if let Some(view) = view {
                view.tombstones.retain_live(hits);
                view.overlay.query_point_into(&events[start + l], hits);
            }
            append_tail(
                seen,
                hits,
                max_node,
                |e| match view {
                    Some(v) if e.0 >= v.base_count => v.owners[(e.0 - v.base_count) as usize],
                    _ => self.owners[e.0 as usize],
                },
                &mut arena.subs,
                &mut arena.nodes,
            );
            arena.end_event();
        }
    }

    /// Matches the events at the given index `ranges` (ascending, e.g. a
    /// worker's [`pubsub_parallel::block_ranges`]) into a CSR
    /// [`MatchArena`]: one appended arena event per index, in range
    /// order. The per-event slices are identical to what
    /// [`Matcher::match_event_into`] produces; nothing is allocated once
    /// scratch and arena are warm.
    pub fn match_events_into_arena<I>(
        &self,
        events: &[Point],
        ranges: I,
        scratch: &mut MatchScratch,
        arena: &mut MatchArena,
    ) where
        I: IntoIterator<Item = std::ops::Range<usize>>,
    {
        for range in ranges {
            let mut i = range.start;
            while i < range.end {
                let k = (range.end - i).min(LANES);
                self.match_block_append(events, None, i, k, None, scratch, arena);
                i += k;
            }
        }
    }

    /// [`Matcher::match_events_into_arena`] over a structure-of-arrays
    /// batch: the SIMD blocks fill from `soa`'s dimension-major columns
    /// (no per-block transpose) while overlay queries and covering
    /// re-checks read the matching per-event `events` views. The arena
    /// slices are bit-identical to the array-of-structs path — the
    /// columns hold the same `f64`s, only the copy pattern differs.
    pub fn match_events_soa_into_arena<I>(
        &self,
        events: &[Point],
        soa: &EventSoA,
        ranges: I,
        view: Option<&MatchOverlay<'_>>,
        scratch: &mut MatchScratch,
        arena: &mut MatchArena,
    ) where
        I: IntoIterator<Item = std::ops::Range<usize>>,
    {
        debug_assert_eq!(soa.len(), events.len());
        let cols: Vec<&[f64]> = (0..soa.dims()).map(|d| soa.col(d)).collect();
        for range in ranges {
            let mut i = range.start;
            while i < range.end {
                let k = (range.end - i).min(LANES);
                self.match_block_append(events, Some(&cols), i, k, view, scratch, arena);
                i += k;
            }
        }
    }

    /// [`Matcher::match_events_into_arena`] merged with a churn overlay —
    /// per-event slices identical to [`Matcher::match_event_overlaid_into`].
    pub fn match_events_overlaid_into_arena<I>(
        &self,
        events: &[Point],
        ranges: I,
        view: &MatchOverlay<'_>,
        scratch: &mut MatchScratch,
        arena: &mut MatchArena,
    ) where
        I: IntoIterator<Item = std::ops::Range<usize>>,
    {
        for range in ranges {
            let mut i = range.start;
            while i < range.end {
                let k = (range.end - i).min(LANES);
                self.match_block_append(events, None, i, k, Some(view), scratch, arena);
                i += k;
            }
        }
    }

    /// Batch form of [`Matcher::match_event_overlaid_into`], parallelized
    /// like [`Matcher::match_events`]. Results come back in event order and
    /// are identical to the sequential loop for any thread count.
    pub fn match_events_overlaid(
        &self,
        events: &[Point],
        view: &MatchOverlay<'_>,
        threads: Option<usize>,
    ) -> Vec<(Vec<SubscriptionId>, Vec<NodeId>)> {
        pubsub_parallel::map_with_scratch(
            events,
            pubsub_parallel::effective_threads(threads),
            MatchScratch::new,
            |event, scratch| {
                let mut subs = Vec::new();
                let mut nodes = Vec::new();
                self.match_event_overlaid_into(event, view, scratch, &mut subs, &mut nodes);
                (subs, nodes)
            },
        )
    }
}

/// Post-match bookkeeping shared by the scalar and block paths: appends
/// `hits` to `subs` as a sorted tail of subscription ids and their
/// owners to `nodes` as a sorted, deduplicated tail, leaving earlier
/// contents untouched. Owner dedup goes through the `seen` bitmap (one
/// bit per node id); bits are cleared via the output tail so the bitmap
/// is clean for the next event.
fn append_tail(
    seen: &mut Vec<u64>,
    hits: &[EntryId],
    max_node: u32,
    owner_of: impl Fn(EntryId) -> NodeId,
    subs: &mut Vec<SubscriptionId>,
    nodes: &mut Vec<NodeId>,
) {
    let sub_start = subs.len();
    let node_start = nodes.len();
    subs.extend(hits.iter().map(|&e| SubscriptionId(e.0)));
    subs[sub_start..].sort_unstable();

    let words = (max_node as usize) / 64 + 1;
    if seen.len() < words {
        seen.resize(words, 0);
    }
    for &e in hits {
        let node = owner_of(e);
        let (word, bit) = (node.0 as usize / 64, node.0 % 64);
        if seen[word] & (1 << bit) == 0 {
            seen[word] |= 1 << bit;
            nodes.push(node);
        }
    }
    nodes[node_start..].sort_unstable();
    for n in nodes[node_start..].iter() {
        seen[n.0 as usize / 64] &= !(1 << (n.0 % 64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Interval;

    fn space() -> Space {
        Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
    }

    #[test]
    fn dedupes_subscribers_but_reports_all_subscriptions() {
        let m = Matcher::build(
            &space(),
            &[
                (
                    NodeId(3),
                    Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).unwrap(),
                ),
                (
                    NodeId(3),
                    Rect::from_corners(&[1.0, 1.0], &[6.0, 6.0]).unwrap(),
                ),
                (
                    NodeId(5),
                    Rect::from_corners(&[8.0, 8.0], &[10.0, 10.0]).unwrap(),
                ),
            ],
            STreeConfig::default(),
        )
        .unwrap();
        let (subs, nodes) = m.match_event(&Point::new(vec![2.0, 2.0]).unwrap());
        assert_eq!(subs, vec![SubscriptionId(0), SubscriptionId(1)]);
        assert_eq!(nodes, vec![NodeId(3)]);
        assert_eq!(m.owner(SubscriptionId(2)), NodeId(5));
        assert_eq!(m.subscription_count(), 3);
        assert_eq!(m.max_node_id(), 5);
    }

    #[test]
    fn unbounded_subscriptions_are_clamped_and_match() {
        let m = Matcher::build(
            &space(),
            &[(
                NodeId(1),
                Rect::new(vec![Interval::at_least(4.0), Interval::unbounded()]).unwrap(),
            )],
            STreeConfig::default(),
        )
        .unwrap();
        let (_, nodes) = m.match_event(&Point::new(vec![5.0, 9.0]).unwrap());
        assert_eq!(nodes, vec![NodeId(1)]);
        let (_, nodes) = m.match_event(&Point::new(vec![3.0, 9.0]).unwrap());
        assert!(nodes.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let err = Matcher::build(
            &space(),
            &[(NodeId(0), Rect::from_corners(&[0.0], &[1.0]).unwrap())],
            STreeConfig::default(),
        );
        assert!(matches!(
            err,
            Err(BrokerError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn empty_matcher() {
        let m = Matcher::build(&space(), &[], STreeConfig::default()).unwrap();
        let (subs, nodes) = m.match_event(&Point::new(vec![1.0, 1.0]).unwrap());
        assert!(subs.is_empty() && nodes.is_empty());
        assert_eq!(m.subscription_count(), 0);
    }

    #[test]
    fn scratch_reuse_is_clean_across_events() {
        let m = Matcher::build(
            &space(),
            &[
                (
                    NodeId(3),
                    Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).unwrap(),
                ),
                (
                    NodeId(64),
                    Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).unwrap(),
                ),
                (
                    NodeId(65),
                    Rect::from_corners(&[8.0, 8.0], &[10.0, 10.0]).unwrap(),
                ),
            ],
            STreeConfig::default(),
        )
        .unwrap();
        let mut scratch = MatchScratch::new();
        let (mut subs, mut nodes) = (Vec::new(), Vec::new());
        let a = Point::new(vec![2.0, 2.0]).unwrap();
        let b = Point::new(vec![9.0, 9.0]).unwrap();
        m.match_event_into(&a, &mut scratch, &mut subs, &mut nodes);
        assert_eq!(nodes, vec![NodeId(3), NodeId(64)]);
        // A second match on the same scratch must not inherit stale bits
        // or hits.
        m.match_event_into(&b, &mut scratch, &mut subs, &mut nodes);
        assert_eq!(subs, vec![SubscriptionId(2)]);
        assert_eq!(nodes, vec![NodeId(65)]);
        m.match_event_into(&a, &mut scratch, &mut subs, &mut nodes);
        assert_eq!(nodes, vec![NodeId(3), NodeId(64)]);
    }

    #[test]
    fn soa_block_matching_is_bit_identical_to_aos() {
        // Enough events to cross several SIMD blocks, some matching,
        // some not, some shared-coordinate.
        let subs: Vec<(NodeId, Rect)> = (0..12)
            .map(|i| {
                let lo = (i % 5) as f64;
                (
                    NodeId(i % 4),
                    Rect::from_corners(&[lo, lo * 0.5], &[lo + 3.0, lo * 0.5 + 4.0]).unwrap(),
                )
            })
            .collect();
        let m = Matcher::build(&space(), &subs, STreeConfig::default()).unwrap();
        let events: Vec<Point> = (0..37)
            .map(|i| Point::new(vec![(i % 10) as f64 + 0.25, ((i * 3) % 10) as f64 + 0.5]).unwrap())
            .collect();
        let mut soa = EventSoA::new(2);
        for e in &events {
            soa.push(e);
        }
        let mut scratch = MatchScratch::new();
        let (mut aos, mut via_soa) = (MatchArena::new(), MatchArena::new());
        aos.begin();
        m.match_events_into_arena(
            &events,
            std::iter::once(0..events.len()),
            &mut scratch,
            &mut aos,
        );
        via_soa.begin();
        m.match_events_soa_into_arena(
            &events,
            &soa,
            std::iter::once(0..events.len()),
            None,
            &mut scratch,
            &mut via_soa,
        );
        assert_eq!(aos.event_count(), via_soa.event_count());
        for i in 0..events.len() {
            assert_eq!(aos.sub_slice(i), via_soa.sub_slice(i), "event {i} subs");
            assert_eq!(aos.node_slice(i), via_soa.node_slice(i), "event {i} nodes");
        }
    }

    #[test]
    fn overlaid_matching_equals_fresh_build_over_survivors() {
        // Base: 4 subscriptions; kill one compiled, add two via overlay.
        let base = vec![
            (
                NodeId(3),
                Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).unwrap(),
            ),
            (
                NodeId(4),
                Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).unwrap(),
            ),
            (
                NodeId(5),
                Rect::from_corners(&[4.0, 4.0], &[9.0, 9.0]).unwrap(),
            ),
            (
                NodeId(3),
                Rect::from_corners(&[8.0, 0.0], &[10.0, 10.0]).unwrap(),
            ),
        ];
        let m = Matcher::build(&space(), &base, STreeConfig::default()).unwrap();
        let mut overlay = DeltaOverlay::new();
        let mut tombstones = Tombstones::new();
        tombstones.insert(EntryId(1)); // drop NodeId(4)'s subscription
        let added = [
            (
                NodeId(70),
                Rect::from_corners(&[0.0, 0.0], &[9.0, 9.0]).unwrap(),
            ),
            (
                NodeId(2),
                Rect::from_corners(&[4.0, 4.0], &[6.0, 6.0]).unwrap(),
            ),
        ];
        let mut owners = Vec::new();
        for (i, (n, r)) in added.iter().enumerate() {
            overlay
                .insert(Entry::new(r.clone(), EntryId(4 + i as u32)))
                .unwrap();
            owners.push(*n);
        }
        let view = MatchOverlay {
            overlay: &overlay,
            owners: &owners,
            tombstones: &tombstones,
            base_count: 4,
            max_node: 70,
        };

        // Oracle: fresh matcher over survivors + additions.
        let survivors: Vec<(NodeId, Rect)> = vec![
            base[0].clone(),
            base[2].clone(),
            base[3].clone(),
            added[0].clone(),
            added[1].clone(),
        ];
        let fresh = Matcher::build(&space(), &survivors, STreeConfig::default()).unwrap();

        let mut scratch = MatchScratch::new();
        let (mut subs, mut nodes) = (Vec::new(), Vec::new());
        let events: Vec<Point> = (0..40)
            .map(|i| {
                Point::new(vec![f64::from(i) * 1.37 % 10.0, f64::from(i) * 2.11 % 10.0]).unwrap()
            })
            .collect();
        for e in &events {
            m.match_event_overlaid_into(e, &view, &mut scratch, &mut subs, &mut nodes);
            let (_, fresh_nodes) = fresh.match_event(e);
            assert_eq!(nodes, fresh_nodes, "event {e:?}");
        }
        // Batch agrees with the sequential loop.
        let sequential: Vec<_> = events
            .iter()
            .map(|e| {
                let (mut s, mut n) = (Vec::new(), Vec::new());
                m.match_event_overlaid_into(e, &view, &mut scratch, &mut s, &mut n);
                (s, n)
            })
            .collect();
        for threads in [Some(1), Some(3), None] {
            assert_eq!(m.match_events_overlaid(&events, &view, threads), sequential);
        }
    }

    #[test]
    fn covered_matcher_is_bit_identical_to_flat() {
        // Duplicate-heavy with nesting: exercises interning, subsumption
        // and the quantized merge at once.
        let mut subs: Vec<(NodeId, Rect)> = Vec::new();
        for i in 0..200u32 {
            let k = f64::from(i % 5);
            subs.push((
                NodeId(i % 17),
                Rect::from_corners(&[k, k * 0.3], &[k + 4.0, k * 0.3 + 5.0]).unwrap(),
            ));
        }
        for i in 0..40u32 {
            let k = f64::from(i % 8) * 0.01;
            subs.push((
                NodeId(i % 11),
                Rect::from_corners(&[1.0 + k, 1.0], &[2.0 + k, 2.0]).unwrap(),
            ));
        }
        let flat = Matcher::build(&space(), &subs, STreeConfig::default()).unwrap();
        for cfg in [
            CoveringConfig::default(),
            CoveringConfig {
                merge_cells: 64,
                min_cover_members: 2,
                ..CoveringConfig::default()
            },
        ] {
            let covered = Matcher::build_covered(&space(), &subs.as_slice(), &cfg).unwrap();
            assert!(covered.is_covered());
            let stats = covered.covering_stats().unwrap();
            assert_eq!(stats.concrete, subs.len());
            assert!(stats.representatives < subs.len());
            assert_eq!(covered.subscription_count(), subs.len());
            assert_eq!(covered.max_node_id(), flat.max_node_id());
            let events: Vec<Point> = (0..120)
                .map(|i| {
                    Point::new(vec![f64::from(i) * 1.37 % 10.0, f64::from(i) * 2.11 % 10.0])
                        .unwrap()
                })
                .collect();
            for e in &events {
                assert_eq!(covered.match_event(e), flat.match_event(e), "event {e:?}");
            }
            // Arena (block) path agrees with the scalar path.
            let mut scratch = MatchScratch::new();
            let mut arena = MatchArena::new();
            arena.begin();
            covered.match_events_into_arena(
                &events,
                std::iter::once(0..events.len()),
                &mut scratch,
                &mut arena,
            );
            for (i, e) in events.iter().enumerate() {
                let (subs_want, _) = flat.match_event(e);
                assert_eq!(arena.sub_slice(i), &subs_want[..], "event {i}");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_for_any_thread_count() {
        let subs: Vec<(NodeId, Rect)> = (0..60)
            .map(|i| {
                let x = f64::from(i % 10);
                let y = f64::from(i / 10);
                (
                    NodeId(i % 7),
                    Rect::from_corners(&[x * 0.8, y], &[x * 0.8 + 3.0, y + 4.0]).unwrap(),
                )
            })
            .collect();
        let m = Matcher::build(&space(), &subs, STreeConfig::new(4, 0.3).unwrap()).unwrap();
        let events: Vec<Point> = (0..97)
            .map(|i| {
                Point::new(vec![f64::from(i) * 1.37 % 10.0, f64::from(i) * 2.11 % 10.0]).unwrap()
            })
            .collect();
        let sequential: Vec<_> = events.iter().map(|e| m.match_event(e)).collect();
        for threads in [Some(1), Some(2), Some(5), None] {
            assert_eq!(m.match_events(&events, threads), sequential);
        }
    }
}
