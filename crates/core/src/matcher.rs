//! The matching problem (paper §3): event → interested subscribers.

use std::fmt;

use serde::{Deserialize, Serialize};

use pubsub_geom::{Point, Rect, Space};
use pubsub_netsim::NodeId;
use pubsub_stree::{Entry, EntryId, STree, STreeConfig, SpatialIndex};

use crate::BrokerError;

/// Identifier of one subscription (one rectangle; a subscriber may own
/// several).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SubscriptionId(pub u32);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// The matcher: an S-tree point index over the (clamped) subscription
/// rectangles, plus the subscription→subscriber mapping.
///
/// # Example
///
/// ```
/// use pubsub_core::Matcher;
/// use pubsub_geom::{Point, Rect, Space};
/// use pubsub_netsim::NodeId;
/// use pubsub_stree::STreeConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = Space::anonymous(Rect::from_corners(&[0.0], &[10.0])?)?;
/// let matcher = Matcher::build(
///     &space,
///     &[
///         (NodeId(7), Rect::from_corners(&[0.0], &[5.0])?),
///         (NodeId(7), Rect::from_corners(&[2.0], &[8.0])?),
///         (NodeId(9), Rect::from_corners(&[6.0], &[9.0])?),
///     ],
///     STreeConfig::default(),
/// )?;
/// // Both of node 7's subscriptions match, but the node appears once.
/// let (subs, nodes) = matcher.match_event(&Point::new(vec![3.0])?);
/// assert_eq!(subs.len(), 2);
/// assert_eq!(nodes, vec![NodeId(7)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Matcher {
    index: STree,
    owners: Vec<NodeId>,
    /// Scratch-free upper bound for the subscriber dedup bitmap.
    max_node: u32,
}

impl Matcher {
    /// Builds the matcher from `(subscriber node, rectangle)` pairs.
    /// Rectangles are clamped to `space` so unbounded predicates index
    /// cleanly. Subscription ids are assigned in input order.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DimensionMismatch`] if a rectangle disagrees
    /// with the space and propagates S-tree build errors.
    pub fn build(
        space: &Space,
        subscriptions: &[(NodeId, Rect)],
        config: STreeConfig,
    ) -> Result<Self, BrokerError> {
        let mut entries = Vec::with_capacity(subscriptions.len());
        let mut owners = Vec::with_capacity(subscriptions.len());
        let mut max_node = 0u32;
        for (i, (node, rect)) in subscriptions.iter().enumerate() {
            if rect.dims() != space.dims() {
                return Err(BrokerError::DimensionMismatch {
                    expected: space.dims(),
                    got: rect.dims(),
                });
            }
            entries.push(Entry::new(space.clamp(rect), EntryId(i as u32)));
            owners.push(*node);
            max_node = max_node.max(node.0);
        }
        Ok(Matcher {
            index: STree::build(entries, config)?,
            owners,
            max_node,
        })
    }

    /// Number of subscriptions indexed.
    pub fn subscription_count(&self) -> usize {
        self.owners.len()
    }

    /// The subscriber node owning a subscription.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn owner(&self, id: SubscriptionId) -> NodeId {
        self.owners[id.0 as usize]
    }

    /// The underlying S-tree (for statistics and benchmarking).
    pub fn index(&self) -> &STree {
        &self.index
    }

    /// Matches an event: returns the matching subscription ids and the
    /// deduplicated subscriber nodes (ascending by node id).
    pub fn match_event(&self, event: &Point) -> (Vec<SubscriptionId>, Vec<NodeId>) {
        let hits = self.index.query_point(event);
        let mut subs: Vec<SubscriptionId> = hits.iter().map(|&e| SubscriptionId(e.0)).collect();
        subs.sort_unstable();
        let mut nodes: Vec<NodeId> = hits
            .iter()
            .map(|&e| self.owners[e.0 as usize])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        (subs, nodes)
    }

    /// Largest subscriber node id seen at build time (used to size
    /// bitmaps).
    pub fn max_node_id(&self) -> u32 {
        self.max_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Interval;

    fn space() -> Space {
        Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
    }

    #[test]
    fn dedupes_subscribers_but_reports_all_subscriptions() {
        let m = Matcher::build(
            &space(),
            &[
                (
                    NodeId(3),
                    Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).unwrap(),
                ),
                (
                    NodeId(3),
                    Rect::from_corners(&[1.0, 1.0], &[6.0, 6.0]).unwrap(),
                ),
                (
                    NodeId(5),
                    Rect::from_corners(&[8.0, 8.0], &[10.0, 10.0]).unwrap(),
                ),
            ],
            STreeConfig::default(),
        )
        .unwrap();
        let (subs, nodes) = m.match_event(&Point::new(vec![2.0, 2.0]).unwrap());
        assert_eq!(subs, vec![SubscriptionId(0), SubscriptionId(1)]);
        assert_eq!(nodes, vec![NodeId(3)]);
        assert_eq!(m.owner(SubscriptionId(2)), NodeId(5));
        assert_eq!(m.subscription_count(), 3);
        assert_eq!(m.max_node_id(), 5);
    }

    #[test]
    fn unbounded_subscriptions_are_clamped_and_match() {
        let m = Matcher::build(
            &space(),
            &[(
                NodeId(1),
                Rect::new(vec![Interval::at_least(4.0), Interval::unbounded()]).unwrap(),
            )],
            STreeConfig::default(),
        )
        .unwrap();
        let (_, nodes) = m.match_event(&Point::new(vec![5.0, 9.0]).unwrap());
        assert_eq!(nodes, vec![NodeId(1)]);
        let (_, nodes) = m.match_event(&Point::new(vec![3.0, 9.0]).unwrap());
        assert!(nodes.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let err = Matcher::build(
            &space(),
            &[(NodeId(0), Rect::from_corners(&[0.0], &[1.0]).unwrap())],
            STreeConfig::default(),
        );
        assert!(matches!(
            err,
            Err(BrokerError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn empty_matcher() {
        let m = Matcher::build(&space(), &[], STreeConfig::default()).unwrap();
        let (subs, nodes) = m.match_event(&Point::new(vec![1.0, 1.0]).unwrap());
        assert!(subs.is_empty() && nodes.is_empty());
        assert_eq!(m.subscription_count(), 0);
    }
}
