//! Pre-compilation subscription covering/aggregation.
//!
//! At the ROADMAP's millions-of-subscriptions scale, real workloads are
//! heavily skewed: many subscribers issue the *same* rectangle (hot
//! stocks, popular topics) or rectangles nested inside a few broad
//! ones. Compiling each concrete subscription into its own index entry
//! wastes both index memory and match time on duplicates the delivery
//! step must deduplicate anyway.
//!
//! This module computes, before `compile_engine` builds the spatial
//! index, a deduplicated **representative** set plus an expansion table
//! mapping each representative hit back to the concrete
//! [`SubscriptionId`](crate::SubscriptionId)s it stands for:
//!
//! 1. **Exact-duplicate interning** — bit-identical (clamped)
//!    rectangles collapse to one unique rectangle with a member list.
//! 2. **Subsumption** — the most-subscribed uniques become *cover
//!    candidates*; any unique rectangle contained in a candidate is
//!    absorbed into it and matched via the candidate's index entry
//!    plus an exact per-group re-check (A ⊇ B means every point in B
//!    hits A, so indexing only A loses nothing as long as B's members
//!    re-check B).
//! 3. **Quantized merge** (optional) — near-identical uniques whose
//!    bounds fall in the same coarse grid cells merge into their hull,
//!    again with per-group exact re-checks.
//!
//! Delivered sets stay **bit-identical** to the unaggregated build:
//! every concrete subscription is a member of exactly one group, a
//! group's members are delivered iff the point passes the group's
//! exact `f64` rectangle test, and that rectangle is the subscription's
//! own (clamped) rectangle — identity groups merely skip the test
//! because their rectangle *is* the representative's, which was already
//! tested. The covering-parity proptests in `tests/covering_parity.rs`
//! pin this end to end.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pubsub_geom::{Rect, Space};
use pubsub_netsim::NodeId;
use pubsub_stree::EntryId;

use crate::BrokerError;

/// Knobs of the covering layer. The defaults aggregate duplicates and
/// obvious subsumptions; `merge_cells` enables the lossier (but still
/// exactly re-checked) quantized merge of near-identical rectangles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveringConfig {
    /// Maximum number of cover candidates considered for subsumption
    /// (the most-subscribed unique rectangles). Each non-candidate
    /// unique is tested against every candidate, so this bounds the
    /// aggregation pass at `O(uniques × max_covers × dims)`.
    pub max_covers: usize,
    /// Minimum members a unique needs to become a cover candidate.
    pub min_cover_members: usize,
    /// Grid resolution (cells per dimension) of the quantized merge of
    /// near-identical rectangles; `0` disables the merge pass.
    pub merge_cells: u32,
}

impl Default for CoveringConfig {
    fn default() -> Self {
        CoveringConfig {
            max_covers: 64,
            min_cover_members: 4,
            merge_cells: 0,
        }
    }
}

/// Aggregation statistics of one covering build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveringStats {
    /// Concrete subscriptions streamed in.
    pub concrete: usize,
    /// Distinct rectangles after interning.
    pub uniques: usize,
    /// Representatives actually compiled into the index.
    pub representatives: usize,
    /// Uniques absorbed into a covering candidate.
    pub subsumed: usize,
    /// Uniques merged into a quantized hull.
    pub merged: usize,
}

impl CoveringStats {
    /// Concrete subscriptions per compiled index entry (≥ 1).
    pub fn aggregation_ratio(&self) -> f64 {
        if self.representatives == 0 {
            1.0
        } else {
            self.concrete as f64 / self.representatives as f64
        }
    }
}

/// A replayable stream of `(subscriber, rectangle)` pairs — the input
/// of the streaming compile path. Implemented for slices (tests,
/// benches) and by the broker for its registry, so a recompile never
/// has to materialize an O(N) rectangle array.
pub trait SubscriptionStream {
    /// Number of subscriptions the stream yields.
    fn len(&self) -> usize;
    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Calls `f` once per subscription, in stable subscription-id
    /// order. Replayable: every call visits the same pairs in the same
    /// order.
    fn for_each(&self, f: &mut dyn FnMut(NodeId, &Rect));
}

impl SubscriptionStream for &[(NodeId, Rect)] {
    fn len(&self) -> usize {
        <[_]>::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(NodeId, &Rect)) {
        for (node, rect) in *self {
            f(*node, rect);
        }
    }
}

/// The expansion table: exact representative bounds (for the
/// boundary-ambiguous re-check) plus a two-level CSR mapping each
/// representative to its groups and each group to its concrete member
/// subscription ids.
///
/// Layout: representative bounds are dimension-major
/// (`rep_lo[d * reps + r]`), mirroring the index layout; group re-check
/// rectangles are row-major (`grect_lo[g * dims + d]`) because they are
/// touched one at a time.
#[derive(Debug, Clone, Default)]
pub struct CoveringTable {
    dims: usize,
    /// Exact (clamped) representative bounds, dimension-major.
    rep_lo: Vec<f64>,
    rep_hi: Vec<f64>,
    /// Representative → group span: groups of rep `r` are
    /// `group_rect[group_start[r]..group_start[r + 1]]`.
    group_start: Vec<u32>,
    /// Per group: `u32::MAX` when the group's rectangle equals the
    /// representative's (identity — no re-check needed), else the row
    /// of the group's exact rectangle in `grect_lo`/`grect_hi`.
    group_rect: Vec<u32>,
    /// Group → member span over `members`.
    group_member_start: Vec<u32>,
    /// Concrete subscription ids, grouped; every id appears exactly
    /// once across the whole table.
    members: Vec<u32>,
    /// Exact rectangles of non-identity groups, row-major.
    grect_lo: Vec<f64>,
    grect_hi: Vec<f64>,
    stats: CoveringStats,
}

impl CoveringTable {
    /// Number of representatives.
    pub fn rep_count(&self) -> usize {
        if self.group_start.is_empty() {
            0
        } else {
            self.group_start.len() - 1
        }
    }

    /// Aggregation statistics of the build.
    pub fn stats(&self) -> &CoveringStats {
        &self.stats
    }

    /// Exact bounds of representative `r` along dimension `d`.
    #[inline]
    pub fn rep_bounds(&self, r: usize, d: usize) -> (f64, f64) {
        let reps = self.rep_count();
        (self.rep_lo[d * reps + r], self.rep_hi[d * reps + r])
    }

    /// Bytes of heap held by the table arrays.
    pub fn heap_bytes(&self) -> usize {
        (self.rep_lo.capacity()
            + self.rep_hi.capacity()
            + self.grect_lo.capacity()
            + self.grect_hi.capacity())
            * 8
            + (self.group_start.capacity()
                + self.group_rect.capacity()
                + self.group_member_start.capacity()
                + self.members.capacity())
                * 4
    }

    /// Expands a representative hit into the concrete subscription ids
    /// whose rectangles contain `point`, appending them to `out`.
    ///
    /// `ambiguous` hits (quantization could not prove exactness) are
    /// first re-checked against the representative's exact bounds — a
    /// failed re-check drops the whole hit, which is sound because the
    /// representative contains every member rectangle. Surviving
    /// non-identity groups re-check their own exact rectangle once and
    /// deliver all members on success; identity groups deliver
    /// immediately (their rectangle is the representative's, already
    /// proven to contain the point).
    #[inline]
    pub fn expand(&self, rep: u32, ambiguous: bool, point: &[f64], out: &mut Vec<EntryId>) {
        let r = rep as usize;
        let reps = self.rep_count();
        if ambiguous {
            for (d, &x) in point.iter().enumerate() {
                if !(self.rep_lo[d * reps + r] < x && x <= self.rep_hi[d * reps + r]) {
                    return;
                }
            }
        }
        let lo = self.group_start[r] as usize;
        let hi = self.group_start[r + 1] as usize;
        for g in lo..hi {
            let rect = self.group_rect[g];
            if rect != u32::MAX {
                let base = rect as usize * self.dims;
                let mut inside = true;
                for (d, &x) in point.iter().enumerate() {
                    if !(self.grect_lo[base + d] < x && x <= self.grect_hi[base + d]) {
                        inside = false;
                        break;
                    }
                }
                if !inside {
                    continue;
                }
            }
            let ms = self.group_member_start[g] as usize..self.group_member_start[g + 1] as usize;
            out.extend(self.members[ms].iter().map(|&s| EntryId(s)));
        }
    }
}

/// Intermediate of [`build_covering`]: the table plus the per-concrete
/// owner array the matcher keeps.
pub(crate) struct CoveringBuild {
    pub table: CoveringTable,
    pub owners: Vec<NodeId>,
    pub max_node: u32,
}

/// Streams the subscriptions once, interning clamped rectangles,
/// absorbing subsumed uniques into cover candidates and (optionally)
/// merging near-identical uniques, and assembles the expansion table.
/// Transient memory is O(uniques) rectangles plus O(N) `u32`s — never
/// O(N) rectangles.
pub(crate) fn build_covering(
    space: &Space,
    subs: &dyn SubscriptionStream,
    config: &CoveringConfig,
) -> Result<CoveringBuild, BrokerError> {
    let dims = space.dims();
    let count = subs.len();

    // Pass 1 (the only pass over the stream): clamp, intern, owners.
    let mut intern: HashMap<Box<[u64]>, u32> = HashMap::new();
    let mut uniq_lo: Vec<f64> = Vec::new(); // row-major [u * dims + d]
    let mut uniq_hi: Vec<f64> = Vec::new();
    let mut uniq_counts: Vec<u32> = Vec::new();
    let mut sub_uniq: Vec<u32> = Vec::with_capacity(count);
    let mut owners: Vec<NodeId> = Vec::with_capacity(count);
    let mut max_node = 0u32;
    let mut key = Vec::with_capacity(2 * dims);
    let mut first_err: Option<BrokerError> = None;
    subs.for_each(&mut |node, rect| {
        if first_err.is_some() {
            return;
        }
        if rect.dims() != dims {
            first_err = Some(BrokerError::DimensionMismatch {
                expected: dims,
                got: rect.dims(),
            });
            return;
        }
        let clamped = space.clamp(rect);
        owners.push(node);
        max_node = max_node.max(node.0);
        key.clear();
        for d in 0..dims {
            let side = clamped.side(d);
            key.push(side.lo().to_bits());
            key.push(side.hi().to_bits());
        }
        let uniq = match intern.get(key.as_slice()) {
            Some(&u) => u,
            None => {
                let u = uniq_counts.len() as u32;
                intern.insert(key.clone().into_boxed_slice(), u);
                for d in 0..dims {
                    let side = clamped.side(d);
                    uniq_lo.push(side.lo());
                    uniq_hi.push(side.hi());
                }
                uniq_counts.push(0);
                u
            }
        };
        uniq_counts[uniq as usize] += 1;
        sub_uniq.push(uniq);
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    drop(intern);
    let uniques = uniq_counts.len();
    let ub = |u: usize, d: usize| (uniq_lo[u * dims + d], uniq_hi[u * dims + d]);

    // Member CSR per unique (counting sort over sub_uniq keeps each
    // unique's member list in ascending subscription-id order).
    let mut uniq_member_start: Vec<u32> = Vec::with_capacity(uniques + 1);
    let mut acc = 0u32;
    for &c in &uniq_counts {
        uniq_member_start.push(acc);
        acc += c;
    }
    uniq_member_start.push(acc);
    let mut cursor = uniq_member_start[..uniques].to_vec();
    let mut uniq_members = vec![0u32; count];
    for (sub, &u) in sub_uniq.iter().enumerate() {
        uniq_members[cursor[u as usize] as usize] = sub as u32;
        cursor[u as usize] += 1;
    }
    drop(cursor);
    drop(sub_uniq);

    // Pass 2: subsumption. Candidates are the most-subscribed uniques
    // (count desc, id asc — deterministic); each other unique is
    // absorbed by the first candidate strictly containing it.
    let mut by_count: Vec<u32> = (0..uniques as u32).collect();
    by_count.sort_unstable_by_key(|&u| (std::cmp::Reverse(uniq_counts[u as usize]), u));
    let candidates: Vec<u32> = by_count
        .into_iter()
        .take(config.max_covers)
        .filter(|&u| uniq_counts[u as usize] as usize >= config.min_cover_members.max(1))
        .collect();
    let mut is_candidate = vec![false; uniques];
    for &c in &candidates {
        is_candidate[c as usize] = true;
    }
    let mut absorbed_into = vec![u32::MAX; uniques];
    let mut subsumed = 0usize;
    for u in 0..uniques {
        if is_candidate[u] {
            continue;
        }
        for &c in &candidates {
            let c = c as usize;
            let mut covered = true;
            for d in 0..dims {
                let (clo, chi) = ub(c, d);
                let (ulo, uhi) = ub(u, d);
                if !(clo <= ulo && uhi <= chi) {
                    covered = false;
                    break;
                }
            }
            if covered {
                absorbed_into[u] = c as u32;
                subsumed += 1;
                break;
            }
        }
    }

    // Pass 3 (optional): quantized merge of the remaining uniques.
    // Uniques whose bounds land in the same coarse grid cells in every
    // dimension merge into their hull. Group ids are assigned in
    // first-encounter unique order — deterministic despite the map.
    let mut merge_gid = vec![u32::MAX; uniques];
    let mut merge_groups: Vec<Vec<u32>> = Vec::new();
    let mut merged = 0usize;
    if config.merge_cells > 0 && uniques > 0 {
        let cells = f64::from(config.merge_cells);
        let mut sig_ids: HashMap<Box<[u32]>, u32> = HashMap::new();
        let mut sig = Vec::with_capacity(2 * dims);
        let bounds = space.bounds();
        for u in 0..uniques {
            if is_candidate[u] || absorbed_into[u] != u32::MAX {
                continue;
            }
            sig.clear();
            for d in 0..dims {
                let side = bounds.side(d);
                let span = side.hi() - side.lo();
                let scale = if span.is_finite() && span > 0.0 {
                    cells / span
                } else {
                    0.0
                };
                let (lo, hi) = ub(u, d);
                sig.push(((lo - side.lo()) * scale) as u32);
                sig.push(((hi - side.lo()) * scale) as u32);
            }
            let gid = match sig_ids.get(sig.as_slice()) {
                Some(&g) => g,
                None => {
                    let g = merge_groups.len() as u32;
                    sig_ids.insert(sig.clone().into_boxed_slice(), g);
                    merge_groups.push(Vec::new());
                    g
                }
            };
            merge_gid[u] = gid;
            merge_groups[gid as usize].push(u as u32);
        }
        // Singleton "merges" stay plain representatives.
        for group in &merge_groups {
            if group.len() < 2 {
                merge_gid[group[0] as usize] = u32::MAX;
            } else {
                merged += group.len();
            }
        }
    }

    // Representative assignment, in first-encounter unique order: a
    // candidate or unabsorbed/unmerged unique owns its own rep; a
    // multi-member merge group gets one hull rep at its first member.
    let mut rep_of_uniq = vec![u32::MAX; uniques];
    let mut rep_src: Vec<(u32, bool)> = Vec::new(); // (uniq or gid, is_merge)
    let mut merge_rep = vec![u32::MAX; merge_groups.len()];
    for u in 0..uniques {
        if absorbed_into[u] != u32::MAX {
            continue; // resolved through its candidate below
        }
        let gid = merge_gid[u];
        if gid != u32::MAX {
            if merge_rep[gid as usize] == u32::MAX {
                merge_rep[gid as usize] = rep_src.len() as u32;
                rep_src.push((gid, true));
            }
            rep_of_uniq[u] = merge_rep[gid as usize];
        } else {
            rep_of_uniq[u] = rep_src.len() as u32;
            rep_src.push((u as u32, false));
        }
    }
    for u in 0..uniques {
        if absorbed_into[u] != u32::MAX {
            rep_of_uniq[u] = rep_of_uniq[absorbed_into[u] as usize];
        }
    }
    let reps = rep_src.len();

    // Representative bounds: dimension-major; merge reps take the hull
    // of their members.
    let mut rep_lo = vec![0.0f64; dims * reps];
    let mut rep_hi = vec![0.0f64; dims * reps];
    for (r, &(src, is_merge)) in rep_src.iter().enumerate() {
        for d in 0..dims {
            let (lo, hi) = if is_merge {
                let group = &merge_groups[src as usize];
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &u in group {
                    let (ul, uh) = ub(u as usize, d);
                    lo = lo.min(ul);
                    hi = hi.max(uh);
                }
                (lo, hi)
            } else {
                ub(src as usize, d)
            };
            rep_lo[d * reps + r] = lo;
            rep_hi[d * reps + r] = hi;
        }
    }

    // Group assembly: bucket uniques under their rep (unique order
    // within each rep), then flatten the two-level CSR.
    let mut rep_uniques: Vec<Vec<u32>> = vec![Vec::new(); reps];
    for u in 0..uniques {
        rep_uniques[rep_of_uniq[u] as usize].push(u as u32);
    }
    let mut group_start = Vec::with_capacity(reps + 1);
    let mut group_rect = Vec::new();
    let mut group_member_start = Vec::new();
    let mut members = Vec::with_capacity(count);
    let mut grect_lo = Vec::new();
    let mut grect_hi = Vec::new();
    for (r, us) in rep_uniques.iter().enumerate() {
        group_start.push(group_rect.len() as u32);
        for &u in us {
            let u = u as usize;
            let identity = (0..dims).all(|d| {
                let (ul, uh) = ub(u, d);
                ul == rep_lo[d * reps + r] && uh == rep_hi[d * reps + r]
            });
            if identity {
                group_rect.push(u32::MAX);
            } else {
                group_rect.push((grect_lo.len() / dims) as u32);
                for d in 0..dims {
                    let (ul, uh) = ub(u, d);
                    grect_lo.push(ul);
                    grect_hi.push(uh);
                }
            }
            group_member_start.push(members.len() as u32);
            let span = uniq_member_start[u] as usize..uniq_member_start[u + 1] as usize;
            members.extend_from_slice(&uniq_members[span]);
        }
    }
    group_start.push(group_rect.len() as u32);
    group_member_start.push(members.len() as u32);
    debug_assert_eq!(members.len(), count);

    let stats = CoveringStats {
        concrete: count,
        uniques,
        representatives: reps,
        subsumed,
        merged,
    };
    Ok(CoveringBuild {
        table: CoveringTable {
            dims,
            rep_lo,
            rep_hi,
            group_start,
            group_rect,
            group_member_start,
            members,
            grect_lo,
            grect_hi,
            stats,
        },
        owners,
        max_node,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
    }

    fn rect(lo: [f64; 2], hi: [f64; 2]) -> Rect {
        Rect::from_corners(&lo, &hi).unwrap()
    }

    fn expand_all(table: &CoveringTable, point: &[f64]) -> Vec<u32> {
        let reps = table.rep_count();
        let mut out = Vec::new();
        for r in 0..reps {
            // Treat every rep as an ambiguous hit: expand re-checks.
            table.expand(r as u32, true, point, &mut out);
        }
        let mut ids: Vec<u32> = out.into_iter().map(|e| e.0).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn duplicates_intern_to_one_representative() {
        let subs: Vec<(NodeId, Rect)> = (0..10)
            .map(|i| (NodeId(i), rect([1.0, 1.0], [4.0, 4.0])))
            .collect();
        let b = build_covering(&space(), &subs.as_slice(), &CoveringConfig::default()).unwrap();
        assert_eq!(b.table.stats().uniques, 1);
        assert_eq!(b.table.stats().representatives, 1);
        assert_eq!(b.table.stats().aggregation_ratio(), 10.0);
        assert_eq!(
            expand_all(&b.table, &[2.0, 2.0]),
            (0..10).collect::<Vec<_>>()
        );
        assert!(expand_all(&b.table, &[5.0, 5.0]).is_empty());
    }

    #[test]
    fn subsumed_rectangles_recheck_their_own_bounds() {
        // 5 dupes of the big rect make it a candidate; the small rect
        // is absorbed but must only match inside itself.
        let mut subs: Vec<(NodeId, Rect)> = (0..5)
            .map(|i| (NodeId(i), rect([0.0, 0.0], [8.0, 8.0])))
            .collect();
        subs.push((NodeId(9), rect([2.0, 2.0], [3.0, 3.0])));
        let b = build_covering(&space(), &subs.as_slice(), &CoveringConfig::default()).unwrap();
        assert_eq!(b.table.stats().uniques, 2);
        assert_eq!(b.table.stats().representatives, 1);
        assert_eq!(b.table.stats().subsumed, 1);
        // Inside both.
        assert_eq!(expand_all(&b.table, &[2.5, 2.5]), vec![0, 1, 2, 3, 4, 5]);
        // Inside the candidate only.
        assert_eq!(expand_all(&b.table, &[6.0, 6.0]), vec![0, 1, 2, 3, 4]);
        // On the small rect's open lower edge: excluded from it.
        assert_eq!(expand_all(&b.table, &[2.0, 2.5]), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn quantized_merge_keeps_exact_semantics() {
        // Two near-identical rects merge under a coarse grid; a point
        // between their upper edges must hit exactly one.
        let subs = vec![
            (NodeId(0), rect([1.0, 1.0], [4.00, 4.00])),
            (NodeId(1), rect([1.0, 1.0], [4.05, 4.05])),
        ];
        let cfg = CoveringConfig {
            merge_cells: 16,
            ..CoveringConfig::default()
        };
        let b = build_covering(&space(), &subs.as_slice(), &cfg).unwrap();
        assert_eq!(b.table.stats().representatives, 1);
        assert_eq!(b.table.stats().merged, 2);
        assert_eq!(expand_all(&b.table, &[4.02, 4.02]), vec![1]);
        assert_eq!(expand_all(&b.table, &[3.0, 3.0]), vec![0, 1]);
    }

    #[test]
    fn every_member_appears_exactly_once() {
        let subs: Vec<(NodeId, Rect)> = (0..50)
            .map(|i| {
                let k = f64::from(i % 7);
                (NodeId(i), rect([k * 0.5, 0.0], [k * 0.5 + 2.0, 5.0]))
            })
            .collect();
        let cfg = CoveringConfig {
            merge_cells: 8,
            min_cover_members: 2,
            ..CoveringConfig::default()
        };
        let b = build_covering(&space(), &subs.as_slice(), &cfg).unwrap();
        let mut all = b.table.members.clone();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
        assert_eq!(b.owners.len(), 50);
    }

    #[test]
    fn dimension_mismatch_surfaces() {
        let subs = vec![(NodeId(0), Rect::from_corners(&[0.0], &[1.0]).unwrap())];
        let err = build_covering(&space(), &subs.as_slice(), &CoveringConfig::default());
        assert!(matches!(
            err,
            Err(BrokerError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn empty_stream_builds_empty_table() {
        let subs: Vec<(NodeId, Rect)> = Vec::new();
        let b = build_covering(&space(), &subs.as_slice(), &CoveringConfig::default()).unwrap();
        assert_eq!(b.table.rep_count(), 0);
        assert_eq!(b.table.stats().aggregation_ratio(), 1.0);
    }
}
