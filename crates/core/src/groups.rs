//! Multicast group materialization: `M_q = {v ∈ V_S : ∃j b_vj ∩ S_q ≠ ∅}`.

use pubsub_clustering::{GridModel, SpacePartition};
use pubsub_netsim::NodeId;
use serde::{Deserialize, Serialize};

/// The multicast groups induced by a space partition: group `q` contains
/// every subscriber with a subscription intersecting region `S_q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastGroups {
    groups: Vec<Vec<NodeId>>,
}

impl MulticastGroups {
    /// Builds the groups from the clustering model and partition.
    ///
    /// `node_of` maps the model's dense subscriber indices back to
    /// topology nodes.
    ///
    /// # Panics
    ///
    /// Panics if a subscriber index has no mapping (the caller built both
    /// structures, so this is a programming error, not an input error).
    pub fn from_partition(
        model: &GridModel,
        partition: &SpacePartition,
        node_of: &[NodeId],
    ) -> Self {
        let mut groups = Vec::with_capacity(partition.group_count());
        for q in 0..partition.group_count() {
            let mut members = pubsub_clustering::SubscriberSet::new(model.subscriber_count());
            for cell in partition.cells_of_group(q) {
                members.union_with(model.members(cell));
            }
            let mut nodes: Vec<NodeId> = members.iter().map(|i| node_of[i]).collect();
            nodes.sort_unstable();
            nodes.dedup();
            groups.push(nodes);
        }
        MulticastGroups { groups }
    }

    /// Builds the groups from raw member lists (one per group); members
    /// are sorted and deduplicated. This is the churn-maintenance
    /// constructor: the broker re-materializes only the groups whose
    /// membership changed and reuses the rest.
    pub fn from_members(members: Vec<Vec<NodeId>>) -> Self {
        let mut groups = members;
        for nodes in &mut groups {
            nodes.sort_unstable();
            nodes.dedup();
        }
        MulticastGroups { groups }
    }

    /// Number of groups `n`.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` if there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Members of group `q`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn members(&self, q: usize) -> &[NodeId] {
        &self.groups[q]
    }

    /// Sizes of all groups.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(Vec::len).collect()
    }

    /// Total state the routers would hold: the sum of group sizes (the
    /// paper notes dense-mode state is proportional to publishers×groups).
    pub fn total_memberships(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_clustering::GridModel;
    use pubsub_geom::{Grid, Rect};

    #[test]
    fn groups_union_cell_memberships() {
        let grid = Grid::uniform(Rect::from_corners(&[0.0], &[4.0]).unwrap(), 4).unwrap();
        // Subscriber 0 -> cells 0-1, subscriber 1 -> cells 2-3, subscriber
        // 2 -> everything.
        let subs = vec![
            (0usize, Rect::from_corners(&[0.0], &[2.0]).unwrap()),
            (1usize, Rect::from_corners(&[2.0], &[4.0]).unwrap()),
            (2usize, Rect::from_corners(&[0.0], &[4.0]).unwrap()),
        ];
        let model = GridModel::build(grid.clone(), 3, &subs, |_| 0.25).unwrap();
        let clusters = vec![
            vec![grid.id_of_coords(&[0]), grid.id_of_coords(&[1])],
            vec![grid.id_of_coords(&[2]), grid.id_of_coords(&[3])],
        ];
        let partition = SpacePartition::from_clusters(grid, &clusters).unwrap();
        let node_of = [NodeId(10), NodeId(20), NodeId(30)];
        let groups = MulticastGroups::from_partition(&model, &partition, &node_of);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups.members(0), &[NodeId(10), NodeId(30)]);
        assert_eq!(groups.members(1), &[NodeId(20), NodeId(30)]);
        assert_eq!(groups.sizes(), vec![2, 2]);
        assert_eq!(groups.total_memberships(), 4);
        assert!(!groups.is_empty());
    }

    #[test]
    fn duplicate_nodes_are_merged() {
        // Two subscriber indices mapping to the same node appear once.
        let grid = Grid::uniform(Rect::from_corners(&[0.0], &[2.0]).unwrap(), 2).unwrap();
        let subs = vec![
            (0usize, Rect::from_corners(&[0.0], &[2.0]).unwrap()),
            (1usize, Rect::from_corners(&[0.0], &[2.0]).unwrap()),
        ];
        let model = GridModel::build(grid.clone(), 2, &subs, |_| 0.5).unwrap();
        let clusters = vec![vec![grid.id_of_coords(&[0]), grid.id_of_coords(&[1])]];
        let partition = SpacePartition::from_clusters(grid, &clusters).unwrap();
        let groups = MulticastGroups::from_partition(&model, &partition, &[NodeId(5), NodeId(5)]);
        assert_eq!(groups.members(0), &[NodeId(5)]);
    }
}
