//! A high-level subscription language (paper §1).
//!
//! Users think in predicates — `name = IBM`, `75 < price ≤ 80`,
//! `volume ≥ 1000` — not rectangles. A [`SubscriptionSpec`] is a
//! conjunction of per-attribute [`Predicate`]s; attributes left out are
//! wild-cards. Following §1's observation, a predicate whose domain is a
//! *union* of ranges (`price in (10,20] or (40,50]`) is decomposed by
//! taking the cross product of the per-attribute range lists: one
//! rectangle per combination, "albeit at a cost of more subscriptions".
//!
//! # Example
//!
//! ```
//! use pubsub_core::{Predicate, SubscriptionSpec};
//! use pubsub_geom::{Rect, Space};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = Space::new(
//!     vec!["name".into(), "price".into(), "volume".into()],
//!     Rect::from_corners(&[0.0, 0.0, 0.0], &[100.0, 200.0, 1e6])?,
//! )?;
//! // The Gryphon subscription of the paper's introduction.
//! let spec = SubscriptionSpec::new()
//!     .attr("name", Predicate::equals(42.0))        // name=IBM, indexed
//!     .attr("price", Predicate::range(75.0, 80.0))  // 75 < price <= 80
//!     .attr("volume", Predicate::at_least(1000.0)); // volume >= 1000
//! let rects = spec.compile(&space)?;
//! assert_eq!(rects.len(), 1);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use pubsub_geom::{Interval, Rect, Space};
use serde::{Deserialize, Serialize};

use crate::BrokerError;

/// A single-attribute predicate: one or more half-open ranges of the
/// attribute's (linearized) domain.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Predicate {
    /// The admissible ranges (at least one; a union is decomposed at
    /// compile time).
    ranges: Vec<Interval>,
}

impl Predicate {
    /// `attr = v` over a discretized/indexed domain: the half-open unit
    /// interval `(v-1, v]`, the paper's convention for equality on
    /// linearized attributes such as stock names.
    pub fn equals(v: f64) -> Self {
        Predicate {
            ranges: vec![Interval::new(v - 1.0, v).expect("unit width")],
        }
    }

    /// `lo < attr ≤ hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either is NaN (predicates are program
    /// constants; a malformed one is a programming error).
    pub fn range(lo: f64, hi: f64) -> Self {
        Predicate {
            ranges: vec![Interval::new(lo, hi).expect("ordered bounds")],
        }
    }

    /// `attr ≥ v` over a discrete domain (`(v-1, +∞)`), or use
    /// [`Predicate::greater_than`] for the strict continuous form.
    pub fn at_least(v: f64) -> Self {
        Predicate {
            ranges: vec![Interval::greater_than(v - 1.0)],
        }
    }

    /// `attr > v`.
    pub fn greater_than(v: f64) -> Self {
        Predicate {
            ranges: vec![Interval::greater_than(v)],
        }
    }

    /// `attr ≤ v`.
    pub fn at_most(v: f64) -> Self {
        Predicate {
            ranges: vec![Interval::at_most(v)],
        }
    }

    /// Any value (`*`).
    pub fn wildcard() -> Self {
        Predicate {
            ranges: vec![Interval::unbounded()],
        }
    }

    /// A union of values/ranges: `attr in r1 or r2 or ...`. Decomposed
    /// into one rectangle per range at compile time.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn any_of(ranges: Vec<Interval>) -> Self {
        assert!(!ranges.is_empty(), "a predicate needs at least one range");
        Predicate { ranges }
    }

    /// Adds another admissible range (disjunction).
    pub fn or(mut self, other: Interval) -> Self {
        self.ranges.push(other);
        self
    }

    /// The admissible ranges.
    pub fn ranges(&self) -> &[Interval] {
        &self.ranges
    }
}

/// A conjunctive subscription over named attributes; unmentioned
/// attributes are wild-cards. Compiling against a [`Space`] produces the
/// equivalent set of rectangles (one per combination of per-attribute
/// ranges).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct SubscriptionSpec {
    predicates: BTreeMap<String, Predicate>,
}

impl SubscriptionSpec {
    /// An empty (all-wild-card) specification.
    pub fn new() -> Self {
        SubscriptionSpec::default()
    }

    /// Constrains an attribute. Setting the same attribute twice replaces
    /// the earlier predicate.
    pub fn attr(mut self, name: &str, predicate: Predicate) -> Self {
        self.predicates.insert(name.to_string(), predicate);
        self
    }

    /// The constrained attribute names, sorted.
    pub fn attributes(&self) -> impl Iterator<Item = &str> {
        self.predicates.keys().map(String::as_str)
    }

    /// How many rectangles [`SubscriptionSpec::compile`] will produce:
    /// the product of the per-attribute range counts.
    pub fn rectangle_count(&self) -> usize {
        self.predicates
            .values()
            .map(|p| p.ranges.len())
            .product::<usize>()
            .max(1)
    }

    /// Compiles the spec against a space: resolves attribute names to
    /// dimensions and takes the cross product of the per-attribute range
    /// lists.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidConfig`] if an attribute name is not
    /// in the space.
    pub fn compile(&self, space: &Space) -> Result<Vec<Rect>, BrokerError> {
        // Per dimension: the list of admissible intervals.
        let mut per_dim: Vec<Vec<Interval>> = vec![vec![Interval::unbounded()]; space.dims()];
        for (name, predicate) in &self.predicates {
            let d = space.dim_of(name).ok_or(BrokerError::InvalidConfig {
                parameter: "attribute",
                constraint: "every predicate attribute must exist in the space",
            })?;
            per_dim[d] = predicate.ranges.clone();
        }
        // Cross product (odometer).
        let mut rects = Vec::with_capacity(per_dim.iter().map(Vec::len).product());
        let mut choice = vec![0usize; per_dim.len()];
        loop {
            let sides: Vec<Interval> = choice
                .iter()
                .enumerate()
                .map(|(d, &c)| per_dim[d][c])
                .collect();
            rects.push(Rect::new(sides).expect("space has >= 1 dimension"));
            let mut d = per_dim.len();
            loop {
                if d == 0 {
                    return Ok(rects);
                }
                d -= 1;
                choice[d] += 1;
                if choice[d] < per_dim[d].len() {
                    break;
                }
                choice[d] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Point;

    fn space() -> Space {
        Space::new(
            vec!["name".into(), "price".into(), "volume".into()],
            Rect::from_corners(&[0.0, 0.0, 0.0], &[100.0, 200.0, 1e6]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn gryphon_subscription_compiles_to_one_rect() {
        let spec = SubscriptionSpec::new()
            .attr("name", Predicate::equals(42.0))
            .attr("price", Predicate::range(75.0, 80.0))
            .attr("volume", Predicate::at_least(1000.0));
        let rects = spec.compile(&space()).unwrap();
        assert_eq!(rects.len(), 1);
        assert_eq!(spec.rectangle_count(), 1);
        let r = &rects[0];
        // name=42 (IBM's index), 78.5 price, 5000 shares: matches.
        assert!(r.contains_point(&Point::new(vec![42.0, 78.5, 5000.0]).unwrap()));
        // price 75 exactly: open on the left, no match.
        assert!(!r.contains_point(&Point::new(vec![42.0, 75.0, 5000.0]).unwrap()));
        // price 80 exactly: closed on the right, matches.
        assert!(r.contains_point(&Point::new(vec![42.0, 80.0, 5000.0]).unwrap()));
        // volume 999: below the >= 1000 cut.
        assert!(!r.contains_point(&Point::new(vec![42.0, 78.0, 999.0]).unwrap()));
        assert!(r.contains_point(&Point::new(vec![42.0, 78.0, 1000.0]).unwrap()));
        // wrong name
        assert!(!r.contains_point(&Point::new(vec![43.5, 78.0, 5000.0]).unwrap()));
    }

    #[test]
    fn unmentioned_attributes_are_wildcards() {
        let spec = SubscriptionSpec::new().attr("price", Predicate::at_most(20.0));
        let rects = spec.compile(&space()).unwrap();
        assert_eq!(rects.len(), 1);
        assert!(rects[0].contains_point(&Point::new(vec![99.0, 10.0, 123456.0]).unwrap()));
        assert!(!rects[0].contains_point(&Point::new(vec![99.0, 20.5, 0.0]).unwrap()));
    }

    #[test]
    fn union_predicates_decompose_via_cross_product() {
        let spec = SubscriptionSpec::new()
            .attr(
                "price",
                Predicate::range(10.0, 20.0).or(Interval::new(40.0, 50.0).unwrap()),
            )
            .attr(
                "name",
                Predicate::any_of(vec![
                    Interval::new(1.0, 2.0).unwrap(),
                    Interval::new(5.0, 6.0).unwrap(),
                    Interval::new(9.0, 10.0).unwrap(),
                ]),
            );
        assert_eq!(spec.rectangle_count(), 6);
        let rects = spec.compile(&space()).unwrap();
        assert_eq!(rects.len(), 6);
        // A point in the second price range and third name range matches
        // exactly one rectangle.
        let p = Point::new(vec![9.5, 45.0, 0.5]).unwrap();
        assert_eq!(rects.iter().filter(|r| r.contains_point(&p)).count(), 1);
        // A point outside both price ranges matches none.
        let p2 = Point::new(vec![9.5, 30.0, 0.5]).unwrap();
        assert_eq!(rects.iter().filter(|r| r.contains_point(&p2)).count(), 0);
    }

    #[test]
    fn decomposition_preserves_semantics() {
        // Membership in the union of compiled rects == conjunction of
        // per-attribute disjunctions, on a grid of probe points.
        let spec = SubscriptionSpec::new()
            .attr(
                "price",
                Predicate::any_of(vec![
                    Interval::new(0.0, 50.0).unwrap(),
                    Interval::new(100.0, 150.0).unwrap(),
                ]),
            )
            .attr("volume", Predicate::greater_than(500.0));
        let rects = spec.compile(&space()).unwrap();
        for name in [0.0f64, 50.0] {
            for price in [25.0f64, 75.0, 125.0, 175.0] {
                for volume in [100.0f64, 501.0, 1e5] {
                    let p = Point::new(vec![name, price, volume]).unwrap();
                    let in_union = rects.iter().any(|r| r.contains_point(&p));
                    let price_ok =
                        (price > 0.0 && price <= 50.0) || (price > 100.0 && price <= 150.0);
                    let volume_ok = volume > 500.0;
                    assert_eq!(in_union, price_ok && volume_ok, "{p:?}");
                }
            }
        }
    }

    #[test]
    fn unknown_attribute_rejected() {
        let spec = SubscriptionSpec::new().attr("nope", Predicate::wildcard());
        assert!(matches!(
            spec.compile(&space()),
            Err(BrokerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_spec_is_one_full_wildcard() {
        let spec = SubscriptionSpec::new();
        let rects = spec.compile(&space()).unwrap();
        assert_eq!(rects.len(), 1);
        assert_eq!(spec.rectangle_count(), 1);
        assert!(rects[0].contains_point(&Point::new(vec![1.0, 2.0, 3.0]).unwrap()));
        assert_eq!(spec.attributes().count(), 0);
    }

    #[test]
    fn replacing_a_predicate() {
        let spec = SubscriptionSpec::new()
            .attr("price", Predicate::at_most(10.0))
            .attr("price", Predicate::at_least(90.0));
        let rects = spec.compile(&space()).unwrap();
        assert_eq!(rects.len(), 1);
        assert!(rects[0].contains_point(&Point::new(vec![0.0, 95.0, 0.0]).unwrap()));
        assert!(!rects[0].contains_point(&Point::new(vec![0.0, 5.0, 0.0]).unwrap()));
    }
}
