//! Lightweight descriptive statistics used by the figure harnesses:
//! histograms, rank-frequency tables and closed-form distribution fits.

use serde::{Deserialize, Serialize};

use crate::WorkloadError;

/// A fixed-width histogram over `[lo, hi)` with out-of-range values
/// clamped into the boundary bins (the figure harnesses care about shape,
/// not tail truncation artifacts).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] unless `lo < hi` (finite)
    /// and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, WorkloadError> {
        if !(lo < hi && lo.is_finite() && hi.is_finite()) {
            return Err(WorkloadError::InvalidConfig {
                parameter: "lo/hi",
                constraint: "lo < hi, both finite",
            });
        }
        if bins == 0 {
            return Err(WorkloadError::InvalidConfig {
                parameter: "bins",
                constraint: ">= 1",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Adds one observation (NaN is ignored).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo) * bins as f64;
        let idx = (t.floor().max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Normalized densities (fractions summing to 1; zeros if empty).
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Renders a terminal bar chart (one row per bin), used by the figure
    /// binaries.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!(
                "{:>10.3} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c
            ));
        }
        out
    }
}

/// Sorts per-item counts descending and pairs them with 1-based ranks —
/// the popularity plot of Figure 4(b).
pub fn rank_frequency(counts: &[u64]) -> Vec<(usize, u64)> {
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i + 1, c))
        .collect()
}

/// Maximum-likelihood normal fit: `(mean, sd)`. Returns `None` for fewer
/// than two observations.
pub fn fit_normal(data: &[f64]) -> Option<(f64, f64)> {
    if data.len() < 2 {
        return None;
    }
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Some((mean, var.sqrt()))
}

/// Least-squares slope of `ln(y)` against `ln(x)`, skipping non-positive
/// values. For a Zipf-like rank-frequency table the slope estimates `-θ`;
/// for a Pareto CCDF it estimates `-α`. Returns `None` with fewer than two
/// usable points.
pub fn fit_loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|&(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Estimates the Pareto tail exponent `α` by regressing the empirical
/// log-CCDF on log-value. Returns `None` with fewer than two distinct
/// positive observations.
pub fn fit_pareto_alpha(data: &[f64]) -> Option<f64> {
    let mut xs: Vec<f64> = data.iter().copied().filter(|&x| x > 0.0).collect();
    if xs.len() < 2 {
        return None;
    }
    xs.sort_unstable_by(f64::total_cmp);
    let n = xs.len();
    // CCDF at each sorted value: P(X > x_i) ≈ (n - i - 1) / n; drop the
    // last point (CCDF 0).
    let points: Vec<(f64, f64)> = xs
        .iter()
        .enumerate()
        .take(n - 1)
        .map(|(i, &x)| (x, (n - i - 1) as f64 / n as f64))
        .collect();
    fit_loglog_slope(&points).map(|s| -s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rand_distr::{Distribution, Normal, Pareto};

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend([0.5, 1.5, 2.5, 2.6, 9.9, -5.0, 15.0, f64::NAN]);
        assert_eq!(h.total(), 7); // NaN ignored
        assert_eq!(h.counts(), &[3, 2, 0, 0, 2]); // -5.0 and 15.0 clamped into edge bins
        assert_eq!(h.bin_center(0), 1.0);
        let d = h.densities();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(h.ascii(20).lines().count() == 5);
    }

    #[test]
    fn histogram_validation() {
        assert!(Histogram::new(1.0, 1.0, 5).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NEG_INFINITY, 1.0, 3).is_err());
    }

    #[test]
    fn rank_frequency_sorts_descending() {
        let rf = rank_frequency(&[3, 9, 1, 9]);
        assert_eq!(rf, vec![(1, 9), (2, 9), (3, 3), (4, 1)]);
    }

    #[test]
    fn normal_fit_recovers_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let normal = Normal::new(5.0, 2.0).unwrap();
        let data: Vec<f64> = (0..50_000).map(|_| normal.sample(&mut rng)).collect();
        let (mean, sd) = fit_normal(&data).unwrap();
        assert!((mean - 5.0).abs() < 0.05);
        assert!((sd - 2.0).abs() < 0.05);
        assert_eq!(fit_normal(&[1.0]), None);
    }

    #[test]
    fn loglog_slope_recovers_zipf_exponent() {
        // Perfect Zipf with theta = 1.2.
        let points: Vec<(f64, f64)> = (1..=100)
            .map(|r| (r as f64, 1000.0 / (r as f64).powf(1.2)))
            .collect();
        let slope = fit_loglog_slope(&points).unwrap();
        assert!((slope + 1.2).abs() < 1e-9);
        assert_eq!(fit_loglog_slope(&[(1.0, 1.0)]), None);
        assert_eq!(fit_loglog_slope(&[(0.0, 1.0), (-1.0, 2.0)]), None);
    }

    #[test]
    fn pareto_fit_recovers_alpha() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pareto = Pareto::new(1.0, 1.5).unwrap();
        let data: Vec<f64> = (0..50_000).map(|_| pareto.sample(&mut rng)).collect();
        let alpha = fit_pareto_alpha(&data).unwrap();
        assert!((alpha - 1.5).abs() < 0.1, "alpha = {alpha}");
    }
}
