//! Workload generators reproducing the paper's experimental setup (§5).
//!
//! The evaluation workload is a stock-market scenario over the event space
//! `{bst, name, quote, volume}`:
//!
//! * [`ZipfLike`] — the rank-frequency distribution used to spread
//!   subscriptions over stubs and nodes, and interval lengths over ranks;
//! * [`IntervalDistribution`] — the paper's parametric generator for the
//!   `quote` and `volume` predicate intervals (wild-card / one-sided /
//!   bounded with Pareto length), with the Table 1 parameter presets;
//! * [`SubscriptionConfig`] / [`PlacedSubscription`] — generates the 1000
//!   subscriptions, placed on topology nodes with the 40/30/30 transit
//!   block split and Zipf-like stub/node popularity;
//! * [`PublicationModel`] / [`Modes`] — the 1-, 4- and 9-mode multivariate
//!   normal publication mixtures, with analytic cell masses for the
//!   clustering density function;
//! * [`ScaleConfig`] / [`ScaleWorkload`] — the million-subscriber scale
//!   population: Zipf-skewed picks from a pool of distinct rectangles,
//!   generated in fixed chunks so the result is thread-count independent;
//! * [`OpenLoopConfig`] / [`Arrival`] — open-loop bursty (on/off modulated
//!   Poisson) arrival schedules for the staged serving benchmark;
//! * [`nyse`] — a synthetic NYSE trading day used to regenerate the data
//!   analysis of §5.1 (Figures 4 and 5);
//! * [`stats`] — histograms, rank-frequency tables and simple distribution
//!   fits used by the figure harnesses.
//!
//! # Example
//!
//! ```
//! use pubsub_netsim::TransitStubConfig;
//! use pubsub_workload::{Modes, SubscriptionConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = TransitStubConfig::riabov().generate(1)?;
//! let subs = SubscriptionConfig::riabov().generate(&topo, 2)?;
//! assert_eq!(subs.len(), 1000);
//!
//! let model = Modes::Nine.model();
//! let mut rng = rand::thread_rng();
//! let event = model.sample(&mut rng);
//! assert_eq!(event.dims(), 4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
pub mod math;
pub mod nyse;
mod publications;
mod scale;
mod serving;
pub mod stats;
mod subscriptions;
mod zipf;

pub use error::WorkloadError;
pub use publications::{DimMixture, Modes, PublicationModel};
pub use scale::{ScaleConfig, ScaleWorkload, CHUNK};
pub use serving::{Arrival, OpenLoopConfig};
pub use subscriptions::{
    stock_space, IntervalDistribution, PlacedSubscription, SubscriptionConfig,
};
pub use zipf::ZipfLike;
