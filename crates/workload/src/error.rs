use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running workload generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the parameter.
        parameter: &'static str,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// Probabilities that must sum to at most (or exactly) one did not.
    BadProbabilities {
        /// Where the probabilities came from.
        context: &'static str,
    },
    /// The generator needs a topology feature that is absent (e.g. a block
    /// with no stubs).
    TopologyMismatch {
        /// Description of what was missing.
        what: &'static str,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig {
                parameter,
                constraint,
            } => write!(
                f,
                "invalid configuration: {parameter} must satisfy {constraint}"
            ),
            WorkloadError::BadProbabilities { context } => {
                write!(f, "probabilities for {context} are invalid")
            }
            WorkloadError::TopologyMismatch { what } => {
                write!(f, "topology is missing {what}")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render() {
        let e = WorkloadError::InvalidConfig {
            parameter: "count",
            constraint: ">= 1",
        };
        assert!(e.to_string().contains("count"));
    }
}
