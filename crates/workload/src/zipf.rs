use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::WorkloadError;

/// A Zipf-like distribution over ranks `0..n`: `P(rank i) ∝ 1/(i+1)^θ`.
///
/// The paper uses "Zipf-like" distributions (citing Knuth) for the number
/// of subscriptions per stub, the popularity of subscriber nodes, and
/// subscription interval lengths. `θ = 1` is classic Zipf; the exponent is
/// a parameter everywhere (DESIGN.md choice 9).
///
/// # Example
///
/// ```
/// use pubsub_workload::ZipfLike;
///
/// # fn main() -> Result<(), pubsub_workload::WorkloadError> {
/// let zipf = ZipfLike::new(10, 1.0)?;
/// let mut rng = rand::thread_rng();
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 10);
/// assert!(zipf.pmf(0) > zipf.pmf(9)); // rank 0 is the most popular
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ZipfLike {
    /// Cumulative probabilities; `cum[i]` = P(rank <= i).
    cum: Vec<f64>,
    theta: f64,
}

impl ZipfLike {
    /// Creates a Zipf-like distribution over `n` ranks with exponent
    /// `theta`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if `n == 0` or `theta` is
    /// negative or not finite.
    pub fn new(n: usize, theta: f64) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(WorkloadError::InvalidConfig {
                parameter: "n",
                constraint: "n >= 1",
            });
        }
        if !(theta >= 0.0 && theta.is_finite()) {
            return Err(WorkloadError::InvalidConfig {
                parameter: "theta",
                constraint: "0 <= theta < inf",
            });
        }
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cum.push(acc);
        }
        // Guard against floating drift so sampling never falls off the end.
        *cum.last_mut().expect("n >= 1") = 1.0;
        Ok(ZipfLike { cum, theta })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// `true` if there is exactly one rank (never zero by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of rank `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cum[0]
        } else {
            self.cum[i] - self.cum[i - 1]
        }
    }

    /// Draws a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cum >= u.
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn validation() {
        assert!(ZipfLike::new(0, 1.0).is_err());
        assert!(ZipfLike::new(5, -1.0).is_err());
        assert!(ZipfLike::new(5, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = ZipfLike::new(50, 1.0).unwrap();
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..50 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfLike::new(4, 0.0).unwrap();
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_zipf_ratios() {
        let z = ZipfLike::new(3, 1.0).unwrap();
        // Weights 1, 1/2, 1/3 -> normalized by 11/6.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
        assert!((z.pmf(0) / z.pmf(2) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = ZipfLike::new(10, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(i)).abs() < 0.01,
                "rank {i}: empirical {emp} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = ZipfLike::new(1, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
    }
}
