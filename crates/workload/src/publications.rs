//! Publication (event) generation: mixtures of multivariate normals (§5).
//!
//! The paper constructs its publication distributions from *independent
//! per-dimension mixtures* of normal components; the product of the
//! per-dimension mixtures gives 1, 4 (2×2) or 9 (3×3) joint modes — "hot
//! spots where events are published more frequently".

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use pubsub_geom::{Point, Rect};

use crate::math::normal_mass;
use crate::WorkloadError;

/// A one-dimensional mixture of normal components.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DimMixture {
    /// `(weight, mean, sd)` triples; weights sum to 1.
    components: Vec<(f64, f64, f64)>,
}

impl DimMixture {
    /// A single normal component `N(mean, sd)`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if `sd <= 0` or a value is
    /// not finite.
    pub fn normal(mean: f64, sd: f64) -> Result<Self, WorkloadError> {
        DimMixture::mixture(vec![(1.0, mean, sd)])
    }

    /// A weighted mixture of normal components.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::BadProbabilities`] unless the weights are
    /// positive and sum to 1 (±1e-9), and
    /// [`WorkloadError::InvalidConfig`] for non-positive standard
    /// deviations or non-finite parameters.
    pub fn mixture(components: Vec<(f64, f64, f64)>) -> Result<Self, WorkloadError> {
        if components.is_empty() {
            return Err(WorkloadError::InvalidConfig {
                parameter: "components",
                constraint: "at least one component",
            });
        }
        let mut total = 0.0;
        for &(w, mean, sd) in &components {
            if !(w > 0.0 && w.is_finite() && mean.is_finite()) {
                return Err(WorkloadError::BadProbabilities {
                    context: "mixture weights",
                });
            }
            if !(sd > 0.0 && sd.is_finite()) {
                return Err(WorkloadError::InvalidConfig {
                    parameter: "sd",
                    constraint: "sd > 0",
                });
            }
            total += w;
        }
        if (total - 1.0).abs() > 1e-9 {
            return Err(WorkloadError::BadProbabilities {
                context: "mixture weights",
            });
        }
        Ok(DimMixture { components })
    }

    /// The components as `(weight, mean, sd)` triples.
    pub fn components(&self) -> &[(f64, f64, f64)] {
        &self.components
    }

    /// Draws a value: pick a component by weight, then sample it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut u: f64 = rng.gen();
        for &(w, mean, sd) in &self.components {
            if u < w {
                let normal = Normal::new(mean, sd).expect("validated at construction");
                return normal.sample(rng);
            }
            u -= w;
        }
        // Floating drift: fall back to the last component.
        let &(_, mean, sd) = self.components.last().expect("non-empty");
        Normal::new(mean, sd)
            .expect("validated at construction")
            .sample(rng)
    }

    /// Probability mass assigned to the half-open interval `(lo, hi]`.
    pub fn mass(&self, lo: f64, hi: f64) -> f64 {
        self.components
            .iter()
            .map(|&(w, mean, sd)| w * normal_mass(lo, hi, mean, sd))
            .sum()
    }
}

/// A publication model: independent per-dimension mixtures whose product
/// forms the joint event distribution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PublicationModel {
    dims: Vec<DimMixture>,
}

impl PublicationModel {
    /// Creates a model from per-dimension mixtures.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if `dims` is empty.
    pub fn new(dims: Vec<DimMixture>) -> Result<Self, WorkloadError> {
        if dims.is_empty() {
            return Err(WorkloadError::InvalidConfig {
                parameter: "dims",
                constraint: "at least one dimension",
            });
        }
        Ok(PublicationModel { dims })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// The mixture along dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn dim(&self, d: usize) -> &DimMixture {
        &self.dims[d]
    }

    /// Draws one publication event.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(self.dims.iter().map(|m| m.sample(rng)).collect())
            .expect("normal samples are finite")
    }

    /// The exact probability mass the model assigns to a rectangle — the
    /// publication density `p_p(·)` used by the clustering algorithms.
    ///
    /// # Panics
    ///
    /// Panics (debug) on dimensionality mismatch.
    pub fn mass(&self, rect: &Rect) -> f64 {
        debug_assert_eq!(rect.dims(), self.dims.len());
        self.dims
            .iter()
            .zip(rect.sides())
            .map(|(m, side)| m.mass(side.lo(), side.hi()))
            .product()
    }
}

/// The paper's three publication scenarios (§5): mixtures with 1, 4 and 9
/// hot spots.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Modes {
    /// Single multivariate normal.
    One,
    /// 2×2 modes (dimensions 2 and 3 are two-component mixtures).
    Four,
    /// 3×3 modes (dimensions 2 and 3 are three-component mixtures).
    Nine,
}

impl Modes {
    /// All three scenarios, in paper order.
    pub const ALL: [Modes; 3] = [Modes::One, Modes::Four, Modes::Nine];

    /// Number of joint modes.
    pub fn mode_count(&self) -> usize {
        match self {
            Modes::One => 1,
            Modes::Four => 4,
            Modes::Nine => 9,
        }
    }

    /// Builds the publication model with the paper's parameters.
    ///
    /// Single mode: `N(1,1), N(10,6), N(9,2), N(9,6)`. The 4-mode scenario
    /// splits dimensions 2 and 3 into two components each; the 9-mode
    /// scenario into three each (the paper's §5 text lists "third/fourth"
    /// twice — we read the two 3-way mixtures as dimensions 2 and 3,
    /// matching the 4-mode construction; DESIGN.md choice 6).
    pub fn model(&self) -> PublicationModel {
        let dim1 = DimMixture::normal(1.0, 1.0).expect("static parameters");
        let dim4 = DimMixture::normal(9.0, 6.0).expect("static parameters");
        let (dim2, dim3) = match self {
            Modes::One => (
                DimMixture::normal(10.0, 6.0).expect("static parameters"),
                DimMixture::normal(9.0, 2.0).expect("static parameters"),
            ),
            Modes::Four => (
                DimMixture::mixture(vec![(0.5, 12.0, 3.0), (0.5, 6.0, 2.0)])
                    .expect("static parameters"),
                DimMixture::mixture(vec![(0.5, 4.0, 2.0), (0.5, 16.0, 2.0)])
                    .expect("static parameters"),
            ),
            Modes::Nine => (
                DimMixture::mixture(vec![(0.3, 4.0, 3.0), (0.4, 11.0, 3.0), (0.3, 18.0, 3.0)])
                    .expect("static parameters"),
                DimMixture::mixture(vec![(0.3, 4.0, 3.0), (0.4, 9.0, 3.0), (0.3, 16.0, 3.0)])
                    .expect("static parameters"),
            ),
        };
        PublicationModel::new(vec![dim1, dim2, dim3, dim4]).expect("four dimensions")
    }
}

impl std::fmt::Display for Modes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} mode(s)", self.mode_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mixture_validation() {
        assert!(DimMixture::mixture(vec![]).is_err());
        assert!(DimMixture::mixture(vec![(0.5, 0.0, 1.0)]).is_err()); // sums to 0.5
        assert!(DimMixture::mixture(vec![(1.0, 0.0, 0.0)]).is_err()); // sd 0
        assert!(DimMixture::mixture(vec![(-1.0, 0.0, 1.0), (2.0, 0.0, 1.0)]).is_err());
        assert!(DimMixture::normal(5.0, 2.0).is_ok());
    }

    #[test]
    fn mass_of_whole_line_is_one() {
        for modes in Modes::ALL {
            let m = modes.model();
            let all = Rect::from_corners(&[-1e6; 4], &[1e6; 4]).unwrap();
            assert!((m.mass(&all) - 1.0).abs() < 1e-6, "{modes}");
        }
    }

    #[test]
    fn empirical_mass_matches_analytic() {
        let model = Modes::Four.model();
        let cell = Rect::from_corners(&[0.0, 4.0, 2.0, 5.0], &[2.0, 8.0, 6.0, 13.0]).unwrap();
        let analytic = model.mass(&cell);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let n = 100_000;
        let mut hits = 0usize;
        for _ in 0..n {
            if cell.contains_point(&model.sample(&mut rng)) {
                hits += 1;
            }
        }
        let empirical = hits as f64 / n as f64;
        assert!(
            (empirical - analytic).abs() < 0.01,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn sample_means_track_components() {
        let model = Modes::One.model();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let mut sums = [0.0f64; 4];
        for _ in 0..n {
            let p = model.sample(&mut rng);
            for (d, sum) in sums.iter_mut().enumerate() {
                *sum += p.coord(d);
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / n as f64).collect();
        for (d, want) in [(0usize, 1.0f64), (1, 10.0), (2, 9.0), (3, 9.0)] {
            assert!(
                (means[d] - want).abs() < 0.15,
                "dim {d}: {} vs {want}",
                means[d]
            );
        }
    }

    #[test]
    fn nine_mode_dim2_is_trimodal() {
        let model = Modes::Nine.model();
        assert_eq!(model.dim(1).components().len(), 3);
        assert_eq!(model.dim(2).components().len(), 3);
        assert_eq!(model.dim(0).components().len(), 1);
        assert_eq!(model.dim(3).components().len(), 1);
        assert_eq!(Modes::Nine.mode_count(), 9);
        assert_eq!(Modes::Nine.to_string(), "9 mode(s)");
    }

    #[test]
    fn mass_is_additive_over_adjacent_cells() {
        let model = Modes::Nine.model();
        let left = Rect::from_corners(&[0.0, 0.0, 0.0, 0.0], &[1.0, 10.0, 10.0, 10.0]).unwrap();
        let right = Rect::from_corners(&[1.0, 0.0, 0.0, 0.0], &[2.0, 10.0, 10.0, 10.0]).unwrap();
        let both = Rect::from_corners(&[0.0, 0.0, 0.0, 0.0], &[2.0, 10.0, 10.0, 10.0]).unwrap();
        assert!((model.mass(&left) + model.mass(&right) - model.mass(&both)).abs() < 1e-9);
    }
}
