//! Synthetic NYSE trading day (substitute for §5.1's proprietary data).
//!
//! The paper analyzes NYSE trades of 1999-09-24 to justify its workload
//! distributions: normalized prices are approximately normal around the
//! opening price (Figure 4a), per-stock trade counts follow a Zipf-like
//! popularity curve (Figure 4b), and trade amounts have a Pareto tail
//! (Figure 4c); the three most-traded stocks show the same shapes
//! individually (Figure 5). We cannot redistribute that feed, so this
//! module *generates* a trading day from exactly those distribution
//! families (see DESIGN.md, substitutions): re-running the paper's
//! analysis on the synthetic day reproduces the figures' shapes.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal, Pareto};
use serde::{Deserialize, Serialize};

use pubsub_geom::Point;

use crate::{WorkloadError, ZipfLike};

/// One executed trade.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trade {
    /// Stock index in `0..stocks`.
    pub stock: usize,
    /// Price normalized by the stock's opening price (≈ 1.0).
    pub price: f64,
    /// Dollar amount of the trade.
    pub amount: f64,
}

/// Configuration of the synthetic trading day. Passive data: public fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NyseConfig {
    /// Number of distinct stocks.
    pub stocks: usize,
    /// Total number of trades in the day.
    pub trades: usize,
    /// Zipf exponent of stock popularity (trades per stock).
    pub popularity_theta: f64,
    /// Mean intraday standard deviation of the normalized price.
    pub price_sd: f64,
    /// Pareto scale (minimum) of trade amounts, in dollars.
    pub amount_scale: f64,
    /// Pareto shape `α` of trade amounts.
    pub amount_shape: f64,
}

impl NyseConfig {
    /// A day sized like the paper's: a few thousand listed stocks, a few
    /// hundred thousand trades.
    pub fn riabov_day() -> Self {
        NyseConfig {
            stocks: 3000,
            trades: 300_000,
            popularity_theta: 1.0,
            price_sd: 0.04,
            amount_scale: 1_000.0,
            amount_shape: 1.2,
        }
    }

    /// A small day for fast tests.
    pub fn tiny() -> Self {
        NyseConfig {
            stocks: 50,
            trades: 5_000,
            ..NyseConfig::riabov_day()
        }
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        let checks = [
            ("stocks", self.stocks >= 1),
            ("trades", self.trades >= 1),
            (
                "popularity_theta",
                self.popularity_theta >= 0.0 && self.popularity_theta.is_finite(),
            ),
            ("price_sd", self.price_sd > 0.0 && self.price_sd.is_finite()),
            (
                "amount_scale",
                self.amount_scale > 0.0 && self.amount_scale.is_finite(),
            ),
            (
                "amount_shape",
                self.amount_shape > 0.0 && self.amount_shape.is_finite(),
            ),
        ];
        for (parameter, ok) in checks {
            if !ok {
                return Err(WorkloadError::InvalidConfig {
                    parameter,
                    constraint: "positive and finite",
                });
            }
        }
        Ok(())
    }

    /// Generates the trading day deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for out-of-range
    /// parameters.
    pub fn generate(&self, seed: u64) -> Result<TradingDay, WorkloadError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let popularity = ZipfLike::new(self.stocks, self.popularity_theta)?;
        // Per-stock price behaviour: mean near the open (normalized 1.0),
        // sd varying across stocks so Figure 5's per-stock bells differ.
        let stock_params: Vec<(f64, f64)> = (0..self.stocks)
            .map(|_| {
                let mean = 1.0 + rng.gen_range(-0.02..0.02);
                let sd = self.price_sd * rng.gen_range(0.5..1.5);
                (mean, sd)
            })
            .collect();
        let amount_dist =
            Pareto::new(self.amount_scale, self.amount_shape).expect("validated parameters");
        let mut trades = Vec::with_capacity(self.trades);
        for _ in 0..self.trades {
            let stock = popularity.sample(&mut rng);
            let (mean, sd) = stock_params[stock];
            let price = Normal::new(mean, sd).expect("validated").sample(&mut rng);
            let amount: f64 = amount_dist.sample(&mut rng);
            trades.push(Trade {
                stock,
                price,
                amount,
            });
        }
        Ok(TradingDay {
            stocks: self.stocks,
            trades,
        })
    }
}

/// A generated trading day.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TradingDay {
    stocks: usize,
    trades: Vec<Trade>,
}

impl TradingDay {
    /// All trades in generation order.
    pub fn trades(&self) -> &[Trade] {
        &self.trades
    }

    /// Number of distinct stocks configured.
    pub fn stock_count(&self) -> usize {
        self.stocks
    }

    /// Trades per stock, indexed by stock id.
    pub fn trades_per_stock(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.stocks];
        for t in &self.trades {
            counts[t.stock] += 1;
        }
        counts
    }

    /// The `k` most-traded stocks, most popular first.
    pub fn top_stocks(&self, k: usize) -> Vec<usize> {
        let counts = self.trades_per_stock();
        let mut order: Vec<usize> = (0..self.stocks).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(counts[s]));
        order.truncate(k);
        order
    }

    /// Normalized prices of every trade.
    pub fn all_prices(&self) -> impl Iterator<Item = f64> + '_ {
        self.trades.iter().map(|t| t.price)
    }

    /// Dollar amounts of every trade.
    pub fn all_amounts(&self) -> impl Iterator<Item = f64> + '_ {
        self.trades.iter().map(|t| t.amount)
    }

    /// Normalized prices of one stock's trades.
    pub fn prices_of(&self, stock: usize) -> Vec<f64> {
        self.trades
            .iter()
            .filter(|t| t.stock == stock)
            .map(|t| t.price)
            .collect()
    }

    /// Dollar amounts of one stock's trades.
    pub fn amounts_of(&self, stock: usize) -> Vec<f64> {
        self.trades
            .iter()
            .filter(|t| t.stock == stock)
            .map(|t| t.amount)
            .collect()
    }

    /// Replays the trading day as a publication stream in the
    /// `{bst, name, quote, volume}` event space (see [`ReplayConfig`]) —
    /// the §5.1 data driving the simulation directly instead of merely
    /// justifying its parametric distributions.
    pub fn replay_events(&self, config: &ReplayConfig, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Popularity rank per stock (rank 0 = most traded), so the name
        // mapping matches the Zipf-by-popularity structure subscriptions
        // assume.
        let counts = self.trades_per_stock();
        let mut by_popularity: Vec<usize> = (0..self.stocks).collect();
        by_popularity.sort_by_key(|&s| std::cmp::Reverse(counts[s]));
        let mut rank_of = vec![0usize; self.stocks];
        for (rank, &s) in by_popularity.iter().enumerate() {
            rank_of[s] = rank;
        }
        let (name_lo, name_hi) = config.name_range;
        self.trades
            .iter()
            .map(|t| {
                let u: f64 = rng.gen();
                let bst = if u < config.bst_probs[0] {
                    0.0
                } else if u < config.bst_probs[0] + config.bst_probs[1] {
                    1.0
                } else {
                    2.0
                };
                let name = name_lo
                    + (rank_of[t.stock] as f64 / self.stocks.max(1) as f64) * (name_hi - name_lo);
                let quote = config.quote_center + (t.price - 1.0) * config.quote_gain;
                let volume = t.amount.max(1.0).log10() * config.volume_log_gain;
                Point::new(vec![bst, name, quote, volume]).expect("finite mapping")
            })
            .collect()
    }
}

/// How [`TradingDay::replay_events`] maps trades into the event space.
/// Passive data: public fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Probabilities of labeling a trade B, S or T (the feed itself has
    /// no side information; the paper's workload uses 0.4/0.4/0.2).
    pub bst_probs: [f64; 3],
    /// Popularity rank 0..1 is mapped linearly into this `name` range
    /// (the subscription generator centers block interests at 3/10/17).
    pub name_range: (f64, f64),
    /// `quote = quote_center + (normalized_price − 1) · quote_gain`.
    pub quote_center: f64,
    /// Gain applied to the normalized price deviation.
    pub quote_gain: f64,
    /// `volume = log10(amount) · volume_log_gain`.
    pub volume_log_gain: f64,
}

impl Default for ReplayConfig {
    /// Maps into the same ranges the parametric §5 workload occupies:
    /// names in (0, 20], quotes ~ N(9, 2)-ish, volumes around 9.
    fn default() -> Self {
        ReplayConfig {
            bst_probs: [0.4, 0.4, 0.2],
            name_range: (0.0, 20.0),
            quote_center: 9.0,
            quote_gain: 50.0,
            volume_log_gain: 2.75,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn determinism_and_size() {
        let cfg = NyseConfig::tiny();
        let a = cfg.generate(1).unwrap();
        let b = cfg.generate(1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.trades().len(), 5_000);
        assert_eq!(a.stock_count(), 50);
    }

    #[test]
    fn prices_look_normal_around_one() {
        let day = NyseConfig::tiny().generate(2).unwrap();
        let prices: Vec<f64> = day.all_prices().collect();
        let (mean, sd) = stats::fit_normal(&prices).unwrap();
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!(sd > 0.01 && sd < 0.1, "sd {sd}");
    }

    #[test]
    fn popularity_is_zipf_like() {
        let day = NyseConfig::tiny().generate(3).unwrap();
        let rf = stats::rank_frequency(&day.trades_per_stock());
        let points: Vec<(f64, f64)> = rf
            .iter()
            .take(20)
            .map(|&(r, c)| (r as f64, c as f64))
            .collect();
        let slope = stats::fit_loglog_slope(&points).unwrap();
        assert!(
            (-1.4..=-0.6).contains(&slope),
            "zipf slope {slope} too far from -1"
        );
    }

    #[test]
    fn amounts_have_pareto_tail() {
        let day = NyseConfig::tiny().generate(4).unwrap();
        let amounts: Vec<f64> = day.all_amounts().collect();
        let alpha = stats::fit_pareto_alpha(&amounts).unwrap();
        assert!((alpha - 1.2).abs() < 0.2, "alpha {alpha}");
        assert!(amounts.iter().all(|&a| a >= 1000.0));
    }

    #[test]
    fn top_stocks_are_sorted_by_count() {
        let day = NyseConfig::tiny().generate(5).unwrap();
        let counts = day.trades_per_stock();
        let top = day.top_stocks(3);
        assert_eq!(top.len(), 3);
        assert!(counts[top[0]] >= counts[top[1]]);
        assert!(counts[top[1]] >= counts[top[2]]);
        // Per-stock accessors agree with counts.
        assert_eq!(day.prices_of(top[0]).len() as u64, counts[top[0]]);
        assert_eq!(day.amounts_of(top[0]).len() as u64, counts[top[0]]);
    }

    #[test]
    fn replay_maps_into_the_stock_space() {
        let day = NyseConfig::tiny().generate(6).unwrap();
        let events = day.replay_events(&ReplayConfig::default(), 7);
        assert_eq!(events.len(), day.trades().len());
        let space = crate::stock_space();
        let mut inside = 0usize;
        let mut bst_counts = [0usize; 3];
        for e in &events {
            assert_eq!(e.dims(), 4);
            if space.contains(e) {
                inside += 1;
            }
            bst_counts[e.coord(0) as usize] += 1;
        }
        // Essentially all replayed events land in the clamping space.
        assert!(
            inside as f64 / events.len() as f64 > 0.95,
            "only {inside}/{} inside",
            events.len()
        );
        // The bst labeling follows the configured probabilities.
        let f = |c: usize| c as f64 / events.len() as f64;
        assert!((f(bst_counts[0]) - 0.4).abs() < 0.05);
        assert!((f(bst_counts[2]) - 0.2).abs() < 0.05);
        // Determinism.
        assert_eq!(events, day.replay_events(&ReplayConfig::default(), 7));
    }

    #[test]
    fn replay_quote_tracks_price_and_name_tracks_popularity() {
        let day = NyseConfig::tiny().generate(8).unwrap();
        let cfg = ReplayConfig::default();
        let events = day.replay_events(&cfg, 9);
        // The most popular stock maps to the lowest names.
        let top = day.top_stocks(1)[0];
        let mut top_names = Vec::new();
        for (t, e) in day.trades().iter().zip(&events) {
            if t.stock == top {
                top_names.push(e.coord(1));
            }
            // quote reconstruction: e[2] = 9 + (price-1)*gain.
            let price_back = (e.coord(2) - cfg.quote_center) / cfg.quote_gain + 1.0;
            assert!((price_back - t.price).abs() < 1e-9);
        }
        assert!(top_names.iter().all(|&n| n < 1.0));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = NyseConfig::tiny();
        cfg.stocks = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = NyseConfig::tiny();
        cfg.amount_shape = 0.0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = NyseConfig::tiny();
        cfg.price_sd = -1.0;
        assert!(cfg.generate(0).is_err());
    }
}
