//! Subscription generation: the paper's stock-market workload (§5).
//!
//! 1000 interval subscriptions of the form `{bst, name, quote, volume}`
//! are generated and placed on topology nodes: a 40/30/30 split across the
//! three transit blocks, a Zipf-like distribution over the stubs of each
//! block, and another Zipf-like distribution over the nodes of each stub.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal, Pareto};
use serde::{Deserialize, Serialize};

use pubsub_geom::{Interval, Rect, Space};
use pubsub_netsim::{NodeId, Topology};

use crate::{WorkloadError, ZipfLike};

/// The `{bst, name, quote, volume}` event space with finite bounds wide
/// enough to hold essentially all of the paper's publication mass
/// (unbounded subscription predicates are clamped to these bounds before
/// indexing).
pub fn stock_space() -> Space {
    Space::new(
        vec!["bst".into(), "name".into(), "quote".into(), "volume".into()],
        Rect::from_corners(&[-2.0, -15.0, -15.0, -15.0], &[4.0, 35.0, 35.0, 35.0])
            .expect("static bounds"),
    )
    .expect("static names")
}

/// The paper's parametric distribution for one-dimensional predicate
/// intervals (§5): wild-card with probability `q0`, a lower bound
/// `[n, +∞)` with probability `q1`, an upper bound `(-∞, n]` with
/// probability `q2`, otherwise a bounded interval with normal center and
/// Pareto length.
///
/// Passive configuration data: fields are public.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntervalDistribution {
    /// Probability of a wild-card (`*`) predicate.
    pub q0: f64,
    /// Probability of a lower-bound predicate `[n, +∞)`, `n ~ N(μ1, σ1)`.
    pub q1: f64,
    /// Probability of an upper-bound predicate `(-∞, n]`, `n ~ N(μ2, σ2)`.
    pub q2: f64,
    /// Mean and sd of the lower-bound cut point.
    pub mu1: f64,
    /// Standard deviation of the lower-bound cut point.
    pub sigma1: f64,
    /// Mean of the upper-bound cut point.
    pub mu2: f64,
    /// Standard deviation of the upper-bound cut point.
    pub sigma2: f64,
    /// Mean of a bounded interval's center.
    pub mu3: f64,
    /// Standard deviation of a bounded interval's center.
    pub sigma3: f64,
    /// Pareto scale `c` of a bounded interval's length.
    pub pareto_scale: f64,
    /// Pareto shape `α` of a bounded interval's length.
    pub pareto_shape: f64,
}

impl IntervalDistribution {
    /// Table 1, `price` row: `q0=0.15, q1=q2=0.1, (μ,σ) = (9,1),(9,1),(9,2)`,
    /// length `Pareto(4, 1)`.
    pub fn price() -> Self {
        IntervalDistribution {
            q0: 0.15,
            q1: 0.1,
            q2: 0.1,
            mu1: 9.0,
            sigma1: 1.0,
            mu2: 9.0,
            sigma2: 1.0,
            mu3: 9.0,
            sigma3: 2.0,
            pareto_scale: 4.0,
            pareto_shape: 1.0,
        }
    }

    /// Table 1, `volume` row: identical to `price` except `q0 = 0.35`.
    pub fn volume() -> Self {
        IntervalDistribution {
            q0: 0.35,
            ..IntervalDistribution::price()
        }
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        let total = self.q0 + self.q1 + self.q2;
        if !(self.q0 >= 0.0 && self.q1 >= 0.0 && self.q2 >= 0.0 && total <= 1.0 + 1e-9) {
            return Err(WorkloadError::BadProbabilities {
                context: "interval distribution q0/q1/q2",
            });
        }
        for (p, v) in [
            ("sigma1", self.sigma1),
            ("sigma2", self.sigma2),
            ("sigma3", self.sigma3),
            ("pareto_scale", self.pareto_scale),
            ("pareto_shape", self.pareto_shape),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(WorkloadError::InvalidConfig {
                    parameter: match p {
                        "sigma1" => "sigma1",
                        "sigma2" => "sigma2",
                        "sigma3" => "sigma3",
                        "pareto_scale" => "pareto_scale",
                        _ => "pareto_shape",
                    },
                    constraint: "> 0 and finite",
                });
            }
        }
        Ok(())
    }

    /// Draws one predicate interval (possibly unbounded).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interval {
        let u: f64 = rng.gen();
        if u < self.q0 {
            Interval::unbounded()
        } else if u < self.q0 + self.q1 {
            let n = Normal::new(self.mu1, self.sigma1)
                .expect("validated")
                .sample(rng);
            Interval::at_least(n)
        } else if u < self.q0 + self.q1 + self.q2 {
            let n = Normal::new(self.mu2, self.sigma2)
                .expect("validated")
                .sample(rng);
            Interval::at_most(n)
        } else {
            let center = Normal::new(self.mu3, self.sigma3)
                .expect("validated")
                .sample(rng);
            let len = Pareto::new(self.pareto_scale, self.pareto_shape)
                .expect("validated")
                .sample(rng);
            Interval::new(center - len / 2.0, center + len / 2.0).expect("ordered bounds")
        }
    }
}

/// A subscription placed on a topology node. Passive data: public fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlacedSubscription {
    /// The subscriber node.
    pub node: NodeId,
    /// The subscription rectangle in `{bst, name, quote, volume}` order
    /// (may contain unbounded sides; clamp with [`stock_space`] before
    /// indexing).
    pub rect: Rect,
}

/// Configuration of the subscription generator. Passive configuration
/// data: fields are public.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubscriptionConfig {
    /// Total subscriptions to generate (the paper uses 1000).
    pub count: usize,
    /// Share of subscriptions per transit block (the paper uses
    /// `{40%, 30%, 30%}`); must have one entry per topology block and sum
    /// to 1.
    pub block_shares: Vec<f64>,
    /// Zipf exponent for spreading subscriptions over a block's stubs.
    pub stub_zipf_theta: f64,
    /// Zipf exponent for spreading subscriptions over a stub's nodes.
    pub node_zipf_theta: f64,
    /// Probabilities of `bst` taking the values B, S, T (the paper uses
    /// 0.4 / 0.4 / 0.2).
    pub bst_probs: [f64; 3],
    /// Per-block means of the `name` interval center (the paper uses 3,
    /// 10 and 17).
    pub name_means: Vec<f64>,
    /// Standard deviation of the `name` center (the paper uses 4).
    pub name_sd: f64,
    /// `name` interval length is `1 + rank` with `rank` Zipf-like over
    /// `0..max`: `(max, theta)`.
    pub name_length_zipf: (usize, f64),
    /// Interval distribution of the `quote` dimension.
    pub quote: IntervalDistribution,
    /// Interval distribution of the `volume` dimension.
    pub volume: IntervalDistribution,
}

impl SubscriptionConfig {
    /// The paper's §5 workload: 1000 subscriptions, 40/30/30 blocks, Zipf
    /// stub and node popularity, Table 1 interval parameters.
    pub fn riabov() -> Self {
        SubscriptionConfig {
            count: 1000,
            block_shares: vec![0.4, 0.3, 0.3],
            stub_zipf_theta: 1.0,
            node_zipf_theta: 1.0,
            bst_probs: [0.4, 0.4, 0.2],
            name_means: vec![3.0, 10.0, 17.0],
            name_sd: 4.0,
            name_length_zipf: (10, 1.0),
            quote: IntervalDistribution::price(),
            volume: IntervalDistribution::volume(),
        }
    }

    pub(crate) fn validate(&self, topo: &Topology) -> Result<(), WorkloadError> {
        if self.count == 0 {
            return Err(WorkloadError::InvalidConfig {
                parameter: "count",
                constraint: ">= 1",
            });
        }
        let share_sum: f64 = self.block_shares.iter().sum();
        if self.block_shares.iter().any(|&s| s < 0.0) || (share_sum - 1.0).abs() > 1e-9 {
            return Err(WorkloadError::BadProbabilities {
                context: "block shares",
            });
        }
        let bst_sum: f64 = self.bst_probs.iter().sum();
        if self.bst_probs.iter().any(|&p| p < 0.0) || (bst_sum - 1.0).abs() > 1e-9 {
            return Err(WorkloadError::BadProbabilities {
                context: "bst probabilities",
            });
        }
        if self.name_means.len() != self.block_shares.len() {
            return Err(WorkloadError::InvalidConfig {
                parameter: "name_means",
                constraint: "one mean per block share",
            });
        }
        if !(self.name_sd > 0.0 && self.name_sd.is_finite()) {
            return Err(WorkloadError::InvalidConfig {
                parameter: "name_sd",
                constraint: "> 0",
            });
        }
        if self.name_length_zipf.0 == 0 {
            return Err(WorkloadError::InvalidConfig {
                parameter: "name_length_zipf.0",
                constraint: ">= 1",
            });
        }
        self.quote.validate()?;
        self.volume.validate()?;
        let blocks = topo
            .stubs()
            .iter()
            .map(|s| s.block)
            .max()
            .map_or(0, |b| b + 1);
        if blocks < self.block_shares.len() {
            return Err(WorkloadError::TopologyMismatch {
                what: "a transit block for every block share",
            });
        }
        for b in 0..self.block_shares.len() {
            if topo.stubs_of_block(b).is_empty() {
                return Err(WorkloadError::TopologyMismatch {
                    what: "at least one stub per block",
                });
            }
        }
        Ok(())
    }

    /// Generates `count` subscriptions placed on `topo`, deterministically
    /// from `seed`.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (see [`WorkloadError`]) and
    /// [`WorkloadError::TopologyMismatch`] if the topology lacks the
    /// blocks/stubs the shares refer to.
    pub fn generate(
        &self,
        topo: &Topology,
        seed: u64,
    ) -> Result<Vec<PlacedSubscription>, WorkloadError> {
        self.validate(topo)?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let picker = NodePicker::new(self, topo)?;
        let name_len_zipf = ZipfLike::new(self.name_length_zipf.0, self.name_length_zipf.1)?;

        let mut out = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let (block, node) = picker.pick(topo, &mut rng);
            let rect = self.sample_rect(block, &name_len_zipf, &mut rng);
            out.push(PlacedSubscription { node, rect });
        }
        Ok(out)
    }

    /// Draws one subscription rectangle for a subscriber in `block`:
    /// the discrete `bst` value, a block-mean `name` interval with
    /// Zipf-like length, and Table 1 `quote`/`volume` intervals.
    pub(crate) fn sample_rect<R: Rng + ?Sized>(
        &self,
        block: usize,
        name_len_zipf: &ZipfLike,
        rng: &mut R,
    ) -> Rect {
        let bst = categorical(&self.bst_probs, rng) as f64;
        let bst_iv = Interval::new(bst - 1.0, bst).expect("ordered");

        let name_center = Normal::new(self.name_means[block], self.name_sd)
            .expect("validated")
            .sample(rng);
        let name_len = (name_len_zipf.sample(rng) + 1) as f64;
        let name_iv = Interval::new(name_center - name_len / 2.0, name_center + name_len / 2.0)
            .expect("ordered");

        let quote_iv = self.quote.sample(rng);
        let volume_iv = self.volume.sample(rng);

        Rect::new(vec![bst_iv, name_iv, quote_iv, volume_iv]).expect("four dimensions")
    }
}

/// The placement popularity structure of the §5 workload: block shares,
/// a Zipf-like distribution over each block's stubs and another over
/// each stub's nodes. Shared by [`SubscriptionConfig::generate`] and the
/// scale generator so both place subscribers identically.
pub(crate) struct NodePicker {
    block_shares: Vec<f64>,
    stub_zipfs: Vec<(Vec<usize>, ZipfLike)>,
    node_zipfs: Vec<ZipfLike>,
}

impl NodePicker {
    pub(crate) fn new(cfg: &SubscriptionConfig, topo: &Topology) -> Result<Self, WorkloadError> {
        let blocks = cfg.block_shares.len();
        let stub_zipfs: Vec<(Vec<usize>, ZipfLike)> = (0..blocks)
            .map(|b| {
                let stubs = topo.stubs_of_block(b);
                let z = ZipfLike::new(stubs.len(), cfg.stub_zipf_theta)?;
                Ok((stubs, z))
            })
            .collect::<Result<_, WorkloadError>>()?;
        let node_zipfs: Vec<ZipfLike> = topo
            .stubs()
            .iter()
            .map(|s| ZipfLike::new(s.nodes.len(), cfg.node_zipf_theta))
            .collect::<Result<_, WorkloadError>>()?;
        Ok(NodePicker {
            block_shares: cfg.block_shares.clone(),
            stub_zipfs,
            node_zipfs,
        })
    }

    /// Draws one subscriber: the transit block and the node.
    pub(crate) fn pick<R: Rng + ?Sized>(&self, topo: &Topology, rng: &mut R) -> (usize, NodeId) {
        let block = categorical(&self.block_shares, rng);
        let (stubs, stub_zipf) = &self.stub_zipfs[block];
        let stub = stubs[stub_zipf.sample(rng)];
        let nodes = &topo.stubs()[stub].nodes;
        (block, nodes[self.node_zipfs[stub].sample(rng)])
    }
}

pub(crate) fn categorical<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let mut u: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_netsim::TransitStubConfig;

    fn topo() -> Topology {
        TransitStubConfig::riabov().generate(3).unwrap()
    }

    #[test]
    fn generates_requested_count_deterministically() {
        let t = topo();
        let cfg = SubscriptionConfig::riabov();
        let a = cfg.generate(&t, 42).unwrap();
        let b = cfg.generate(&t, 42).unwrap();
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        let c = cfg.generate(&t, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn block_shares_are_respected() {
        let t = topo();
        let subs = SubscriptionConfig::riabov().generate(&t, 7).unwrap();
        let mut counts = [0usize; 3];
        for s in &subs {
            counts[t.block_of(s.node)] += 1;
        }
        let shares: Vec<f64> = counts
            .iter()
            .map(|&c| c as f64 / subs.len() as f64)
            .collect();
        assert!((shares[0] - 0.4).abs() < 0.05, "{shares:?}");
        assert!((shares[1] - 0.3).abs() < 0.05, "{shares:?}");
        assert!((shares[2] - 0.3).abs() < 0.05, "{shares:?}");
    }

    #[test]
    fn subscribers_are_stub_nodes() {
        let t = topo();
        let subs = SubscriptionConfig::riabov().generate(&t, 8).unwrap();
        for s in &subs {
            assert!(matches!(
                t.role(s.node),
                pubsub_netsim::NodeRole::Stub { .. }
            ));
        }
    }

    #[test]
    fn name_centers_track_block_means() {
        let t = topo();
        let subs = SubscriptionConfig::riabov().generate(&t, 11).unwrap();
        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for s in &subs {
            let b = t.block_of(s.node);
            sums[b] += s.rect.side(1).center();
            counts[b] += 1;
        }
        for (b, want) in [(0usize, 3.0f64), (1, 10.0), (2, 17.0)] {
            let mean = sums[b] / counts[b] as f64;
            assert!((mean - want).abs() < 1.0, "block {b}: {mean} vs {want}");
        }
    }

    #[test]
    fn interval_kind_frequencies_match_q_parameters() {
        let dist = IntervalDistribution::volume();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let (mut wild, mut lower, mut upper, mut bounded) = (0, 0, 0, 0);
        for _ in 0..n {
            let iv = dist.sample(&mut rng);
            match (iv.lo().is_finite(), iv.hi().is_finite()) {
                (false, false) => wild += 1,
                (true, false) => lower += 1,
                (false, true) => upper += 1,
                (true, true) => bounded += 1,
            }
        }
        let f = |c: i32| f64::from(c) / n as f64;
        assert!((f(wild) - 0.35).abs() < 0.01);
        assert!((f(lower) - 0.10).abs() < 0.01);
        assert!((f(upper) - 0.10).abs() < 0.01);
        assert!((f(bounded) - 0.45).abs() < 0.01);
    }

    #[test]
    fn bst_interval_matches_discrete_value() {
        let t = topo();
        let subs = SubscriptionConfig::riabov().generate(&t, 13).unwrap();
        let mut counts = [0usize; 3];
        for s in &subs {
            let side = s.rect.side(0);
            let v = side.hi();
            assert!(v == 0.0 || v == 1.0 || v == 2.0);
            assert_eq!(side.length(), 1.0);
            counts[v as usize] += 1;
        }
        let f = |c: usize| c as f64 / subs.len() as f64;
        assert!((f(counts[0]) - 0.4).abs() < 0.05);
        assert!((f(counts[1]) - 0.4).abs() < 0.05);
        assert!((f(counts[2]) - 0.2).abs() < 0.05);
    }

    #[test]
    fn invalid_configs_rejected() {
        let t = topo();
        let mut cfg = SubscriptionConfig::riabov();
        cfg.count = 0;
        assert!(cfg.generate(&t, 0).is_err());

        let mut cfg = SubscriptionConfig::riabov();
        cfg.block_shares = vec![0.5, 0.5, 0.5];
        assert!(cfg.generate(&t, 0).is_err());

        let mut cfg = SubscriptionConfig::riabov();
        cfg.bst_probs = [1.0, 1.0, 1.0];
        assert!(cfg.generate(&t, 0).is_err());

        let mut cfg = SubscriptionConfig::riabov();
        cfg.name_means = vec![1.0];
        assert!(cfg.generate(&t, 0).is_err());

        let mut cfg = SubscriptionConfig::riabov();
        cfg.quote.q0 = 0.9;
        cfg.quote.q1 = 0.9;
        assert!(cfg.generate(&t, 0).is_err());

        // More shares than the topology has blocks.
        let mut cfg = SubscriptionConfig::riabov();
        cfg.block_shares = vec![0.25, 0.25, 0.25, 0.25];
        cfg.name_means = vec![1.0, 2.0, 3.0, 4.0];
        assert!(matches!(
            cfg.generate(&t, 0),
            Err(WorkloadError::TopologyMismatch { .. })
        ));
    }

    #[test]
    fn stock_space_covers_generated_subscriptions_after_clamp() {
        let t = topo();
        let space = stock_space();
        let subs = SubscriptionConfig::riabov().generate(&t, 21).unwrap();
        for s in &subs {
            let clamped = space.clamp(&s.rect);
            assert!(space.bounds().contains_rect(&clamped));
            assert!(clamped.is_finite());
        }
    }
}
