//! Open-loop bursty arrival generator for the serving benchmark.
//!
//! Closed-loop drivers (call `publish_batch`, wait, repeat) can never
//! observe queueing delay: the offered load adapts to whatever the
//! system sustains. An *open-loop* generator fixes the arrival schedule
//! in advance — events arrive when the schedule says, whether or not the
//! server has kept up — so end-to-end latency measured from the
//! *scheduled* arrival instant exposes the queueing the paper's
//! multicast-vs-unicast tradeoff actually shapes for subscribers.
//!
//! Arrivals follow a two-state **on/off modulated Poisson process**
//! (the simplest MMPP): the aggregate source alternates between a burst
//! state (rate `burst_ratio × mean_rate`) and a quiet state (rate chosen
//! so the long-run average is exactly `mean_rate`), with exponential
//! sojourn times. Each arrival is assigned to one of `clients` simulated
//! connections uniformly — the per-client rate is millions of times
//! smaller than the aggregate, exactly the regime of ~10⁶ mostly-idle
//! subscribers the ROADMAP targets.
//!
//! Generation is deterministic (ChaCha8 keyed by the caller's seed) and
//! proceeds in fixed 1 ms slices; within a slice the modulating state is
//! constant, the arrival count is Poisson, and offsets are uniform. The
//! output is sorted by arrival time.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::WorkloadError;

/// One millisecond, the modulation/generation slice.
const SLICE_NS: u64 = 1_000_000;

/// One scheduled arrival: which simulated client publishes, and when
/// (nanoseconds from the start of the run).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Arrival {
    /// Scheduled arrival instant, ns from run start.
    pub at_ns: u64,
    /// The submitting client, in `[0, clients)`.
    pub client: u32,
}

/// Configuration of the open-loop generator. Passive data: public
/// fields.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenLoopConfig {
    /// Simulated connected clients arrivals are spread over.
    pub clients: usize,
    /// Long-run aggregate arrival rate, events/second.
    pub mean_rate: f64,
    /// Burst-state rate as a multiple of `mean_rate` (≥ 1). 1 degrades
    /// to a plain Poisson process.
    pub burst_ratio: f64,
    /// Mean sojourn in the burst state, milliseconds.
    pub mean_on_ms: f64,
    /// Mean sojourn in the quiet state, milliseconds.
    pub mean_off_ms: f64,
    /// Schedule length, seconds.
    pub duration_s: f64,
}

impl OpenLoopConfig {
    /// A bursty preset: 4× bursts of ~50 ms mean, ~150 ms quiet gaps —
    /// market-data-like clumping with a 25% duty cycle.
    pub fn bursty(clients: usize, mean_rate: f64, duration_s: f64) -> Self {
        OpenLoopConfig {
            clients,
            mean_rate,
            burst_ratio: 4.0,
            mean_on_ms: 50.0,
            mean_off_ms: 150.0,
            duration_s,
        }
    }

    /// Fraction of time spent in the burst state at stationarity.
    pub fn on_fraction(&self) -> f64 {
        self.mean_on_ms / (self.mean_on_ms + self.mean_off_ms)
    }

    /// The burst-state and quiet-state rates (events/sec) implied by the
    /// config: `λ_on = burst_ratio · mean_rate`, and `λ_off` solves
    /// `p_on·λ_on + (1-p_on)·λ_off = mean_rate`.
    pub fn state_rates(&self) -> (f64, f64) {
        let p_on = self.on_fraction();
        let lambda_on = self.burst_ratio * self.mean_rate;
        let lambda_off = (self.mean_rate - p_on * lambda_on) / (1.0 - p_on).max(f64::MIN_POSITIVE);
        (lambda_on, lambda_off)
    }

    /// Generates the arrival schedule, deterministically from `seed`.
    /// The result is sorted by `at_ns`.
    ///
    /// # Errors
    ///
    /// Rejects zero clients, non-positive rate/duration/sojourns, a
    /// `burst_ratio < 1`, and a `burst_ratio` so large the quiet-state
    /// rate would have to be negative to preserve the mean
    /// (`burst_ratio > 1/on_fraction`).
    pub fn generate(&self, seed: u64) -> Result<Vec<Arrival>, WorkloadError> {
        if self.clients == 0 || self.clients > u32::MAX as usize {
            return Err(WorkloadError::InvalidConfig {
                parameter: "clients",
                constraint: "1 <= clients <= u32::MAX",
            });
        }
        // NaN must fail these checks too, hence the explicit is_nan.
        if self.mean_rate.is_nan()
            || self.mean_rate <= 0.0
            || self.duration_s.is_nan()
            || self.duration_s <= 0.0
        {
            return Err(WorkloadError::InvalidConfig {
                parameter: "mean_rate/duration_s",
                constraint: "> 0",
            });
        }
        if self.mean_on_ms.is_nan()
            || self.mean_on_ms <= 0.0
            || self.mean_off_ms.is_nan()
            || self.mean_off_ms <= 0.0
        {
            return Err(WorkloadError::InvalidConfig {
                parameter: "mean_on_ms/mean_off_ms",
                constraint: "> 0",
            });
        }
        if self.burst_ratio.is_nan()
            || self.burst_ratio < 1.0
            || self.burst_ratio * self.on_fraction() > 1.0
        {
            return Err(WorkloadError::InvalidConfig {
                parameter: "burst_ratio",
                constraint: "1 <= burst_ratio <= 1/on_fraction",
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (lambda_on, lambda_off) = self.state_rates();
        let slices = (self.duration_s * 1e3).ceil() as u64;
        // Per-slice state-switch probabilities (geometric sojourns with
        // the exponential means, exact at the 1 ms discretization).
        let p_leave_on = (1.0 / self.mean_on_ms).min(1.0);
        let p_leave_off = (1.0 / self.mean_off_ms).min(1.0);
        // Start in the stationary distribution so short runs are not
        // biased toward either state.
        let mut on = rng.gen_range(0.0..1.0) < self.on_fraction();
        let mut arrivals = Vec::with_capacity((self.mean_rate * self.duration_s * 1.1) as usize);
        let mut offsets: Vec<u64> = Vec::new();
        for slice in 0..slices {
            let rate = if on { lambda_on } else { lambda_off };
            let mean = rate * (SLICE_NS as f64 * 1e-9);
            let count = poisson(&mut rng, mean);
            offsets.clear();
            offsets.extend((0..count).map(|_| rng.gen_range(0..SLICE_NS)));
            offsets.sort_unstable();
            let base = slice * SLICE_NS;
            arrivals.extend(offsets.iter().map(|&o| Arrival {
                at_ns: base + o,
                client: rng.gen_range(0..self.clients as u32),
            }));
            let p_leave = if on { p_leave_on } else { p_leave_off };
            if rng.gen_range(0.0..1.0) < p_leave {
                on = !on;
            }
        }
        Ok(arrivals)
    }
}

/// Poisson sample: Knuth's product-of-uniforms for small means, the
/// normal approximation (fine to ~1% above mean 30) for large ones —
/// keeps generation O(arrivals) even at hundreds of events per slice.
fn poisson<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen_range(0.0f64..1.0);
            count += 1;
        }
        count
    } else {
        // Box-Muller standard normal.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + mean.sqrt() * z).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> OpenLoopConfig {
        OpenLoopConfig::bursty(10_000, 20_000.0, 2.0)
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = config().generate(42).expect("generate");
        let b = config().generate(42).expect("generate");
        assert_eq!(a, b);
        let c = config().generate(43).expect("generate");
        assert_ne!(a, c);
    }

    #[test]
    fn schedule_is_sorted_and_in_range() {
        let cfg = config();
        let arrivals = cfg.generate(7).expect("generate");
        let horizon = (cfg.duration_s * 1e9).ceil() as u64;
        for pair in arrivals.windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns);
        }
        for a in &arrivals {
            assert!(a.at_ns < horizon);
            assert!((a.client as usize) < cfg.clients);
        }
    }

    #[test]
    fn long_run_rate_matches_mean() {
        let cfg = OpenLoopConfig::bursty(1000, 50_000.0, 10.0);
        let arrivals = cfg.generate(1).expect("generate");
        let rate = arrivals.len() as f64 / cfg.duration_s;
        let relative = (rate - cfg.mean_rate).abs() / cfg.mean_rate;
        assert!(
            relative < 0.15,
            "rate {rate:.0} deviates {relative:.2} from {}",
            cfg.mean_rate
        );
    }

    #[test]
    fn bursty_schedule_is_burstier_than_poisson() {
        // Index of dispersion of 10 ms bucket counts: ~1 for Poisson,
        // substantially larger under on/off modulation.
        let cfg = OpenLoopConfig::bursty(1000, 50_000.0, 10.0);
        let arrivals = cfg.generate(3).expect("generate");
        let bucket_ns = 10_000_000u64;
        let buckets = (cfg.duration_s * 1e9 / bucket_ns as f64).ceil() as usize;
        let mut counts = vec![0f64; buckets];
        for a in &arrivals {
            counts[(a.at_ns / bucket_ns) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
        let dispersion = var / mean;
        assert!(
            dispersion > 2.0,
            "dispersion {dispersion:.2} — schedule not bursty"
        );
        let mut flat = cfg;
        flat.burst_ratio = 1.0;
        let uniform = flat.generate(3).expect("generate");
        let mut flat_counts = vec![0f64; buckets];
        for a in &uniform {
            flat_counts[(a.at_ns / bucket_ns) as usize] += 1.0;
        }
        let fmean = flat_counts.iter().sum::<f64>() / flat_counts.len() as f64;
        let fvar = flat_counts
            .iter()
            .map(|c| (c - fmean) * (c - fmean))
            .sum::<f64>()
            / flat_counts.len() as f64;
        assert!(
            fvar / fmean < dispersion / 2.0,
            "plain Poisson should be far less dispersed"
        );
    }

    #[test]
    fn invalid_configs_reject() {
        let mut cfg = config();
        cfg.clients = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = config();
        cfg.mean_rate = 0.0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = config();
        cfg.burst_ratio = 0.5;
        assert!(cfg.generate(0).is_err());
        let mut cfg = config();
        // on_fraction = 0.25 → burst_ratio cap is 4; 5 cannot hold the mean.
        cfg.burst_ratio = 5.0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = config();
        cfg.mean_on_ms = 0.0;
        assert!(cfg.generate(0).is_err());
    }

    #[test]
    fn state_rates_preserve_the_mean() {
        let cfg = config();
        let (lambda_on, lambda_off) = cfg.state_rates();
        let p = cfg.on_fraction();
        let mean = p * lambda_on + (1.0 - p) * lambda_off;
        assert!((mean - cfg.mean_rate).abs() < 1e-6 * cfg.mean_rate);
        assert!(lambda_on > lambda_off);
        assert!(lambda_off >= 0.0);
    }
}
