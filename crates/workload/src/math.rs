//! Small numeric helpers: the error function and the normal CDF.
//!
//! The clustering density function needs exact per-cell probability masses
//! of normal mixtures, i.e. `Φ((hi−μ)/σ) − Φ((lo−μ)/σ)`. `std` has no
//! `erf`, so we implement the Abramowitz–Stegun 7.1.26 rational
//! approximation (max absolute error `1.5e-7`, far below what the
//! simulations can resolve).

/// The error function `erf(x)`, accurate to about `1.5e-7`.
///
/// # Example
///
/// ```
/// use pubsub_workload::math::erf;
///
/// assert!((erf(0.0)).abs() < 1e-8);
/// assert!((erf(10.0) - 1.0).abs() < 1e-7);
/// assert!((erf(-10.0) + 1.0).abs() < 1e-7);
/// ```
pub fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The standard normal CDF `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// The CDF of `N(mean, sd)` evaluated at `x`.
///
/// # Panics
///
/// Panics (debug) if `sd <= 0`.
pub fn normal_cdf(x: f64, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd > 0.0);
    std_normal_cdf((x - mean) / sd)
}

/// Probability mass a `N(mean, sd)` variable assigns to `(lo, hi]`.
pub fn normal_mass(lo: f64, hi: f64, mean: f64, sd: f64) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    (normal_cdf(hi, mean, sd) - normal_cdf(lo, mean, sd)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (-1.0, -0.8427008),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn erf_is_odd_and_monotone() {
        for i in 0..100 {
            let x = i as f64 * 0.05;
            // The rational approximation is odd up to its ~1e-7 accuracy
            // (erf(0) itself evaluates to ~1e-9, not exactly 0).
            assert!((erf(x) + erf(-x)).abs() < 1e-7);
            if i > 0 {
                assert!(erf(x) >= erf(x - 0.05));
            }
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(9.0, 9.0, 2.0) - 0.5).abs() < 1e-9);
        // ~68% within one sd.
        let one_sd = normal_mass(8.0, 10.0, 9.0, 1.0);
        assert!((one_sd - 0.6827).abs() < 1e-3);
        // ~95% within two sd.
        let two_sd = normal_mass(7.0, 11.0, 9.0, 1.0);
        assert!((two_sd - 0.9545).abs() < 1e-3);
    }

    #[test]
    fn normal_mass_edge_cases() {
        assert_eq!(normal_mass(5.0, 5.0, 0.0, 1.0), 0.0);
        assert_eq!(normal_mass(6.0, 5.0, 0.0, 1.0), 0.0);
        let total = normal_mass(-1e9, 1e9, 0.0, 1.0);
        assert!((total - 1.0).abs() < 1e-7);
    }
}
