//! Million-subscriber scale workload: a Zipf-skewed, duplicate-heavy
//! subscription population generated in fixed-size chunks so the result
//! is a pure function of the seed — independent of how many threads
//! filled it.
//!
//! Real large populations are dominated by repetition: many subscribers
//! issue the *same* predicate (hot stocks, popular alert templates).
//! The generator models this directly: a pool of `pool_size` distinct
//! rectangles is drawn once from the §5 parametric distributions, and
//! each of the `count` subscriptions picks its rectangle from the pool
//! through a Zipf-like rank distribution (`zipf_theta`; 0 = uniform,
//! larger = heavier duplication) and its subscriber node through the
//! same block/stub/node popularity structure as
//! [`SubscriptionConfig::generate`]. The pool-backed representation
//! (`u32` pick per subscription) keeps a 10M-subscription workload in
//! tens of megabytes instead of gigabytes of rectangles.
//!
//! # Determinism across thread counts
//!
//! Subscriptions are generated in fixed [`CHUNK`]-sized blocks, each
//! from its own counter-derived RNG (`splitmix64(seed, chunk index)`).
//! Worker threads claim whole chunks and write into disjoint slices, so
//! the output is bit-identical for every `threads` value — there is no
//! shared iteration order (and no hash map anywhere) to leak scheduling
//! into the result.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use pubsub_geom::Rect;
use pubsub_netsim::{NodeId, Topology};

use crate::subscriptions::{categorical, NodePicker};
use crate::{SubscriptionConfig, WorkloadError, ZipfLike};

/// Subscriptions per generation chunk: each chunk is filled from its own
/// counter-derived RNG, so any partition of chunks over threads yields
/// the same population.
pub const CHUNK: usize = 1 << 16;

/// Configuration of the scale generator. Passive data: public fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Total subscriptions to generate.
    pub count: usize,
    /// Number of distinct rectangles in the pool.
    pub pool_size: usize,
    /// Zipf exponent of the pool rank distribution: 0 spreads picks
    /// uniformly (few duplicates at small counts), 1 is classic Zipf
    /// (the most popular rectangle alone draws a constant fraction).
    pub zipf_theta: f64,
    /// The §5 parametric distributions the pool rectangles and the
    /// subscriber placement are drawn from.
    pub base: SubscriptionConfig,
}

impl ScaleConfig {
    /// A stock-market population of `count` subscriptions over a pool of
    /// 4096 distinct rectangles with classic Zipf (`θ = 1`) skew.
    pub fn stock(count: usize) -> Self {
        ScaleConfig {
            count,
            pool_size: 4096,
            zipf_theta: 1.0,
            base: SubscriptionConfig::riabov(),
        }
    }

    /// Generates the population on `topo`, deterministically from
    /// `seed`, filling chunks on up to `threads` worker threads (`None`
    /// = available parallelism). The result is bit-identical for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Configuration errors from the base config, a zero `count` or
    /// `pool_size`, or a bad `zipf_theta` (see [`WorkloadError`]).
    pub fn generate(
        &self,
        topo: &Topology,
        seed: u64,
        threads: Option<usize>,
    ) -> Result<ScaleWorkload, WorkloadError> {
        if self.count == 0 {
            return Err(WorkloadError::InvalidConfig {
                parameter: "count",
                constraint: ">= 1",
            });
        }
        if self.pool_size == 0 || self.pool_size > u32::MAX as usize {
            return Err(WorkloadError::InvalidConfig {
                parameter: "pool_size",
                constraint: "1 ..= u32::MAX",
            });
        }
        self.base.validate(topo)?;
        let picker = NodePicker::new(&self.base, topo)?;
        let pool_zipf = ZipfLike::new(self.pool_size, self.zipf_theta)?;
        let name_len_zipf =
            ZipfLike::new(self.base.name_length_zipf.0, self.base.name_length_zipf.1)?;

        // The pool: one sequential pass on a dedicated stream. Each pool
        // rectangle carries the block whose name-mean it was drawn
        // around, like a concrete §5 subscription would.
        let mut rng = ChaCha8Rng::seed_from_u64(mix(seed, u64::MAX));
        let pool: Vec<Rect> = (0..self.pool_size)
            .map(|_| {
                let block = categorical(&self.base.block_shares, &mut rng);
                self.base.sample_rect(block, &name_len_zipf, &mut rng)
            })
            .collect();

        // The population: disjoint chunks, one counter-derived RNG each.
        let mut picks = vec![0u32; self.count];
        let mut owners = vec![NodeId(0); self.count];
        let chunks = self.count.div_ceil(CHUNK);
        let workers = threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .clamp(1, chunks);
        let fill = |chunk: usize, picks: &mut [u32], owners: &mut [NodeId]| {
            let mut rng = ChaCha8Rng::seed_from_u64(mix(seed, chunk as u64));
            for (pick, owner) in picks.iter_mut().zip(owners.iter_mut()) {
                *pick = pool_zipf.sample(&mut rng) as u32;
                let (_, node) = picker.pick(topo, &mut rng);
                *owner = node;
            }
        };
        if workers <= 1 {
            for (chunk, (p, o)) in picks
                .chunks_mut(CHUNK)
                .zip(owners.chunks_mut(CHUNK))
                .enumerate()
            {
                fill(chunk, p, o);
            }
        } else {
            // Block-cyclic chunk assignment over scoped threads; every
            // thread writes only its own disjoint chunk slices.
            let pairs: Vec<ChunkSlot<'_>> = picks
                .chunks_mut(CHUNK)
                .zip(owners.chunks_mut(CHUNK))
                .enumerate()
                .map(|(c, (p, o))| (c, p, o))
                .collect();
            let mut shards: Vec<Vec<ChunkSlot<'_>>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, pair) in pairs.into_iter().enumerate() {
                shards[i % workers].push(pair);
            }
            std::thread::scope(|scope| {
                for shard in shards {
                    scope.spawn(|| {
                        for (chunk, p, o) in shard {
                            fill(chunk, p, o);
                        }
                    });
                }
            });
        }
        Ok(ScaleWorkload {
            pool,
            picks,
            owners,
        })
    }
}

/// One chunk's output slot: its index plus the disjoint pick/owner
/// slices a worker fills from the chunk's own RNG stream.
type ChunkSlot<'a> = (usize, &'a mut [u32], &'a mut [NodeId]);

/// One splitmix64 step over `seed ⊕ golden·(tag + 1)` — the per-chunk
/// stream seed.
fn mix(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generated scale population, pool-backed: subscription `i` is
/// `(owner(i), pool rectangle picks[i])`.
#[derive(Clone, Debug)]
pub struct ScaleWorkload {
    pool: Vec<Rect>,
    picks: Vec<u32>,
    owners: Vec<NodeId>,
}

impl ScaleWorkload {
    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.picks.len()
    }

    /// `true` if the population is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.picks.is_empty()
    }

    /// Number of distinct rectangles in the pool.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Subscription `i`: its subscriber node and rectangle.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> (NodeId, &Rect) {
        (self.owners[i], &self.pool[self.picks[i] as usize])
    }

    /// Calls `f` once per subscription, in id order.
    pub fn for_each(&self, f: &mut dyn FnMut(NodeId, &Rect)) {
        for (owner, pick) in self.owners.iter().zip(&self.picks) {
            f(*owner, &self.pool[*pick as usize]);
        }
    }

    /// Materializes the population as a `(node, rectangle)` list —
    /// convenient for small counts; at scale, stream with
    /// [`ScaleWorkload::for_each`] instead.
    pub fn to_vec(&self) -> Vec<(NodeId, Rect)> {
        self.owners
            .iter()
            .zip(&self.picks)
            .map(|(o, p)| (*o, self.pool[*p as usize].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_netsim::TransitStubConfig;

    fn topo() -> Topology {
        TransitStubConfig::riabov().generate(3).unwrap()
    }

    #[test]
    fn identical_seed_identical_population_for_every_thread_count() {
        let t = topo();
        // Spans several chunks so the parallel path actually splits.
        let cfg = ScaleConfig {
            count: 3 * CHUNK + 17,
            ..ScaleConfig::stock(0)
        };
        let one = cfg.generate(&t, 99, Some(1)).unwrap();
        for threads in [2, 3, 8] {
            let many = cfg.generate(&t, 99, Some(threads)).unwrap();
            assert_eq!(one.picks, many.picks, "threads = {threads}");
            assert_eq!(one.owners, many.owners, "threads = {threads}");
            assert_eq!(one.pool, many.pool, "threads = {threads}");
        }
        let other = cfg.generate(&t, 100, Some(1)).unwrap();
        assert_ne!(one.picks, other.picks);
    }

    #[test]
    fn zipf_theta_controls_duplicate_skew() {
        let t = topo();
        let skewed = ScaleConfig {
            count: 40_000,
            pool_size: 512,
            zipf_theta: 1.0,
            base: SubscriptionConfig::riabov(),
        };
        let uniform = ScaleConfig {
            zipf_theta: 0.0,
            ..skewed.clone()
        };
        let top_share = |w: &ScaleWorkload| {
            let mut counts = vec![0usize; w.pool_size()];
            for &p in &w.picks {
                counts[p as usize] += 1;
            }
            *counts.iter().max().unwrap() as f64 / w.len() as f64
        };
        let s = top_share(&skewed.generate(&t, 5, None).unwrap());
        let u = top_share(&uniform.generate(&t, 5, None).unwrap());
        // Classic Zipf over 512 ranks gives rank 0 ≈ 1/H(512) ≈ 14.7%;
        // uniform gives ≈ 0.2%.
        assert!(s > 0.10, "skewed top share {s}");
        assert!(u < 0.01, "uniform top share {u}");
    }

    #[test]
    fn population_is_placed_on_stub_nodes_with_pool_rects() {
        let t = topo();
        let w = ScaleConfig::stock(1000).generate(&t, 7, None).unwrap();
        assert_eq!(w.len(), 1000);
        let subs = w.to_vec();
        assert_eq!(subs.len(), 1000);
        for (i, (node, rect)) in subs.iter().enumerate() {
            assert!(matches!(
                t.role(*node),
                pubsub_netsim::NodeRole::Stub { .. }
            ));
            let (n, r) = w.get(i);
            assert_eq!((n, r), (*node, rect));
            assert_eq!(rect.dims(), 4);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let t = topo();
        assert!(ScaleConfig::stock(0).generate(&t, 0, None).is_err());
        let mut cfg = ScaleConfig::stock(10);
        cfg.pool_size = 0;
        assert!(cfg.generate(&t, 0, None).is_err());
        let mut cfg = ScaleConfig::stock(10);
        cfg.zipf_theta = f64::NAN;
        assert!(cfg.generate(&t, 0, None).is_err());
    }
}
