//! Property tests for the workload generators: distributional invariants
//! that must hold for arbitrary (valid) configurations and seeds.

use proptest::prelude::*;
use pubsub_netsim::TransitStubConfig;
use pubsub_workload::{
    stock_space, IntervalDistribution, Modes, PublicationModel, SubscriptionConfig, ZipfLike,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn zipf_pmf_is_a_decreasing_distribution(n in 1usize..200, theta in 0.0f64..3.0) {
        let z = ZipfLike::new(n, theta).unwrap();
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_samples_stay_in_range(n in 1usize..50, theta in 0.0f64..2.5, seed in 0u64..1000) {
        let z = ZipfLike::new(n, theta).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn interval_distribution_produces_wellformed_intervals(
        q0 in 0.0f64..0.5,
        q1 in 0.0f64..0.25,
        q2 in 0.0f64..0.25,
        seed in 0u64..1000,
    ) {
        let dist = IntervalDistribution {
            q0,
            q1,
            q2,
            ..IntervalDistribution::price()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..200 {
            let iv = dist.sample(&mut rng);
            // Never inverted, never NaN; may be unbounded.
            prop_assert!(iv.lo() <= iv.hi());
            prop_assert!(!iv.lo().is_nan() && !iv.hi().is_nan());
            // Bounded intervals have positive length (Pareto >= scale).
            if iv.is_finite() {
                prop_assert!(iv.length() >= dist.pareto_scale - 1e-9);
            }
        }
    }

    #[test]
    fn publication_mass_is_a_measure(
        mode_idx in 0usize..3,
        lo in prop::collection::vec(-20.0f64..20.0, 4),
        len in prop::collection::vec(0.0f64..15.0, 4),
        split in 0.05f64..0.95,
    ) {
        let model: PublicationModel = Modes::ALL[mode_idx].model();
        let hi: Vec<f64> = lo.iter().zip(&len).map(|(l, d)| l + d).collect();
        let rect = pubsub_geom::Rect::from_corners(&lo, &hi).unwrap();
        let mass = model.mass(&rect);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&mass));

        // Additivity along the first dimension.
        let cut = lo[0] + (hi[0] - lo[0]) * split;
        let mut left_hi = hi.clone();
        left_hi[0] = cut;
        let mut right_lo = lo.clone();
        right_lo[0] = cut;
        let left = model.mass(&pubsub_geom::Rect::from_corners(&lo, &left_hi).unwrap());
        let right = model.mass(&pubsub_geom::Rect::from_corners(&right_lo, &hi).unwrap());
        prop_assert!((left + right - mass).abs() < 1e-9);
    }

    #[test]
    fn subscription_generation_respects_count_and_placement(
        count in 1usize..120,
        seed in 0u64..200,
    ) {
        let topo = TransitStubConfig::riabov().generate(5).unwrap();
        let mut cfg = SubscriptionConfig::riabov();
        cfg.count = count;
        let subs = cfg.generate(&topo, seed).unwrap();
        prop_assert_eq!(subs.len(), count);
        let space = stock_space();
        for s in &subs {
            prop_assert_eq!(s.rect.dims(), 4);
            // Subscribers are stub nodes of the topology.
            let is_stub = matches!(topo.role(s.node), pubsub_netsim::NodeRole::Stub { .. });
            prop_assert!(is_stub);
            // Clamping always produces finite, in-space geometry.
            let clamped = space.clamp(&s.rect);
            prop_assert!(clamped.is_finite());
            prop_assert!(space.bounds().contains_rect(&clamped));
        }
    }

    #[test]
    fn publication_samples_are_finite_4d(mode_idx in 0usize..3, seed in 0u64..500) {
        let model = Modes::ALL[mode_idx].model();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..100 {
            let p = model.sample(&mut rng);
            prop_assert_eq!(p.dims(), 4);
            prop_assert!(p.as_slice().iter().all(|c| c.is_finite()));
        }
    }
}
