//! Topology ablation (extension): hierarchical transit-stub vs flat
//! Waxman random graphs.
//!
//! The paper evaluates on a GT-ITM transit-stub network. Hierarchy is
//! what gives multicast its leverage — stub trunks and backbone links are
//! shared by many receivers. On a flat Waxman graph of the same size the
//! shortest-path trees share far less, so the achievable improvement
//! shrinks. This ablation quantifies that dependence.
//!
//! Writes `results/ablation_topology.json`. Override the event count with
//! `PUBSUB_EVENTS` (default 5000).

use pubsub_bench::{drive, event_count, sample_events, scenario, write_json};
use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub_core::{AdaptiveConfig, AdaptiveController, Broker, DeliveryMode};
use pubsub_netsim::{Topology, TransitStubConfig, WaxmanConfig};
use pubsub_workload::{stock_space, Modes, SubscriptionConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    nodes: usize,
    edges: usize,
    static_improvement: f64,
    dynamic_improvement: f64,
    adaptive_improvement: f64,
}

/// A single-block subscription config usable on flat topologies.
fn flat_subscription_config() -> SubscriptionConfig {
    SubscriptionConfig {
        block_shares: vec![1.0],
        name_means: vec![10.0],
        ..SubscriptionConfig::riabov()
    }
}

fn run(label: &str, topo: Topology, subs_cfg: &SubscriptionConfig, rows: &mut Vec<Row>, n: usize) {
    let model = scenario(Modes::Nine);
    let placed = subs_cfg.generate(&topo, 2003).expect("valid config");
    let stats = topo.stats();
    let density = model.clone();
    let mut broker = Broker::builder(topo, stock_space())
        .subscriptions(placed.into_iter().map(|p| (p.node, p.rect)))
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 11))
        .threshold(0.0)
        .delivery_mode(DeliveryMode::DenseMode)
        .density(move |r| density.mass(r))
        .build()
        .expect("valid broker");
    let events = sample_events(&model, n, 23);
    let static_report = drive(&mut broker, &events);
    broker.set_threshold(0.12).expect("valid");
    let dynamic_report = drive(&mut broker, &events);

    // The §6 adaptive controller learns each topology's own break-even
    // points — on flat graphs they are far above any fixed global `t`.
    let train = sample_events(&model, n, 24);
    let mut controller = AdaptiveController::for_broker(&broker, AdaptiveConfig::default());
    broker.reset_report();
    for e in &train {
        let out = broker.publish(e).expect("valid event");
        controller.observe(&out);
    }
    controller.apply(&mut broker).expect("clamped thresholds");
    let adaptive_report = drive(&mut broker, &events);

    println!(
        "{label:>24}: {:>4} nodes {:>5} edges | static {:>8.1}% | dynamic t=.12 {:>8.1}% | adaptive {:>6.1}%",
        stats.nodes,
        stats.edges,
        static_report.improvement_percent(),
        dynamic_report.improvement_percent(),
        adaptive_report.improvement_percent()
    );
    rows.push(Row {
        topology: label.to_string(),
        nodes: stats.nodes,
        edges: stats.edges,
        static_improvement: static_report.improvement_percent(),
        dynamic_improvement: dynamic_report.improvement_percent(),
        adaptive_improvement: adaptive_report.improvement_percent(),
    });
}

fn main() {
    let n = event_count(5000);
    println!("== Topology ablation: transit-stub hierarchy vs flat Waxman (9 modes, 11 groups, {n} events) ==\n");
    let mut rows = Vec::new();

    run(
        "transit-stub (paper)",
        TransitStubConfig::riabov().generate(1903).expect("preset"),
        &SubscriptionConfig::riabov(),
        &mut rows,
        n,
    );
    run(
        "waxman flat (sparse)",
        WaxmanConfig::riabov_sized().generate(1903).expect("preset"),
        &flat_subscription_config(),
        &mut rows,
        n,
    );
    run(
        "waxman flat (dense)",
        WaxmanConfig {
            alpha: 0.15,
            ..WaxmanConfig::riabov_sized()
        }
        .generate(1903)
        .expect("preset"),
        &flat_subscription_config(),
        &mut rows,
        n,
    );

    println!("\nexpected shape: multicast's leverage comes from the hierarchy — on flat Waxman");
    println!("graphs any fixed low threshold multicasts itself far below unicast, and only the");
    println!("adaptive per-group thresholds (which learn each topology's break-even points)");
    println!("recover. The transit-stub testbed is not incidental to the paper's results.");
    write_json("ablation_topology", &rows);
    println!("wrote results/ablation_topology.json");
}
