//! Network-cost engine throughput: the legacy node-based
//! `ShortestPaths` walks (with the old per-publisher `HashMap` cache)
//! vs the compiled [`FlatNet`] engine vs the batched [`cost_events`]
//! pipeline, on the paper's ~600-node transit-stub testbed.
//!
//! Each engine evaluates, per published event, the three walks of the
//! broker's hot path: the unicast bill, the ideal (interested-set) tree
//! cost, and one group-send tree cost. All three engines are verified to
//! produce bit-identical totals before timing starts.
//!
//! Prints a throughput table and writes the machine-readable result to
//! `BENCH_netsim.json` in the current directory. Event count is
//! overridable with `PUBSUB_EVENTS`; pass `--quick` for a smoke-sized
//! run (used by CI).

use std::collections::HashMap;

use serde::Serialize;

use pubsub_bench::{build_testbed, event_count, measure, sample_events, scenario, Seeds};
use pubsub_core::Matcher;
use pubsub_netsim::{
    cost_events, dijkstra, multicast_tree_cost, multicast_tree_cost_flat, unicast_and_tree_cost,
    unicast_cost, CostScratch, FlatNet, NodeId, ShortestPaths, SptTable,
};
use pubsub_stree::STreeConfig;
use pubsub_workload::{stock_space, Modes};

#[derive(Debug, Serialize)]
struct Row {
    name: &'static str,
    events_per_sec: f64,
    speedup_vs_node: f64,
}

#[derive(Debug, Serialize)]
struct Output {
    nodes: usize,
    edges: usize,
    subscriptions: usize,
    events: usize,
    groups: usize,
    samples: usize,
    /// Host core count and runtime kernel level, uniform across every
    /// `BENCH_*.json` header.
    host: pubsub_bench::HostInfo,
    rows: Vec<Row>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = event_count(if quick { 2_000 } else { 20_000 });
    let samples = if quick { 3 } else { 7 };

    let seeds = Seeds::default();
    let testbed = build_testbed(seeds);
    let graph = testbed.topology.graph();
    let publisher = testbed.topology.transit_nodes()[0];
    let matcher = Matcher::build(
        &stock_space(),
        &testbed.subscriptions,
        STreeConfig::default(),
    )
    .expect("testbed is valid");

    // The receiver sets the engines will cost: the matched interested
    // nodes of each event, computed once up front (matching throughput is
    // bench_matching's subject, not this binary's).
    let events = sample_events(&scenario(Modes::Nine), n, seeds.publications);
    let interested: Vec<Vec<NodeId>> = matcher
        .match_events(&events, None)
        .into_iter()
        .map(|(_, nodes)| nodes)
        .collect();

    // Round-robin multicast groups over the distinct subscriber nodes —
    // the group-send walk needs realistic member sets, not a clustering.
    let mut distinct: Vec<NodeId> = testbed
        .subscriptions
        .iter()
        .map(|&(node, _)| node)
        .collect();
    distinct.sort_unstable();
    distinct.dedup();
    let group_count = 11usize;
    let groups: Vec<Vec<NodeId>> = (0..group_count)
        .map(|g| {
            distinct
                .iter()
                .copied()
                .skip(g)
                .step_by(group_count)
                .collect()
        })
        .collect();

    // Engine 1: the node-based walks behind the old broker's lazy
    // per-publisher HashMap<NodeId, ShortestPaths> cache.
    let mut cache: HashMap<NodeId, ShortestPaths> = HashMap::new();
    cache.insert(publisher, dijkstra(graph, publisher));
    let mut node_pass = || {
        let mut total = 0.0;
        for (i, set) in interested.iter().enumerate() {
            let spt = &cache[&publisher];
            total += unicast_cost(spt, set);
            total += multicast_tree_cost(spt, set);
            total += multicast_tree_cost(spt, &groups[i % group_count]);
        }
        total
    };

    // Engine 2: the compiled flat engine — one dense SPT row, reusable
    // epoch-stamped scratch, combined unicast+tree pass, and (like the
    // broker) a per-group send-cost memo: the group-send walk is
    // event-independent, so each group is walked once per pass, not once
    // per event. The memoized value is the walk's own f64, so totals stay
    // bit-identical to the recompute-every-event baseline.
    let net = FlatNet::compile(graph);
    let table = SptTable::build(&net, &[publisher], None);
    let mut scratch = CostScratch::new();
    let mut memo: Vec<Option<f64>> = vec![None; group_count];
    let mut flat_pass = || {
        let view = table.view(publisher).expect("built above");
        memo.fill(None);
        let mut total = 0.0;
        for (i, set) in interested.iter().enumerate() {
            let pair = unicast_and_tree_cost(view, set, &mut scratch);
            total += pair.unicast;
            total += pair.tree;
            let q = i % group_count;
            total += *memo[q]
                .get_or_insert_with(|| multicast_tree_cost_flat(view, &groups[q], &mut scratch));
        }
        total
    };

    // Engine 3: the batched pipeline the broker's publish_batch uses —
    // cost_events for every unicast/ideal pair, then the memoized group
    // sends.
    let mut batch_scratch = CostScratch::new();
    let mut batch_memo: Vec<Option<f64>> = vec![None; group_count];
    let mut batched_pass = || {
        let view = table.view(publisher).expect("built above");
        batch_memo.fill(None);
        let pairs = cost_events(
            view,
            interested.iter().map(Vec::as_slice),
            &mut batch_scratch,
        );
        let mut total = 0.0;
        for (i, pair) in pairs.iter().enumerate() {
            total += pair.unicast;
            total += pair.tree;
            let q = i % group_count;
            total += *batch_memo[q].get_or_insert_with(|| {
                multicast_tree_cost_flat(view, &groups[q], &mut batch_scratch)
            });
        }
        total
    };

    // The engines must agree bit for bit before their speed matters.
    let expected = node_pass();
    assert_eq!(expected.to_bits(), flat_pass().to_bits(), "flat != node");
    assert_eq!(
        expected.to_bits(),
        batched_pass().to_bits(),
        "batch != node"
    );

    let node = measure(n, samples, &mut node_pass);
    let flat = measure(n, samples, &mut flat_pass);
    let batched = measure(n, samples, &mut batched_pass);

    let rows = vec![
        Row {
            name: "node_spt_walk",
            events_per_sec: node,
            speedup_vs_node: 1.0,
        },
        Row {
            name: "flat",
            events_per_sec: flat,
            speedup_vs_node: flat / node,
        },
        Row {
            name: "flat_batched",
            events_per_sec: batched,
            speedup_vs_node: batched / node,
        },
    ];

    println!(
        "cost-evaluation throughput (unicast + ideal tree + group send per event),\n\
         {} nodes / {} edges, {} subscriptions, {} events, {} groups (totals bit-identical):",
        graph.node_count(),
        graph.edge_count(),
        testbed.subscriptions.len(),
        n,
        group_count
    );
    println!("{:<16} {:>14} {:>10}", "engine", "events/s", "speedup");
    for r in &rows {
        println!(
            "{:<16} {:>14.0} {:>9.2}x",
            r.name, r.events_per_sec, r.speedup_vs_node
        );
    }

    let out = Output {
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        subscriptions: testbed.subscriptions.len(),
        events: n,
        groups: group_count,
        samples,
        host: pubsub_bench::host_info(),
        rows,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    if let Err(e) = std::fs::write("BENCH_netsim.json", &json) {
        eprintln!("warning: could not write BENCH_netsim.json: {e}");
    }
}
