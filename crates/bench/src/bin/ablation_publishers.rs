//! Publisher-placement ablation (extension): where the publisher sits and
//! how many there are.
//!
//! The paper evaluates a single publisher; its dense-mode discussion notes
//! router state grows with publishers × groups. This ablation compares
//! the improvement metric when the feed originates (a) at a transit node
//! of each block, (b) at a random stub node, and (c) from a different
//! random stub publisher per message (`Broker::publish_from`).
//!
//! Writes `results/ablation_publishers.json`. Override the event count
//! with `PUBSUB_EVENTS` (default 5000).

use pubsub_bench::{
    build_broker, build_testbed, event_count, sample_events, scenario, write_json, Seeds,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::DeliveryMode;
use pubsub_netsim::NodeId;
use pubsub_workload::Modes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    placement: String,
    improvement: f64,
    avg_cost: f64,
}

fn main() {
    let n = event_count(5000);
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let events = sample_events(&model, n, Seeds::default().publications);

    println!("== Publisher placement ablation (9 modes, 11 groups, t=0.15, {n} events) ==\n");
    println!(
        "{:>28} {:>12} {:>12}",
        "placement", "improvement", "avg cost"
    );

    let mut rows = Vec::new();
    let mut run = |label: String, publishers: Vec<NodeId>| {
        let mut broker = build_broker(
            &testbed,
            &model,
            ClusteringAlgorithm::ForgyKMeans,
            11,
            0.15,
            DeliveryMode::DenseMode,
        );
        broker.reset_report();
        for (i, e) in events.iter().enumerate() {
            let publisher = publishers[i % publishers.len()];
            broker.publish_from(publisher, e).expect("valid event");
        }
        let r = *broker.report();
        println!(
            "{label:>28} {:>11.1}% {:>12.1}",
            r.improvement_percent(),
            r.avg_cost()
        );
        rows.push(Row {
            placement: label,
            improvement: r.improvement_percent(),
            avg_cost: r.avg_cost(),
        });
    };

    // (a) One transit publisher per block.
    for block in 0..3 {
        let t = testbed.topology.transit_nodes_of_block(block)[0];
        run(format!("transit node (block {block})"), vec![t]);
    }
    // (b) A fixed random stub publisher.
    let mut rng = ChaCha8Rng::seed_from_u64(404);
    let stubs = testbed.topology.stub_nodes();
    let fixed_stub = stubs[rng.gen_range(0..stubs.len())];
    run("fixed stub node".to_string(), vec![fixed_stub]);
    // (c) A different random stub publisher per message.
    let many: Vec<NodeId> = (0..64)
        .map(|_| stubs[rng.gen_range(0..stubs.len())])
        .collect();
    run("random stub per message".to_string(), many);

    println!("\nexpected shape: the improvement metric is robust to publisher placement —");
    println!("the dynamic scheme's benefit comes from skipping low-interest multicasts,");
    println!("which is a property of the groups, not of the feed location.");
    write_json("ablation_publishers", &rows);
    println!("wrote results/ablation_publishers.json");
}
