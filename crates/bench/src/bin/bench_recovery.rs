//! Crash-recovery benchmark: what does durability cost, and what does a
//! stage crash do to tail latency?
//!
//! Three experiments, one JSON:
//!
//! 1. **Recovery time vs journal length** — journaled brokers accumulate
//!    N subscribe operations with snapshots disabled (worst case: the
//!    whole WAL replays), then `BrokerBuilder::recover` is timed from a
//!    cold directory. Reported per cell: WAL bytes, replayed ops, the
//!    broker's internal `recovery_ms`, and the end-to-end wall time.
//! 2. **Tail latency through a crash-restart window** — an open-loop
//!    paced stream runs through a [`SupervisedServer`] twice: once
//!    clean, once with a scheduled fold kill (broker owner dies, is
//!    rebuilt from the journal, salvaged work replays). Publish→deliver
//!    p50/p99/p999 for both runs quantify the crash window; every
//!    accepted event must still be delivered exactly once.
//! 3. **Shed rate at 2× overload** — the closed-loop capacity of the
//!    staged pipeline is probed, then events are offered open-loop at
//!    twice that rate; the explicit `Shed` rejections (with their
//!    retry-after hints) are the load-shedding tier doing its job.
//!
//! Prints a table and writes `results/BENCH_recovery.json`. Pass
//! `--quick` for a smoke-sized run (used by CI).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::Serialize;

use pubsub_bench::{host_info, write_json, HostInfo};
use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub_core::{Broker, BrokerBuilder, JournalConfig};
use pubsub_geom::{Point, Rect, Space};
use pubsub_netsim::TransitStubConfig;
use pubsub_server::{
    CrashKind, CrashPlan, LatencySink, RejectReason, ServingConfig, SuperviseOptions,
    SupervisedServer,
};

const TOPO_SEED: u64 = 23;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pubsub-bench-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn space() -> Space {
    Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
}

fn builder() -> BrokerBuilder {
    let topo = TransitStubConfig::tiny().generate(TOPO_SEED).unwrap();
    Broker::builder(topo, space())
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seeded_rect(state: &mut u64) -> Rect {
    let f = |state: &mut u64| splitmix64(state) as f64 / u64::MAX as f64;
    let (x, y) = (8.0 * f(state), 8.0 * f(state));
    let (w, h) = (0.5 + 7.0 * f(state), 0.5 + 7.0 * f(state));
    Rect::from_corners(&[x, y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap()
}

#[derive(Debug, Serialize)]
struct RecoveryCell {
    journal_ops: usize,
    wal_bytes: u64,
    replayed_ops: u64,
    truncated_records: u64,
    /// The broker's own recovery stopwatch (journal load + registry
    /// restore + engine compile).
    recovery_ms_internal: u64,
    /// End-to-end `BrokerBuilder::recover` wall time.
    recover_wall_ms: f64,
    live_subscriptions: usize,
}

/// Experiment 1: recovery time as a function of replayed journal length.
fn recovery_vs_journal_length(lengths: &[usize]) -> Vec<RecoveryCell> {
    let mut cells = Vec::new();
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "journal ops", "wal bytes", "replayed", "internal ms", "wall ms"
    );
    for &n in lengths {
        let dir = scratch_dir(&format!("len-{n}"));
        // Snapshots disabled: recovery must replay every op — the
        // worst-case journal of this length. Appends are unsynced: this
        // experiment times recovery, not the fsync-per-op setup.
        let config = JournalConfig::new(&dir)
            .snapshot_every(u64::MAX)
            .sync_writes(false);
        let mut broker = builder().journal(config).build().unwrap();
        let nodes = TransitStubConfig::tiny()
            .generate(TOPO_SEED)
            .unwrap()
            .stub_nodes()
            .to_vec();
        let mut rng = 0x5eed ^ n as u64;
        for i in 0..n {
            let node = nodes[(splitmix64(&mut rng) as usize) % nodes.len()];
            broker.subscribe(node, seeded_rect(&mut rng)).unwrap();
            // Retire a third of them so recovery also replays dead slots.
            if i % 3 == 0 {
                let h = broker.registry().live().next().unwrap().0;
                broker.unsubscribe(h).unwrap();
            }
        }
        let wal_bytes = broker.journal().unwrap().wal_len();
        drop(broker);

        let t0 = Instant::now();
        let recovered = builder()
            .journal(JournalConfig::new(&dir))
            .recover()
            .unwrap();
        let recover_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let counters = recovered.recovery_counters();
        let live = recovered.registry().live().count();
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>10.2}",
            n, wal_bytes, counters.replayed_ops, counters.recovery_ms, recover_wall_ms
        );
        cells.push(RecoveryCell {
            journal_ops: n,
            wal_bytes,
            replayed_ops: counters.replayed_ops,
            truncated_records: counters.truncated_records,
            recovery_ms_internal: counters.recovery_ms,
            recover_wall_ms,
            live_subscriptions: live,
        });
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
    cells
}

/// A journaled broker (one wide-open subscription) plus its recover
/// closure, for the supervised runs.
fn journaled_serving_broker(dir: &PathBuf) -> (Broker, SuperviseOptions) {
    let mut broker = builder().journal(JournalConfig::new(dir)).build().unwrap();
    let node = TransitStubConfig::tiny()
        .generate(TOPO_SEED)
        .unwrap()
        .stub_nodes()[0];
    broker
        .subscribe(
            node,
            Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(),
        )
        .unwrap();
    let recover_dir = dir.clone();
    let options = SuperviseOptions {
        recover: Some(Box::new(move || {
            builder()
                .journal(JournalConfig::new(&recover_dir))
                .recover()
        })),
        chaos: CrashPlan::new(),
    };
    (broker, options)
}

fn serving_config() -> ServingConfig {
    ServingConfig {
        max_batch: 16,
        flush_interval: Duration::from_micros(500),
        shards: 1,
        ..ServingConfig::default()
    }
}

#[derive(Debug, Serialize)]
struct PacedRun {
    offered: u64,
    accepted: u64,
    shed: u64,
    delivered: u64,
    restarts: u64,
    replayed_batches: u64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e6
}

/// Paces `events` submissions at `rate` events/s through a supervised
/// server, optionally killing the fold mid-stream. Latency is measured
/// from each event's scheduled instant (open loop: queueing during the
/// crash window counts).
fn paced_run(events: u64, rate: f64, chaos: CrashPlan) -> PacedRun {
    let dir = scratch_dir(if chaos.is_empty() { "clean" } else { "crash" });
    let (broker, mut options) = journaled_serving_broker(&dir);
    options.chaos = chaos;
    let sink = LatencySink::new();
    let server = SupervisedServer::start(broker, serving_config(), Box::new(sink.clone()), options);
    let handle = server.handle();

    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now() + Duration::from_millis(10);
    let mut shed = 0u64;
    let mut accepted = 0u64;
    for i in 0..events {
        let scheduled = start + interval.mul_f64(i as f64);
        loop {
            let now = Instant::now();
            if now >= scheduled {
                break;
            }
            let gap = scheduled - now;
            if gap > Duration::from_micros(300) {
                std::thread::sleep(gap - Duration::from_micros(200));
            } else {
                std::hint::spin_loop();
            }
        }
        let point = Point::new(vec![(i % 10) as f64, ((i * 7) % 10) as f64]).unwrap();
        match handle.submit((i % 64) as u32, i, point, scheduled) {
            Ok(()) => accepted += 1,
            Err(RejectReason::Shed { .. }) => shed += 1,
            Err(r) => panic!("paced submit rejected: {r}"),
        }
    }
    let (broker, stats) = server.stop().expect("supervised run recovers");
    let mut lat = sink.take();
    lat.sort_unstable();
    assert_eq!(stats.accepted, accepted, "client and server agree on acks");
    assert_eq!(
        stats.delivered + stats.failed,
        stats.accepted,
        "every accepted event got a record"
    );
    drop(broker);
    let _ = std::fs::remove_dir_all(&dir);
    PacedRun {
        offered: events,
        accepted,
        shed,
        delivered: stats.delivered,
        restarts: stats.restarts,
        replayed_batches: stats.replayed_batches,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        p999_ms: percentile(&lat, 0.999),
    }
}

#[derive(Debug, Serialize)]
struct Overload {
    closed_loop_eps: f64,
    offered_eps: f64,
    offered: u64,
    accepted: u64,
    shed: u64,
    shed_rate: f64,
    mean_retry_hint_ms: f64,
}

/// Experiment 3: offered load at 2× the probed closed-loop capacity;
/// the shed tier must absorb the excess explicitly.
fn overload_shed_rate(probe: Duration, window: Duration) -> Overload {
    let dir = scratch_dir("overload");
    let (broker, options) = journaled_serving_broker(&dir);
    let sink = LatencySink::new();
    let server = SupervisedServer::start(broker, serving_config(), Box::new(sink.clone()), options);
    let handle = server.handle();

    // Closed-loop probe: back-to-back accepted submissions.
    let t0 = Instant::now();
    let mut probed = 0u64;
    while t0.elapsed() < probe {
        let point = Point::new(vec![(probed % 10) as f64, 5.0]).unwrap();
        match handle.submit_now(0, probed, point) {
            Ok(()) => probed += 1,
            Err(RejectReason::Shed { .. }) => std::thread::sleep(Duration::from_micros(50)),
            Err(r) => panic!("probe rejected: {r}"),
        }
    }
    let closed_loop_eps = probed as f64 / t0.elapsed().as_secs_f64();

    // Open loop at 2×: no retries, no waiting — sheds are the result.
    let offered_eps = 2.0 * closed_loop_eps;
    let interval = Duration::from_secs_f64(1.0 / offered_eps);
    let start = Instant::now();
    let mut offered = 0u64;
    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut hint_sum = 0u64;
    while start.elapsed() < window {
        let scheduled = start + interval.mul_f64(offered as f64);
        while Instant::now() < scheduled {
            std::hint::spin_loop();
        }
        let point = Point::new(vec![(offered % 10) as f64, 5.0]).unwrap();
        match handle.submit_now(1, offered, point) {
            Ok(()) => accepted += 1,
            Err(RejectReason::Shed { retry_after_ms }) => {
                shed += 1;
                hint_sum += u64::from(retry_after_ms);
            }
            Err(r) => panic!("overload submit rejected: {r}"),
        }
        offered += 1;
    }
    let (_broker, stats) = server.stop().expect("no chaos installed");
    assert_eq!(stats.accepted, probed + accepted);
    let _ = std::fs::remove_dir_all(&dir);
    Overload {
        closed_loop_eps,
        offered_eps,
        offered,
        accepted,
        shed,
        shed_rate: shed as f64 / offered.max(1) as f64,
        mean_retry_hint_ms: hint_sum as f64 / shed.max(1) as f64,
    }
}

#[derive(Debug, Serialize)]
struct Output {
    host: HostInfo,
    quick: bool,
    recovery: Vec<RecoveryCell>,
    /// The same paced stream, no chaos: the tail-latency baseline.
    clean_run: PacedRun,
    /// One scheduled fold kill mid-stream: the crash-restart window.
    crash_run: PacedRun,
    overload: Overload,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("recovery time vs journal length (snapshots disabled):");
    let lengths: &[usize] = if quick {
        &[64, 256]
    } else {
        &[256, 1024, 4096]
    };
    let recovery = recovery_vs_journal_length(lengths);

    let events: u64 = if quick { 4_000 } else { 40_000 };
    let rate = 10_000.0;
    println!("\npaced stream, {events} events at {rate:.0}/s:");
    let clean_run = paced_run(events, rate, CrashPlan::new());
    println!(
        "clean: p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms ({} shed)",
        clean_run.p50_ms, clean_run.p99_ms, clean_run.p999_ms, clean_run.shed
    );
    // Kill the fold (the broker owner — the most expensive recovery)
    // once the stream is warm.
    let crash_run = paced_run(
        events,
        rate,
        CrashPlan::new().kill(CrashKind::KillFold, events / 32),
    );
    println!(
        "crash: p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms ({} shed, {} restart(s), {} replayed)",
        crash_run.p50_ms,
        crash_run.p99_ms,
        crash_run.p999_ms,
        crash_run.shed,
        crash_run.restarts,
        crash_run.replayed_batches
    );
    assert_eq!(crash_run.restarts, 1, "the scheduled fold kill fired");
    assert_eq!(
        crash_run.delivered, crash_run.accepted,
        "the crash lost no accepted events"
    );

    let (probe, window) = if quick {
        (Duration::from_millis(300), Duration::from_millis(400))
    } else {
        (Duration::from_millis(800), Duration::from_secs(2))
    };
    let overload = overload_shed_rate(probe, window);
    println!(
        "\noverload: closed-loop {:.0}/s, offered {:.0}/s → shed rate {:.1}% \
         (mean retry hint {:.1} ms)",
        overload.closed_loop_eps,
        overload.offered_eps,
        100.0 * overload.shed_rate,
        overload.mean_retry_hint_ms
    );
    assert!(overload.shed > 0, "2x overload must trip the shedding tier");

    let out = Output {
        host: host_info(),
        quick,
        recovery,
        clean_run,
        crash_run,
        overload,
    };
    write_json("BENCH_recovery", &out);
}
