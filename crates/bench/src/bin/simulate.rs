//! `simulate` — the configurable end-to-end simulator CLI.
//!
//! Runs one experimental cell of the paper's evaluation with every knob
//! on the command line, printing a human-readable report and (optionally)
//! machine-readable JSON. This is the "drive it yourself" entry point the
//! figure binaries are specializations of.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin simulate -- \
//!     --modes 9 --groups 11 --algorithm forgy --threshold 0.15 \
//!     --events 10000 --delivery dense --seed 1903 --json
//! ```

use pubsub_bench::{build_broker, build_testbed, drive, sample_events, scenario, Seeds};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::DeliveryMode;
use pubsub_workload::Modes;

#[derive(Debug)]
struct Args {
    modes: Modes,
    groups: usize,
    algorithm: ClusteringAlgorithm,
    threshold: f64,
    events: usize,
    delivery: String,
    seed: u64,
    json: bool,
}

const USAGE: &str = "\
usage: simulate [options]
  --modes <1|4|9>          publication hot spots (default 9)
  --groups <n>             multicast groups (default 11)
  --algorithm <forgy|batch|pairwise|mst>   clustering (default forgy)
  --threshold <t>          distribution threshold in [0,1] (default 0.15)
  --events <n>             publications to simulate (default 10000)
  --delivery <dense|sparse|alm>            multicast flavor (default dense)
  --seed <n>               master seed (default 1903)
  --json                   also print the report as JSON
  --help                   show this message";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        modes: Modes::Nine,
        groups: 11,
        algorithm: ClusteringAlgorithm::ForgyKMeans,
        threshold: 0.15,
        events: 10_000,
        delivery: "dense".into(),
        seed: 1903,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--modes" => {
                args.modes = match value("--modes")?.as_str() {
                    "1" => Modes::One,
                    "4" => Modes::Four,
                    "9" => Modes::Nine,
                    other => return Err(format!("unknown mode count {other}")),
                }
            }
            "--groups" => {
                args.groups = value("--groups")?
                    .parse()
                    .map_err(|e| format!("bad --groups: {e}"))?
            }
            "--algorithm" => {
                args.algorithm = match value("--algorithm")?.as_str() {
                    "forgy" => ClusteringAlgorithm::ForgyKMeans,
                    "batch" => ClusteringAlgorithm::BatchKMeans,
                    "pairwise" => ClusteringAlgorithm::PairwiseGrouping,
                    "mst" => ClusteringAlgorithm::MinimumSpanningTree,
                    other => return Err(format!("unknown algorithm {other}")),
                }
            }
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?
            }
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("bad --events: {e}"))?
            }
            "--delivery" => args.delivery = value("--delivery")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let seeds = Seeds {
        topology: args.seed,
        subscriptions: args.seed.wrapping_add(100),
        publications: args.seed.wrapping_add(200),
    };
    let testbed = build_testbed(seeds);
    let model = scenario(args.modes);
    let delivery = match args.delivery.as_str() {
        "dense" => DeliveryMode::DenseMode,
        "sparse" => DeliveryMode::SparseMode {
            rendezvous: testbed.topology.transit_nodes()[0],
        },
        "alm" => DeliveryMode::ApplicationLevel,
        other => {
            eprintln!("error: unknown delivery mode {other}");
            std::process::exit(2);
        }
    };
    let mut broker = build_broker(
        &testbed,
        &model,
        args.algorithm,
        args.groups,
        args.threshold,
        delivery,
    );
    let events = sample_events(&model, args.events, seeds.publications);
    let report = drive(&mut broker, &events);

    println!(
        "== simulate: {} | {} groups | {} | t={} | {} ==",
        args.modes, args.groups, args.algorithm, args.threshold, args.delivery
    );
    println!(
        "topology: {} nodes; subscriptions: {}; groups sized {:?}",
        testbed.topology.stats().nodes,
        testbed.subscriptions.len(),
        broker.groups().sizes()
    );
    println!("messages    {:>8}", report.messages);
    println!("  dropped   {:>8}", report.dropped);
    println!("  unicast   {:>8}", report.unicasts);
    println!("  multicast {:>8}", report.multicasts);
    println!("wasted deliveries {:>8}", report.wasted_deliveries);
    println!("scheme cost  {:>14.0}", report.scheme_cost);
    println!("unicast cost {:>14.0}", report.unicast_cost);
    println!("ideal cost   {:>14.0}", report.ideal_cost);
    println!(
        "improvement over unicast: {:.1}%",
        report.improvement_percent()
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    }
}
