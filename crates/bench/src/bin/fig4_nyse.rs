//! Figure 4: the trading-day data analysis (§5.1).
//!
//! (a) the distribution of prices normalized by opening price, with a
//!     normal fit;
//! (b) trades-per-stock against popularity rank (log-log), with a
//!     Zipf-slope fit;
//! (c) the distribution of trade amounts, with a Pareto-tail fit.
//!
//! The paper used the proprietary NYSE feed of 1999-09-24; we run the same
//! analysis on the synthetic trading day (see DESIGN.md substitutions).
//! Writes `results/fig4_nyse.json`.

use pubsub_bench::write_json;
use pubsub_workload::nyse::NyseConfig;
use pubsub_workload::stats::{
    fit_loglog_slope, fit_normal, fit_pareto_alpha, rank_frequency, Histogram,
};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4 {
    trades: usize,
    stocks: usize,
    price_fit_mean: f64,
    price_fit_sd: f64,
    price_histogram: Vec<(f64, u64)>,
    zipf_slope: f64,
    rank_frequency_head: Vec<(usize, u64)>,
    pareto_alpha: f64,
    amount_p50: f64,
    amount_p99: f64,
}

fn main() {
    let day = NyseConfig::riabov_day()
        .generate(1999)
        .expect("preset is valid");
    println!("== Figure 4: synthetic NYSE trading day ==");
    println!(
        "{} trades over {} stocks\n",
        day.trades().len(),
        day.stock_count()
    );

    // (a) normalized price distribution.
    let prices: Vec<f64> = day.all_prices().collect();
    let (mean, sd) = fit_normal(&prices).expect("many trades");
    let mut hist = Histogram::new(0.8, 1.2, 25).expect("static bounds");
    hist.extend(prices.iter().copied());
    println!("(a) normalized price distribution (fit: N({mean:.4}, {sd:.4}))");
    print!("{}", hist.ascii(40));
    println!();

    // (b) popularity rank vs trade count.
    let rf = rank_frequency(&day.trades_per_stock());
    let points: Vec<(f64, f64)> = rf
        .iter()
        .take(200)
        .map(|&(r, c)| (r as f64, c as f64))
        .collect();
    let slope = fit_loglog_slope(&points).expect("many stocks");
    println!("(b) trades per stock vs popularity rank (log-log slope {slope:.3}, Zipf-like ~ -1)");
    for &(r, c) in rf.iter().take(10) {
        println!("    rank {r:>3}: {c:>7} trades");
    }
    println!("    ...");
    println!();

    // (c) trade amount distribution.
    let amounts: Vec<f64> = day.all_amounts().collect();
    let alpha = fit_pareto_alpha(&amounts).expect("many trades");
    let mut sorted = amounts.clone();
    sorted.sort_unstable_by(f64::total_cmp);
    let p50 = sorted[sorted.len() / 2];
    let p99 = sorted[sorted.len() * 99 / 100];
    println!("(c) trade amount distribution (Pareto tail fit alpha = {alpha:.3})");
    println!(
        "    median ${p50:.0}   p99 ${p99:.0}   max ${:.0}",
        sorted[sorted.len() - 1]
    );

    let result = Fig4 {
        trades: day.trades().len(),
        stocks: day.stock_count(),
        price_fit_mean: mean,
        price_fit_sd: sd,
        price_histogram: (0..hist.counts().len())
            .map(|i| (hist.bin_center(i), hist.counts()[i]))
            .collect(),
        zipf_slope: slope,
        rank_frequency_head: rf.into_iter().take(50).collect(),
        pareto_alpha: alpha,
        amount_p50: p50,
        amount_p99: p99,
    };
    write_json("fig4_nyse", &result);
    println!("\nwrote results/fig4_nyse.json");
}
