//! Open-loop serving benchmark: publish→deliver latency percentiles of
//! the staged broker under bursty load from ~10⁵ simulated clients.
//!
//! Unlike the closed-loop benches (which publish as fast as the broker
//! drains and therefore can never observe queueing), this run fixes the
//! arrival schedule in advance with the workload crate's on/off
//! modulated Poisson generator and measures every event's latency from
//! its *scheduled* arrival instant — the standard open-loop discipline
//! that makes coordinated omission impossible.
//!
//! The run:
//!
//! 1. builds the paper's testbed broker (1000 stock subscriptions,
//!    nine-mode publications);
//! 2. calibrates a closed-loop throughput figure *through the staged
//!    server itself, at the configured executor count* — concurrent
//!    executors change capacity, so the probe must run the same
//!    concurrency as the measured run — and offers ~50% of it
//!    open-loop, so the system is loaded but stable and the tail
//!    reflects burstiness, not unbounded overload;
//! 3. generates a bursty arrival schedule across the simulated clients
//!    (default 100 000 for 10 s) and replays it against the staged
//!    server's in-process [`pubsub_server::IngestHandle`] — the TCP
//!    front is bypassed, as a single host cannot hold 10⁵ real sockets;
//! 4. reports p50/p99/p999 publish→deliver latency, sustained
//!    events/sec, admission-control counts and per-stage latency
//!    medians (including the queue-wait / batcher-residency split of
//!    the ingest stage), writing `BENCH_serving.json` in the current
//!    directory with the uniform host header (core count, SIMD level).
//!
//! With `--quick` the run is the CI gate instead: a short calibrate +
//! replay at *every* executor count in {1, 2, 3, 7}, each of which must
//! deliver a finite p99, a positive sustained rate and zero lost acks
//! (delivered + failed == accepted), or the process exits non-zero. On
//! a single-core host the executor sweep still runs — oversubscribed
//! threads must stay correct — but multi-core throughput expectations
//! are skipped loudly rather than gated.

use std::time::{Duration, Instant};

use serde::Serialize;

use pubsub_bench::{
    build_broker, build_testbed, host_info, sample_events, scenario, HostInfo, Seeds, Testbed,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::{DeliveryMode, MetricsSnapshot};
use pubsub_geom::Point;
use pubsub_server::{LatencySink, RejectReason, ServingConfig, StagedServer};
use pubsub_workload::{Modes, OpenLoopConfig, PublicationModel};

#[derive(Debug, Serialize)]
struct Output {
    /// Host core count and runtime kernel level, uniform across every
    /// `BENCH_*.json` header.
    host: HostInfo,
    /// Concurrent pipeline executors the staged server actually ran
    /// (the resolved count, never 0).
    executors: usize,
    clients: usize,
    duration_s: f64,
    burst_ratio: f64,
    /// Closed-loop staged-server throughput (at the same executor
    /// count) the offered rate was calibrated against.
    closed_loop_events_per_sec: f64,
    /// The open-loop offered rate (~50% of closed-loop, clamped).
    offered_events_per_sec: f64,
    /// Scheduled arrivals actually submitted.
    offered: usize,
    accepted: u64,
    rejected: u64,
    delivered: u64,
    failed: u64,
    /// Delivered events over the whole wall-clock of the replay
    /// (including the shutdown drain).
    sustained_events_per_sec: f64,
    /// Publish→deliver latency percentiles, from the scheduled arrival
    /// instant to the sink record.
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    /// Per-stage latency medians from the broker's own histograms.
    /// Ingest is the submission→executor-dequeue total; the next two
    /// split it into time buffered in the shard batcher and time queued
    /// behind the dispatcher.
    stage_ingest_p50_ns: f64,
    stage_batcher_p50_ns: f64,
    stage_queue_wait_p50_ns: f64,
    stage_pipeline_p50_ns: f64,
    stage_egress_p50_ns: f64,
    ingest_queue_max_depth: u64,
    ingest_rejected: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One full calibrate-then-replay cycle at a fixed executor count.
fn run_cell(
    testbed: &Testbed,
    model: &PublicationModel,
    pool: &[Point],
    executors: Option<usize>,
    clients: usize,
    duration_s: f64,
    probe_window: Duration,
) -> Output {
    let seeds = Seeds::default();
    let resolved = pubsub_parallel::effective_threads(executors);

    // Few shards, 2 ms flush ceiling: the single replay thread is the
    // only producer (no shard contention to spread), and the adaptive
    // deadline shrinks toward its sub-millisecond floor whenever the
    // ingest queue is shallow — the ceiling only binds under backlog.
    let config = ServingConfig {
        ingest_capacity: 256,
        egress_capacity: 256,
        max_batch: 256,
        flush_interval: Duration::from_millis(2),
        threads: None,
        executors,
        shards: 4,
    };

    // Calibrate: drive the staged server itself closed-loop — submit as
    // fast as admission control accepts, retrying on backpressure — and
    // take the delivered rate as staged capacity, then offer half of it
    // open-loop. The probe runs the same `executors` as the measured
    // run: capacity is a property of the concurrency level, and
    // calibrating at a different one would offer the wrong load.
    // Calibrating against the raw broker's `publish_batch` instead
    // overestimates by ~2x: the staged path also pays batcher flushes,
    // queue handoffs, outcome materialization and per-record egress
    // stamping, and would sit in permanent saturation. The clamps keep
    // the run meaningful on both weak CI runners and large hosts (the
    // single replay thread tops out well above the upper bound).
    let broker = build_broker(
        testbed,
        model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.15,
        DeliveryMode::DenseMode,
    );
    let probe_sink = LatencySink::new();
    let probe = StagedServer::start(broker, config, Box::new(probe_sink.clone()));
    let probe_handle = probe.handle();
    let t0 = Instant::now();
    let mut submitted = 0u64;
    while t0.elapsed() < probe_window {
        let event = pool[submitted as usize % pool.len()].clone();
        match probe_handle.submit_now((submitted % clients as u64) as u32, submitted, event) {
            Ok(()) => submitted += 1,
            Err(RejectReason::Shed { .. } | RejectReason::QueueFull) => {
                std::thread::sleep(Duration::from_micros(50));
            }
            Err(r) => unreachable!("probe submit rejected: {r}"),
        }
    }
    let (_probe_broker, probe_stats) = probe.stop();
    let closed_eps = probe_stats.delivered as f64 / t0.elapsed().as_secs_f64();
    let offered_rate = (0.5 * closed_eps).clamp(5_000.0, 400_000.0);

    // A fresh broker for the measured run, so its metrics histograms
    // don't inherit the probe's (the broker build is deterministic).
    let broker = build_broker(
        testbed,
        model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.15,
        DeliveryMode::DenseMode,
    );

    // At 50% mean load, a 2x burst ratio puts the burst-state rate right
    // at staged capacity: the system is stable in the long run and the
    // p99/p999 show what the bursts cost. (The 4x preset would run
    // bursts at 2x capacity and queue even the median event.)
    let schedule = OpenLoopConfig {
        burst_ratio: 2.0,
        ..OpenLoopConfig::bursty(clients, offered_rate, duration_s)
    };
    let arrivals = schedule
        .generate(seeds.publications)
        .expect("preset schedule is valid");

    println!(
        "open-loop serving [{resolved} executor(s)]: {clients} clients, {duration_s:.0} s, \
         {offered_rate:.0} events/s offered ({:.0}% of staged closed-loop {closed_eps:.0}), \
         burst ratio {:.0}x",
        100.0 * offered_rate / closed_eps,
        schedule.burst_ratio,
    );

    let sink = LatencySink::new();
    let server = StagedServer::start(broker, config, Box::new(sink.clone()));
    let handle = server.handle();

    // Replay the schedule. A 20 ms lead keeps the first arrivals from
    // being late before the stage threads are warm; past-due arrivals
    // submit immediately (their latency then includes the lag — the
    // open-loop point).
    let start = Instant::now() + Duration::from_millis(20);
    let mut rejected_closed = 0u64;
    for (i, a) in arrivals.iter().enumerate() {
        let scheduled = start + Duration::from_nanos(a.at_ns);
        loop {
            let now = Instant::now();
            if now >= scheduled {
                break;
            }
            let gap = scheduled - now;
            if gap > Duration::from_micros(300) {
                std::thread::sleep(gap - Duration::from_micros(200));
            } else {
                std::hint::spin_loop();
            }
        }
        let event = pool[i % pool.len()].clone();
        match handle.submit(a.client, i as u64, event, scheduled) {
            Ok(()) | Err(RejectReason::Shed { .. } | RejectReason::QueueFull) => {}
            Err(RejectReason::Closed) => rejected_closed += 1,
            Err(RejectReason::Malformed) => unreachable!("pool events match the space"),
        }
    }
    let (broker, stats) = server.stop();
    let elapsed = (Instant::now() - start).as_secs_f64();
    assert_eq!(rejected_closed, 0, "server closed mid-replay");

    let mut latencies = sink.take();
    latencies.sort_unstable();
    let snapshot: MetricsSnapshot = broker.metrics_snapshot();
    let counters = snapshot.pipeline;

    let delivered = stats.delivered;
    let sustained = delivered as f64 / elapsed;
    let (p50, p99, p999) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        percentile(&latencies, 0.999),
    );

    println!(
        "offered {} / accepted {} / rejected {} / delivered {} / failed {}",
        arrivals.len(),
        stats.accepted,
        stats.rejected,
        delivered,
        stats.failed
    );
    println!("sustained: {sustained:.0} events/s over {elapsed:.1} s wall-clock");
    println!(
        "publish→deliver latency: p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        p999 as f64 / 1e6
    );
    println!(
        "stage medians: ingest {:.3} ms (batcher {:.3} + queue-wait {:.3}), \
         pipeline {:.3} ms, egress {:.3} ms; queue max depth {}, rejected {}",
        counters.stage_ingest.quantile_ns(0.5) / 1e6,
        counters.stage_batcher.quantile_ns(0.5) / 1e6,
        counters.stage_queue_wait.quantile_ns(0.5) / 1e6,
        counters.stage_pipeline.quantile_ns(0.5) / 1e6,
        counters.stage_egress.quantile_ns(0.5) / 1e6,
        counters.ingest_queue_max_depth,
        counters.ingest_rejected
    );

    // Every accepted event must have exactly one fate at the sink.
    assert_eq!(
        delivered + stats.failed,
        stats.accepted,
        "accepted events must all reach the sink"
    );

    Output {
        host: host_info(),
        executors: resolved,
        clients,
        duration_s,
        burst_ratio: schedule.burst_ratio,
        closed_loop_events_per_sec: closed_eps,
        offered_events_per_sec: offered_rate,
        offered: arrivals.len(),
        accepted: stats.accepted,
        rejected: stats.rejected,
        delivered,
        failed: stats.failed,
        sustained_events_per_sec: sustained,
        p50_ns: p50,
        p99_ns: p99,
        p999_ns: p999,
        p50_ms: p50 as f64 / 1e6,
        p99_ms: p99 as f64 / 1e6,
        p999_ms: p999 as f64 / 1e6,
        stage_ingest_p50_ns: counters.stage_ingest.quantile_ns(0.5),
        stage_batcher_p50_ns: counters.stage_batcher.quantile_ns(0.5),
        stage_queue_wait_p50_ns: counters.stage_queue_wait.quantile_ns(0.5),
        stage_pipeline_p50_ns: counters.stage_pipeline.quantile_ns(0.5),
        stage_egress_p50_ns: counters.stage_egress.quantile_ns(0.5),
        ingest_queue_max_depth: counters.ingest_queue_max_depth,
        ingest_rejected: counters.ingest_rejected,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let host = host_info();

    let seeds = Seeds::default();
    let testbed = build_testbed(seeds);
    let model = scenario(Modes::Nine);
    let pool = sample_events(&model, 4096, seeds.publications.wrapping_add(1));

    if quick {
        // The CI gate: every executor count must stay correct — finite
        // tail, positive rate, and the exact ack partition (no lost
        // records) — even oversubscribed on a small host.
        if host.host_cores < 2 {
            println!(
                "multi-core throughput targets SKIPPED: host has {} core(s); \
                 executor counts are gated for correctness (finite p99, zero lost \
                 acks) but concurrent speedup cannot be demonstrated here",
                host.host_cores
            );
        }
        for executors in [1usize, 2, 3, 7] {
            let out = run_cell(
                &testbed,
                &model,
                &pool,
                Some(executors),
                10_000,
                2.5,
                Duration::from_millis(500),
            );
            let p99_ok = out.delivered > 0 && out.p99_ns > 0;
            let eps_ok =
                out.sustained_events_per_sec > 0.0 && out.sustained_events_per_sec.is_finite();
            let acks_ok = out.delivered + out.failed == out.accepted;
            if !p99_ok || !eps_ok || !acks_ok {
                eprintln!(
                    "FAIL: serving gate at {executors} executor(s): p99 = {} ns over {} \
                     deliveries, sustained = {:.0} events/s, accepted {} vs delivered {} + \
                     failed {}",
                    out.p99_ns,
                    out.delivered,
                    out.sustained_events_per_sec,
                    out.accepted,
                    out.delivered,
                    out.failed
                );
                std::process::exit(1);
            }
            println!(
                "serving gate passed at {executors} executor(s): finite p99 ({:.3} ms), \
                 positive sustained rate, zero lost acks",
                out.p99_ms
            );
        }
        return;
    }

    // The measured run: all cores. On a 1-core host this degenerates to
    // a single executor — say so loudly, the JSON records the count.
    if host.host_cores < 2 {
        println!(
            "NOTE: 1-core host — the pipeline runs a single executor; \
             multi-core serving targets are not measurable in this BENCH_serving.json"
        );
    }
    let out = run_cell(
        &testbed,
        &model,
        &pool,
        None,
        100_000,
        10.0,
        Duration::from_millis(2_500),
    );
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    if let Err(e) = std::fs::write("BENCH_serving.json", &json) {
        eprintln!("warning: could not write BENCH_serving.json: {e}");
    }
}
