//! Open-loop serving benchmark: publish→deliver latency percentiles of
//! the staged broker under bursty load from ~10⁵ simulated clients.
//!
//! Unlike the closed-loop benches (which publish as fast as the broker
//! drains and therefore can never observe queueing), this run fixes the
//! arrival schedule in advance with the workload crate's on/off
//! modulated Poisson generator and measures every event's latency from
//! its *scheduled* arrival instant — the standard open-loop discipline
//! that makes coordinated omission impossible.
//!
//! The run:
//!
//! 1. builds the paper's testbed broker (1000 stock subscriptions,
//!    nine-mode publications);
//! 2. calibrates a closed-loop `publish_batch` throughput figure and
//!    offers ~50% of it open-loop, so the system is loaded but stable
//!    and the tail reflects burstiness, not unbounded overload;
//! 3. generates a bursty arrival schedule across the simulated clients
//!    (default 100 000; `--quick` uses 10 000 clients for 5 s) and
//!    replays it against the staged server's in-process
//!    [`pubsub_server::IngestHandle`] — the TCP front is bypassed, as a
//!    single host cannot hold 10⁵ real sockets;
//! 4. reports p50/p99/p999 publish→deliver latency, sustained
//!    events/sec, admission-control counts and per-stage latency
//!    medians, writing `BENCH_serving.json` in the current directory.
//!
//! With `--quick` the run doubles as the CI gate: the p99 must be
//! finite (some events were delivered end to end) and the sustained
//! rate positive, or the process exits non-zero.

use std::time::{Duration, Instant};

use serde::Serialize;

use pubsub_bench::{build_broker, build_testbed, sample_events, scenario, Seeds};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::{DeliveryMode, MetricsSnapshot};
use pubsub_server::{LatencySink, RejectReason, ServingConfig, StagedServer};
use pubsub_workload::{Modes, OpenLoopConfig};

#[derive(Debug, Serialize)]
struct Output {
    clients: usize,
    duration_s: f64,
    burst_ratio: f64,
    /// Closed-loop `publish_batch` throughput the offered rate was
    /// calibrated against.
    closed_loop_events_per_sec: f64,
    /// The open-loop offered rate (~50% of closed-loop, clamped).
    offered_events_per_sec: f64,
    /// Scheduled arrivals actually submitted.
    offered: usize,
    accepted: u64,
    rejected: u64,
    delivered: u64,
    failed: u64,
    /// Delivered events over the whole wall-clock of the replay
    /// (including the shutdown drain).
    sustained_events_per_sec: f64,
    /// Publish→deliver latency percentiles, from the scheduled arrival
    /// instant to the sink record.
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    /// Per-stage latency medians from the broker's own histograms.
    stage_ingest_p50_ns: f64,
    stage_pipeline_p50_ns: f64,
    stage_egress_p50_ns: f64,
    ingest_queue_max_depth: u64,
    ingest_rejected: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let clients = if quick { 10_000 } else { 100_000 };
    let duration_s = if quick { 5.0 } else { 10.0 };

    let seeds = Seeds::default();
    let testbed = build_testbed(seeds);
    let model = scenario(Modes::Nine);
    let broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.15,
        DeliveryMode::DenseMode,
    );

    // Few shards, 2 ms flush: the single replay thread is the only
    // producer (no shard contention to spread), and at the offered
    // rates this yields pipeline batches of tens of events instead of
    // deadline-flushed slivers that drown in per-batch fan-out.
    let config = ServingConfig {
        ingest_capacity: 256,
        egress_capacity: 256,
        max_batch: 256,
        flush_interval: Duration::from_millis(2),
        threads: None,
        shards: 4,
    };

    // Calibrate: drive the staged server itself closed-loop — submit as
    // fast as admission control accepts, retrying on backpressure — and
    // take the delivered rate as staged capacity, then offer half of it
    // open-loop. Calibrating against the raw broker's `publish_batch`
    // instead overestimates by ~2x: the staged path also pays batcher
    // flushes, queue handoffs, outcome materialization and per-record
    // egress stamping, and would sit in permanent saturation. The
    // clamps keep the run meaningful on both weak CI runners and large
    // hosts (the single replay thread tops out well above the upper
    // bound).
    let probe_sink = LatencySink::new();
    let probe = StagedServer::start(broker, config, Box::new(probe_sink.clone()));
    let probe_handle = probe.handle();
    let pool = sample_events(&model, 4096, seeds.publications.wrapping_add(1));
    let probe_window = Duration::from_millis(if quick { 1_000 } else { 2_500 });
    let t0 = Instant::now();
    let mut submitted = 0u64;
    while t0.elapsed() < probe_window {
        let event = pool[submitted as usize % pool.len()].clone();
        match probe_handle.submit_now((submitted % clients as u64) as u32, submitted, event) {
            Ok(()) => submitted += 1,
            Err(RejectReason::QueueFull) => std::thread::sleep(Duration::from_micros(50)),
            Err(r) => unreachable!("probe submit rejected: {r}"),
        }
    }
    let (_probe_broker, probe_stats) = probe.stop();
    let closed_eps = probe_stats.delivered as f64 / t0.elapsed().as_secs_f64();
    let offered_rate = (0.5 * closed_eps).clamp(5_000.0, 400_000.0);

    // A fresh broker for the measured run, so its metrics histograms
    // don't inherit the probe's (the broker build is deterministic).
    let broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.15,
        DeliveryMode::DenseMode,
    );

    // At 50% mean load, a 2x burst ratio puts the burst-state rate right
    // at staged capacity: the system is stable in the long run and the
    // p99/p999 show what the bursts cost. (The 4x preset would run
    // bursts at 2x capacity and queue even the median event.)
    let schedule = OpenLoopConfig {
        burst_ratio: 2.0,
        ..OpenLoopConfig::bursty(clients, offered_rate, duration_s)
    };
    let arrivals = schedule
        .generate(seeds.publications)
        .expect("preset schedule is valid");

    println!(
        "open-loop serving: {clients} clients, {duration_s:.0} s, {:.0} events/s offered \
         ({:.0}% of staged closed-loop {closed_eps:.0}), burst ratio {:.0}x",
        offered_rate,
        100.0 * offered_rate / closed_eps,
        schedule.burst_ratio,
    );

    let sink = LatencySink::new();
    let server = StagedServer::start(broker, config, Box::new(sink.clone()));
    let handle = server.handle();

    // Replay the schedule. A 20 ms lead keeps the first arrivals from
    // being late before the stage threads are warm; past-due arrivals
    // submit immediately (their latency then includes the lag — the
    // open-loop point).
    let start = Instant::now() + Duration::from_millis(20);
    let mut rejected_closed = 0u64;
    for (i, a) in arrivals.iter().enumerate() {
        let scheduled = start + Duration::from_nanos(a.at_ns);
        loop {
            let now = Instant::now();
            if now >= scheduled {
                break;
            }
            let gap = scheduled - now;
            if gap > Duration::from_micros(300) {
                std::thread::sleep(gap - Duration::from_micros(200));
            } else {
                std::hint::spin_loop();
            }
        }
        let event = pool[i % pool.len()].clone();
        match handle.submit(a.client, i as u64, event, scheduled) {
            Ok(()) | Err(RejectReason::QueueFull) => {}
            Err(RejectReason::Closed) => rejected_closed += 1,
            Err(RejectReason::Malformed) => unreachable!("pool events match the space"),
        }
    }
    let (broker, stats) = server.stop();
    let elapsed = (Instant::now() - start).as_secs_f64();
    assert_eq!(rejected_closed, 0, "server closed mid-replay");

    let mut latencies = sink.take();
    latencies.sort_unstable();
    let snapshot: MetricsSnapshot = broker.metrics_snapshot();
    let counters = snapshot.pipeline;

    let delivered = stats.delivered;
    let sustained = delivered as f64 / elapsed;
    let (p50, p99, p999) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        percentile(&latencies, 0.999),
    );

    println!(
        "offered {} / accepted {} / rejected {} / delivered {} / failed {}",
        arrivals.len(),
        stats.accepted,
        stats.rejected,
        delivered,
        stats.failed
    );
    println!("sustained: {sustained:.0} events/s over {elapsed:.1} s wall-clock");
    println!(
        "publish→deliver latency: p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        p999 as f64 / 1e6
    );
    println!(
        "stage medians: ingest {:.3} ms, pipeline {:.3} ms, egress {:.3} ms; \
         queue max depth {}, rejected {}",
        counters.stage_ingest.quantile_ns(0.5) / 1e6,
        counters.stage_pipeline.quantile_ns(0.5) / 1e6,
        counters.stage_egress.quantile_ns(0.5) / 1e6,
        counters.ingest_queue_max_depth,
        counters.ingest_rejected
    );

    let out = Output {
        clients,
        duration_s,
        burst_ratio: schedule.burst_ratio,
        closed_loop_events_per_sec: closed_eps,
        offered_events_per_sec: offered_rate,
        offered: arrivals.len(),
        accepted: stats.accepted,
        rejected: stats.rejected,
        delivered,
        failed: stats.failed,
        sustained_events_per_sec: sustained,
        p50_ns: p50,
        p99_ns: p99,
        p999_ns: p999,
        p50_ms: p50 as f64 / 1e6,
        p99_ms: p99 as f64 / 1e6,
        p999_ms: p999 as f64 / 1e6,
        stage_ingest_p50_ns: counters.stage_ingest.quantile_ns(0.5),
        stage_pipeline_p50_ns: counters.stage_pipeline.quantile_ns(0.5),
        stage_egress_p50_ns: counters.stage_egress.quantile_ns(0.5),
        ingest_queue_max_depth: counters.ingest_queue_max_depth,
        ingest_rejected: counters.ingest_rejected,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    if let Err(e) = std::fs::write("BENCH_serving.json", &json) {
        eprintln!("warning: could not write BENCH_serving.json: {e}");
    }

    // Every accepted event must have exactly one fate at the sink.
    assert_eq!(
        delivered + stats.failed,
        stats.accepted,
        "accepted events must all reach the sink"
    );

    if quick {
        let p99_ok = !latencies.is_empty() && p99 > 0;
        let eps_ok = sustained > 0.0 && sustained.is_finite();
        if !p99_ok || !eps_ok {
            eprintln!(
                "FAIL: serving gate: p99 = {p99} ns over {} deliveries, \
                 sustained = {sustained:.0} events/s",
                latencies.len()
            );
            std::process::exit(1);
        }
        println!(
            "serving gate passed: finite p99 ({:.3} ms) and positive sustained rate",
            p99 as f64 / 1e6
        );
    }
}
