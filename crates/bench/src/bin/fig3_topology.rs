//! Figure 3: the generated network topology.
//!
//! The paper shows the GT-ITM-generated 600-node transit-stub network as a
//! picture; this binary reports the same structure as numbers — block /
//! transit / stub composition, connectivity, degree distribution — and
//! writes `results/fig3_topology.json`.

use pubsub_bench::{build_testbed, write_json, Seeds};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3 {
    stats: pubsub_netsim::TopologyStats,
    per_block: Vec<BlockRow>,
    degree_histogram: Vec<(usize, usize)>,
}

#[derive(Serialize)]
struct BlockRow {
    block: usize,
    transit_nodes: usize,
    stubs: usize,
    stub_nodes: usize,
}

fn main() {
    let seeds = Seeds::default();
    let testbed = build_testbed(seeds);
    let topo = &testbed.topology;
    let stats = topo.stats();

    println!("== Figure 3: generated transit-stub topology ==");
    println!(
        "(GT-ITM model: 3 transit blocks x ~5 transit nodes, 2 stubs/transit, ~20 nodes/stub)"
    );
    println!();
    println!("nodes            {:>6}", stats.nodes);
    println!("edges            {:>6}", stats.edges);
    println!("transit blocks   {:>6}", stats.blocks);
    println!("transit nodes    {:>6}", stats.transit_nodes);
    println!("stub networks    {:>6}", stats.stubs);
    println!("stub nodes       {:>6}", stats.stub_nodes);
    println!("avg stub size    {:>9.2}", stats.avg_stub_size);
    println!("avg degree       {:>9.2}", stats.avg_degree);
    println!("connected        {:>6}", stats.connected);
    println!();

    let mut per_block = Vec::new();
    println!(
        "{:>6} {:>14} {:>6} {:>11}",
        "block", "transit nodes", "stubs", "stub nodes"
    );
    for b in 0..stats.blocks {
        let transit = topo.transit_nodes_of_block(b).len();
        let stubs = topo.stubs_of_block(b);
        let stub_nodes: usize = stubs.iter().map(|&i| topo.stubs()[i].nodes.len()).sum();
        println!("{b:>6} {transit:>14} {:>6} {stub_nodes:>11}", stubs.len());
        per_block.push(BlockRow {
            block: b,
            transit_nodes: transit,
            stubs: stubs.len(),
            stub_nodes,
        });
    }

    // Degree histogram.
    let mut degrees = std::collections::BTreeMap::new();
    for n in topo.graph().node_ids() {
        *degrees.entry(topo.graph().degree(n)).or_insert(0usize) += 1;
    }
    println!();
    println!("degree histogram:");
    let max = degrees.values().copied().max().unwrap_or(1);
    for (&d, &count) in &degrees {
        println!("{d:>4} | {:<50} {count}", "#".repeat(count * 50 / max));
    }

    write_json(
        "fig3_topology",
        &Fig3 {
            stats,
            per_block,
            degree_histogram: degrees.into_iter().collect(),
        },
    );
    // The picture itself: render with `dot -Tsvg -Kneato`.
    if std::fs::create_dir_all("results").is_ok() {
        match std::fs::write("results/fig3_topology.dot", topo.to_dot()) {
            Ok(()) => {
                println!("\nwrote results/fig3_topology.json and .dot (render with graphviz)")
            }
            Err(e) => eprintln!("warning: could not write fig3_topology.dot: {e}"),
        }
    }
}
