//! Adaptive per-group thresholds (the paper's §6 future work) vs the best
//! single global threshold.
//!
//! Phase 1 trains an `AdaptiveController` on one event stream: it
//! estimates each group's break-even interest ratio
//! `t*_q = m_q / (ū_q · |M_q|)` from observed costs. Phase 2 evaluates on
//! a *fresh* stream, comparing the global-threshold sweep's best value
//! against the learned per-group thresholds.
//!
//! Writes `results/ablation_adaptive.json`. Override the event counts
//! with `PUBSUB_EVENTS` (default 6000 per phase).

use pubsub_bench::{
    build_broker, build_testbed, drive, event_count, sample_events, scenario, write_json, Seeds,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::{AdaptiveConfig, AdaptiveController, DeliveryMode};
use pubsub_workload::Modes;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    global_sweep: Vec<(f64, f64)>,
    best_global: (f64, f64),
    adaptive_improvement: f64,
    groups_adapted: usize,
    per_group: Vec<pubsub_core::GroupEfficiency>,
}

fn main() {
    let n = event_count(6000);
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let train = sample_events(&model, n, 101);
    let eval = sample_events(&model, n, 202);
    let groups = 11usize;

    println!("== Adaptive per-group thresholds (9 modes, {groups} groups, {n} events/phase) ==\n");

    // Baseline: sweep a global threshold, evaluated on the eval stream.
    let mut broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        groups,
        0.15,
        DeliveryMode::DenseMode,
    );
    let mut global_sweep = Vec::new();
    println!("global threshold sweep (eval stream):");
    for t in [0.0, 0.05, 0.10, 0.15, 0.20, 0.30] {
        broker.set_threshold(t).expect("valid threshold");
        broker.policy_mut().clear_group_thresholds();
        let report = drive(&mut broker, &eval);
        println!(
            "  t = {:>4.0}%: {:>6.1}%",
            t * 100.0,
            report.improvement_percent()
        );
        global_sweep.push((t, report.improvement_percent()));
    }
    let best_global = global_sweep
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty sweep");

    // Train the controller at the paper's recommended global threshold.
    broker.set_threshold(0.15).expect("valid threshold");
    broker.policy_mut().clear_group_thresholds();
    let mut controller = AdaptiveController::for_broker(&broker, AdaptiveConfig::default());
    broker.reset_report();
    for e in &train {
        let outcome = broker.publish(e).expect("valid event");
        controller.observe(&outcome);
    }
    let per_group = controller.tracker().summarize(&broker);
    println!("\nlearned per-group break-even ratios:");
    println!(
        "{:>6} {:>6} {:>7} {:>11} {:>11} {:>12}",
        "group", "size", "hits", "avg |s|/|M|", "break-even", "m_q"
    );
    for g in &per_group {
        println!(
            "{:>6} {:>6} {:>7} {:>10.1}% {:>10.1}% {:>12.1}",
            g.group,
            g.size,
            g.hits,
            g.avg_interest_ratio * 100.0,
            g.break_even_ratio * 100.0,
            g.group_multicast_cost
        );
    }

    // Apply and evaluate on the fresh stream.
    let applied = controller.apply(&mut broker).expect("clamped thresholds");
    let adaptive_report = drive(&mut broker, &eval);
    println!("\nadapted {applied} of {groups} groups");
    println!(
        "best global threshold: t = {:.0}% -> {:.1}% improvement",
        best_global.0 * 100.0,
        best_global.1
    );
    println!(
        "adaptive per-group thresholds -> {:.1}% improvement",
        adaptive_report.improvement_percent()
    );

    write_json(
        "ablation_adaptive",
        &Out {
            global_sweep,
            best_global,
            adaptive_improvement: adaptive_report.improvement_percent(),
            groups_adapted: applied,
            per_group,
        },
    );
    println!("\nwrote results/ablation_adaptive.json");
}
