//! Fault-tolerance benchmark: what do link failures cost the publish
//! path, and does degraded-mode delivery still cover every reachable
//! subscriber?
//!
//! On the paper's ~600-node testbed (1000 stock subscriptions, nine-mode
//! publications), three cells cut 0% / 1% / 5% of the network's links up
//! front via a seeded [`FaultPlan`] and then:
//!
//! 1. **verify** — publish the stream sequentially and check every
//!    outcome against an independent BFS reachability oracle built from
//!    the same plan: `interested ∪ unreachable` must equal the matched
//!    set, no delivery may target an oracle-unreachable node, and no
//!    oracle-reachable match may be skipped. Delivered coverage of the
//!    reachable matched set must be exactly 1.0 — that is the acceptance
//!    gate.
//! 2. **measure** — throughput of the same stream through
//!    `publish_batch` (a faulted broker reroutes batches through the
//!    sequential path, so this prices the whole degraded pipeline), plus
//!    the fallback decision mix (multicast / partial multicast / unicast
//!    / dropped) from the cost report.
//!
//! A no-plan baseline broker is measured first so the 0% cell isolates
//! the overhead of the fault machinery itself (empty plan, sequential
//! rerouting) from the cost of actual damage.
//!
//! Prints a table and writes `results/BENCH_faults.json`. Event count is
//! overridable with `PUBSUB_EVENTS`; pass `--quick` for a smoke-sized
//! run (used by CI).

use std::collections::HashSet;

use serde::Serialize;

use pubsub_bench::{
    build_broker, build_testbed, event_count, measure, sample_events, scenario, write_json, Seeds,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::{Broker, DeliveryMode};
use pubsub_geom::Point;
use pubsub_netsim::{FaultEvent, FaultPlan, FaultPlanConfig, NodeId, Topology};
use pubsub_workload::Modes;

/// Seed for the fault plans; fixed so every run cuts the same links.
const PLAN_SEED: u64 = 4099;

/// Link-failure fractions for the three experimental cells.
const RATES: [f64; 3] = [0.0, 0.01, 0.05];

#[derive(Debug, Serialize)]
struct RateCell {
    link_failure_rate: f64,
    links_cut: usize,
    /// Nodes the oracle says the publisher cannot reach once the plan
    /// has fired (out of `nodes` total).
    unreachable_nodes: usize,
    events_per_sec: f64,
    /// Slowdown vs the no-plan pooled baseline, percent.
    overhead_pct: f64,
    /// Delivered coverage of the *reachable* matched set — the gate;
    /// must be exactly 1.0.
    coverage_reachable: f64,
    /// Fraction of all matched subscriber deliveries that still landed
    /// (the rest were provably unreachable).
    delivered_fraction: f64,
    dropped: u64,
    unicasts: u64,
    multicasts: u64,
    partial_multicasts: u64,
    unreachable_skipped: u64,
    wasted_deliveries: u64,
    improvement_percent: f64,
}

#[derive(Debug, Serialize)]
struct Output {
    nodes: usize,
    edges: usize,
    subscriptions: usize,
    events: usize,
    samples: usize,
    /// Host core count and runtime kernel level, uniform across every
    /// `BENCH_*.json` header.
    host: pubsub_bench::HostInfo,
    plan_seed: u64,
    baseline_events_per_sec: f64,
    cells: Vec<RateCell>,
}

/// From-scratch reachability: BFS over the pristine graph minus the
/// plan's cut links (link-cut plans never down a node).
fn oracle_reachable(topo: &Topology, plan: &FaultPlan, source: NodeId) -> HashSet<u32> {
    let mut cut: HashSet<(u32, u32)> = HashSet::new();
    for scheduled in plan.events() {
        match scheduled.event {
            FaultEvent::LinkCut { a, b } => {
                cut.insert((a.0.min(b.0), a.0.max(b.0)));
            }
            other => panic!("link-cut plan produced {other:?}"),
        }
    }
    let mut seen = HashSet::new();
    let mut stack = vec![source];
    seen.insert(source.0);
    while let Some(n) = stack.pop() {
        for (m, _) in topo.graph().neighbors(n) {
            let key = (n.0.min(m.0), n.0.max(m.0));
            if cut.contains(&key) || seen.contains(&m.0) {
                continue;
            }
            seen.insert(m.0);
            stack.push(m);
        }
    }
    seen
}

/// Publishes the stream sequentially, checking every outcome against the
/// oracle. Returns `(delivered_reachable, matched_reachable,
/// delivered_total, matched_total)`.
fn verify_coverage(
    broker: &mut Broker,
    events: &[Point],
    reachable: &HashSet<u32>,
) -> (u64, u64, u64, u64) {
    broker.reset_report();
    let mut delivered_reachable = 0u64;
    let mut matched_reachable = 0u64;
    let mut delivered_total = 0u64;
    let mut matched_total = 0u64;
    for event in events {
        let (_, matched) = broker.match_only(event);
        let out = broker.publish(event).expect("publisher is never downed");
        assert_eq!(
            out.interested.len() + out.unreachable.len(),
            matched.len(),
            "interested/unreachable must partition the matched set"
        );
        for n in &out.interested {
            assert!(
                reachable.contains(&n.0),
                "delivered to oracle-unreachable node {}",
                n.0
            );
        }
        for n in &out.unreachable {
            assert!(
                !reachable.contains(&n.0),
                "skipped oracle-reachable node {}",
                n.0
            );
        }
        assert!(out.costs.scheme.is_finite(), "degraded cost must be finite");
        delivered_total += out.interested.len() as u64;
        matched_total += matched.len() as u64;
        let in_reach = matched.iter().filter(|n| reachable.contains(&n.0)).count() as u64;
        matched_reachable += in_reach;
        delivered_reachable += out.interested.len() as u64;
        assert_eq!(
            out.interested.len() as u64,
            in_reach,
            "delivery must cover exactly the reachable matched set"
        );
    }
    (
        delivered_reachable,
        matched_reachable,
        delivered_total,
        matched_total,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = event_count(if quick { 1_000 } else { 10_000 });
    let samples = if quick { 3 } else { 5 };

    let seeds = Seeds::default();
    let testbed = build_testbed(seeds);
    let model = scenario(Modes::Nine);
    let events = sample_events(&model, n, seeds.publications);

    let build = || {
        build_broker(
            &testbed,
            &model,
            ClusteringAlgorithm::ForgyKMeans,
            11,
            0.15,
            DeliveryMode::DenseMode,
        )
    };

    // No-plan baseline: the pooled batch path, no fault machinery at all.
    let mut baseline = build();
    let baseline_eps = measure(n, samples, || {
        baseline.reset_report();
        baseline
            .publish_batch(&events, None)
            .expect("events come from the model")
            .len()
    });

    println!(
        "fault-tolerance benchmark, {} nodes / {} edges, {} subscriptions, {} events",
        testbed.topology.graph().node_count(),
        testbed.topology.graph().edge_count(),
        testbed.subscriptions.len(),
        n,
    );
    println!(
        "{:<10} {:>6} {:>8} {:>12} {:>9} {:>9} {:>6} {:>6} {:>8} {:>8} {:>9}",
        "link fail",
        "cuts",
        "unreach",
        "events/s",
        "overhead",
        "coverage",
        "drop",
        "uni",
        "multi",
        "partial",
        "delivered",
    );

    let mut cells = Vec::new();
    for rate in RATES {
        let mut broker = build();
        let plan = FaultPlan::seeded(
            testbed.topology.graph(),
            PLAN_SEED,
            &FaultPlanConfig::link_cuts(rate),
        )
        .expect("fraction is in [0, 1]");
        let links_cut = plan.len();
        let reachable = oracle_reachable(&testbed.topology, &plan, broker.publisher());
        let unreachable_nodes = testbed.topology.graph().node_count() - reachable.len();
        broker
            .install_fault_plan(plan)
            .expect("dense-mode broker accepts fault plans");

        // Verification pass: every outcome checked against the oracle.
        let (delivered_reachable, matched_reachable, delivered_total, matched_total) =
            verify_coverage(&mut broker, &events, &reachable);
        let coverage_reachable = if matched_reachable == 0 {
            1.0
        } else {
            delivered_reachable as f64 / matched_reachable as f64
        };
        let delivered_fraction = if matched_total == 0 {
            1.0
        } else {
            delivered_total as f64 / matched_total as f64
        };

        // Throughput of the degraded pipeline (batches reroute through
        // the sequential publish path once a plan is installed).
        let eps = measure(n, samples, || {
            broker.reset_report();
            broker
                .publish_batch(&events, None)
                .expect("events come from the model")
                .len()
        });
        let report = *broker.report();
        let overhead_pct = 100.0 * (1.0 - eps / baseline_eps);

        println!(
            "{:<10} {:>6} {:>8} {:>12.0} {:>8.1}% {:>9.4} {:>6} {:>6} {:>8} {:>8} {:>8.1}%",
            format!("{:.0}%", rate * 100.0),
            links_cut,
            unreachable_nodes,
            eps,
            overhead_pct,
            coverage_reachable,
            report.dropped,
            report.unicasts,
            report.multicasts,
            report.partial_multicasts,
            100.0 * delivered_fraction,
        );

        cells.push(RateCell {
            link_failure_rate: rate,
            links_cut,
            unreachable_nodes,
            events_per_sec: eps,
            overhead_pct,
            coverage_reachable,
            delivered_fraction,
            dropped: report.dropped,
            unicasts: report.unicasts,
            multicasts: report.multicasts,
            partial_multicasts: report.partial_multicasts,
            unreachable_skipped: report.unreachable_skipped,
            wasted_deliveries: report.wasted_deliveries,
            improvement_percent: report.improvement_percent(),
        });
    }

    let out = Output {
        nodes: testbed.topology.graph().node_count(),
        edges: testbed.topology.graph().edge_count(),
        subscriptions: testbed.subscriptions.len(),
        events: n,
        samples,
        host: pubsub_bench::host_info(),
        plan_seed: PLAN_SEED,
        baseline_events_per_sec: baseline_eps,
        cells,
    };
    write_json("BENCH_faults", &out);

    // The acceptance gate: under every failure rate, delivery covered
    // exactly the reachable matched set (the per-event asserts above make
    // this airtight; the aggregate is what CI greps for).
    for cell in &out.cells {
        assert!(
            (cell.coverage_reachable - 1.0).abs() < f64::EPSILON,
            "delivered coverage of reachable subscribers was {} at {}% link failure",
            cell.coverage_reachable,
            cell.link_failure_rate * 100.0
        );
    }
    println!("delivered coverage of reachable subscribers: 1.0 at every failure rate");
}
