//! Discrete-workload matching ablation: the paper vs Gryphon framing.
//!
//! The paper says Gryphon's matching algorithms are "optimized for their
//! motivating predicate types" — equality and wild-card predicates —
//! while its own S-tree approach targets general ranges. This ablation
//! makes the framing concrete:
//!
//! 1. on a pure equality/wild-card workload, the Gryphon-style matching
//!    tree does the least work per query;
//! 2. the moment subscriptions contain ranges, the Gryphon tree cannot be
//!    built at all, while the geometric/counting indexes carry on.
//!
//! Writes `results/ablation_discrete_matching.json`.

use pubsub_bench::write_json;
use pubsub_geom::{Interval, Point, Rect};
use pubsub_stree::{CountingIndex, Entry, EntryId, GryphonIndex, STree, STreeConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    index: String,
    avg_work_per_query: f64,
    total_matches: usize,
}

/// An equality/wild-card workload over 4 discrete attributes: the
/// Gryphon-native predicate class, expressed as unit intervals so every
/// index can consume it.
fn discrete_entries(k: usize, rng: &mut ChaCha8Rng) -> Vec<Entry> {
    let cardinalities = [3u32, 50, 20, 10];
    (0..k)
        .map(|i| {
            let sides: Vec<Interval> = cardinalities
                .iter()
                .map(|&card| {
                    if rng.gen::<f64>() < 0.35 {
                        Interval::unbounded() // wild-card
                    } else {
                        let v = f64::from(rng.gen_range(0..card));
                        Interval::new(v - 1.0, v).expect("unit interval")
                    }
                })
                .collect();
            Entry::new(Rect::new(sides).expect("four dims"), EntryId(i as u32))
        })
        .collect()
}

fn discrete_events(n: usize, rng: &mut ChaCha8Rng) -> Vec<Point> {
    let cardinalities = [3u32, 50, 20, 10];
    (0..n)
        .map(|_| {
            Point::new(
                cardinalities
                    .iter()
                    .map(|&card| f64::from(rng.gen_range(0..card)))
                    .collect(),
            )
            .expect("finite coords")
        })
        .collect()
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1234);
    let entries = discrete_entries(5000, &mut rng);
    let events = discrete_events(2000, &mut rng);

    println!("== Discrete (equality/wild-card) matching: 5000 subscriptions, 2000 events ==\n");
    println!("work = nodes visited (trees) / counter increments (counting) / entries scanned\n");

    let mut rows: Vec<Row> = Vec::new();

    // Gryphon tree: native representation.
    let gryphon = GryphonIndex::from_unit_entries(&entries).expect("discrete workload");
    let mut g_work = 0usize;
    let mut g_matches = 0usize;
    let mut out = Vec::new();
    for e in &events {
        out.clear();
        g_work += gryphon.query_counting(e.as_slice(), &mut out);
        g_matches += out.len();
    }
    rows.push(Row {
        index: "gryphon-tree".into(),
        avg_work_per_query: g_work as f64 / events.len() as f64,
        total_matches: g_matches,
    });

    // Geometric indexes need finite boxes: clamp wild-cards.
    let bounds = Rect::from_corners(&[-1.0; 4], &[50.0; 4]).expect("static");
    let clamped: Vec<Entry> = entries
        .iter()
        .map(|e| Entry::new(e.rect.clamp_to(&bounds), e.id))
        .collect();
    let stree = STree::build(clamped, STreeConfig::default()).expect("finite");
    let mut s_work = 0usize;
    let mut s_matches = 0usize;
    for e in &events {
        let (hits, visited) = stree.query_point_counting(e);
        s_work += visited;
        s_matches += hits.len();
    }
    rows.push(Row {
        index: "s-tree".into(),
        avg_work_per_query: s_work as f64 / events.len() as f64,
        total_matches: s_matches,
    });

    // Counting index: takes the raw (unclamped) workload.
    let counting = CountingIndex::new(entries.clone()).expect("consistent dims");
    let mut c_work = 0usize;
    let mut c_matches = 0usize;
    for e in &events {
        let (hits, increments) = counting.query_point_counting(e);
        c_work += increments;
        c_matches += hits.len();
    }
    rows.push(Row {
        index: "counting".into(),
        avg_work_per_query: c_work as f64 / events.len() as f64,
        total_matches: c_matches,
    });

    rows.push(Row {
        index: "linear-scan".into(),
        avg_work_per_query: entries.len() as f64,
        total_matches: g_matches,
    });

    for r in &rows {
        println!(
            "{:>14}: {:>10.1} work/query, {} total matches",
            r.index, r.avg_work_per_query, r.total_matches
        );
    }
    let all_agree = rows.iter().all(|r| r.total_matches == g_matches);
    println!("\nall indexes agree on matches: {all_agree}");
    assert!(all_agree, "indexes disagreed on the discrete workload");

    // Part 2: ranges break the Gryphon tree.
    let mut ranged = entries;
    ranged[0] = Entry::new(
        Rect::new(vec![
            Interval::new(10.0, 20.0).expect("ordered"), // a genuine range
            Interval::unbounded(),
            Interval::unbounded(),
            Interval::unbounded(),
        ])
        .expect("four dims"),
        EntryId(0),
    );
    let refused = GryphonIndex::from_unit_entries(&ranged).is_err();
    println!("gryphon tree refuses a range subscription: {refused}");
    assert!(refused);
    println!("(the geometric and counting indexes index it unchanged — the paper's motivation)");

    write_json("ablation_discrete_matching", &rows);
    println!("\nwrote results/ablation_discrete_matching.json");
}
