//! Matching-throughput comparison: the node-based S-tree walk vs the flat
//! query engine vs the parallel batch pipeline, on the paper's testbed.
//!
//! Prints a throughput table and writes the machine-readable result to
//! `BENCH_matching.json` in the current directory. Event count is
//! overridable with `PUBSUB_EVENTS`.

use serde::Serialize;

use pubsub_bench::{event_count, measure, sample_events, scenario, Seeds};
use pubsub_core::{MatchScratch, Matcher};
use pubsub_geom::Point;
use pubsub_netsim::TransitStubConfig;
use pubsub_stree::{STreeConfig, SpatialIndex};
use pubsub_workload::{stock_space, Modes, SubscriptionConfig};

#[derive(Debug, Serialize)]
struct Row {
    name: &'static str,
    events_per_sec: f64,
    speedup_vs_scalar: f64,
}

#[derive(Debug, Serialize)]
struct Output {
    subscriptions: usize,
    events: usize,
    threads: usize,
    samples: usize,
    rows: Vec<Row>,
}

fn main() {
    let seeds = Seeds::default();
    let topology = TransitStubConfig::riabov()
        .generate(seeds.topology)
        .expect("preset");
    let placed = SubscriptionConfig::riabov()
        .generate(&topology, seeds.subscriptions)
        .expect("preset");
    let subscriptions: Vec<_> = placed.into_iter().map(|p| (p.node, p.rect)).collect();
    let matcher = Matcher::build(&stock_space(), &subscriptions, STreeConfig::default())
        .expect("testbed is valid");

    let n = event_count(50_000);
    let events: Vec<Point> = sample_events(&scenario(Modes::Nine), n, seeds.publications);
    let samples = 7usize;
    let threads = pubsub_parallel_threads();

    // Scalar baseline: the node-based S-tree walk.
    let stree = matcher.index();
    let scalar = measure(n, samples, || {
        let mut out = Vec::new();
        let mut total = 0usize;
        for e in &events {
            out.clear();
            stree.query_point_into(e, &mut out);
            total += out.len();
        }
        total
    });

    // The flat engine, single-threaded, scratch reused across queries.
    let flat_index = matcher.flat_index();
    let flat = measure(n, samples, || {
        let mut stack = Vec::new();
        let mut out = Vec::new();
        let mut total = 0usize;
        for e in &events {
            out.clear();
            flat_index.query_point_with(e, &mut stack, &mut out);
            total += out.len();
        }
        total
    });

    // Count-only traversal (never materializes ids).
    let flat_count = measure(n, samples, || {
        let mut stack = Vec::new();
        let mut total = 0usize;
        for e in &events {
            total += flat_index.count_point_with(e, &mut stack);
        }
        total
    });

    // The full single-thread matcher (flat query + dedup into nodes).
    let matcher_scalar = measure(n, samples, || {
        let mut scratch = MatchScratch::new();
        let mut subs = Vec::new();
        let mut nodes = Vec::new();
        let mut total = 0usize;
        for e in &events {
            matcher.match_event_into(e, &mut scratch, &mut subs, &mut nodes);
            total += nodes.len();
        }
        total
    });

    // The batch pipeline across all available workers.
    let parallel = measure(n, samples, || {
        matcher
            .match_events(&events, None)
            .iter()
            .map(|(_, nodes)| nodes.len())
            .sum::<usize>()
    });

    let rows = vec![
        Row {
            name: "stree_walk",
            events_per_sec: scalar,
            speedup_vs_scalar: 1.0,
        },
        Row {
            name: "flat",
            events_per_sec: flat,
            speedup_vs_scalar: flat / scalar,
        },
        Row {
            name: "flat_count",
            events_per_sec: flat_count,
            speedup_vs_scalar: flat_count / scalar,
        },
        Row {
            name: "matcher_scalar",
            events_per_sec: matcher_scalar,
            speedup_vs_scalar: matcher_scalar / scalar,
        },
        Row {
            name: "parallel_batch",
            events_per_sec: parallel,
            speedup_vs_scalar: parallel / scalar,
        },
    ];

    println!(
        "matching throughput, k = {} subscriptions, {} events, {} threads:",
        subscriptions.len(),
        n,
        threads
    );
    println!("{:<16} {:>14} {:>10}", "engine", "events/s", "speedup");
    for r in &rows {
        println!(
            "{:<16} {:>14.0} {:>9.2}x",
            r.name, r.events_per_sec, r.speedup_vs_scalar
        );
    }

    let out = Output {
        subscriptions: subscriptions.len(),
        events: n,
        threads,
        samples,
        rows,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    if let Err(e) = std::fs::write("BENCH_matching.json", &json) {
        eprintln!("warning: could not write BENCH_matching.json: {e}");
    }
}

fn pubsub_parallel_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
