//! Matching-throughput comparison: the node-based S-tree walk vs the flat
//! query engine vs the SIMD block engine vs the pooled batch pipeline, on
//! the paper's testbed.
//!
//! Prints a throughput table and writes the machine-readable result to
//! `BENCH_matching.json` in the current directory. Event count is
//! overridable with `PUBSUB_EVENTS`, worker count with `PUBSUB_THREADS`,
//! and `PUBSUB_NO_SIMD=1` forces the scalar fallback kernels.
//!
//! With `--quick` the run doubles as a regression gate: when a SIMD
//! kernel level is active, the block engine must beat the one-point flat
//! engine; and when at least two workers are requested *and* the host
//! actually has at least two cores, the pooled arena pipeline must beat
//! the single-thread flat engine — or the process exits non-zero. Gates
//! whose precondition the host cannot meet are skipped loudly.

use std::sync::Arc;

use serde::Serialize;

use pubsub_bench::{
    build_broker, build_testbed, event_count, heap, measure, measure_batched, sample_events,
    scenario, sub_counts, BatchLatency, Seeds,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::{
    CoveringConfig, DeliveryMode, MatchArena, MatchScratch, Matcher, SubscriptionStream,
};
use pubsub_geom::{Point, Rect};
use pubsub_netsim::NodeId;
use pubsub_parallel::{effective_threads, PipelineScratch, WorkerPool};
use pubsub_stree::simd;
use pubsub_stree::{EventBlock, STreeConfig, SimdLevel, SpatialIndex, LANES};
use pubsub_workload::{stock_space, Modes, ScaleConfig, ScaleWorkload};

/// Live-byte accounting for the scale rows' `bytes_per_subscription`.
#[global_allocator]
static ALLOCATOR: heap::MeterAlloc = heap::MeterAlloc;

#[derive(Debug, Serialize)]
struct Row {
    name: &'static str,
    events_per_sec: f64,
    speedup_vs_scalar: f64,
}

/// One covering-layer scale point: N subscriptions compiled through the
/// covering layer into the quantized compact index.
#[derive(Debug, Serialize)]
struct ScaleRow {
    subscriptions: usize,
    /// Distinct rectangles after interning.
    uniques: usize,
    /// Representatives actually compiled into the index.
    representatives: usize,
    /// Concrete subscriptions per compiled index entry.
    aggregation_ratio: f64,
    /// Live heap bytes held by the covered matcher, per subscription
    /// (owners + expansion table + quantized index).
    bytes_per_subscription: f64,
    /// Wall-clock seconds of the streaming covered compile.
    build_seconds: f64,
    /// Single-thread covered matching throughput.
    events_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Output {
    subscriptions: usize,
    events: usize,
    threads: usize,
    samples: usize,
    /// Host core count and runtime kernel level, uniform across every
    /// `BENCH_*.json` header.
    host: pubsub_bench::HostInfo,
    /// SIMD block matching vs the one-point-at-a-time flat engine, both
    /// single-threaded — the tentpole kernel speedup.
    simd_speedup_vs_flat: f64,
    /// Pooled arena matching vs the single-thread flat engine — the
    /// number the `--quick` gate checks on multi-core hosts.
    parallel_speedup_vs_flat: f64,
    /// Events per batch of the `pipeline_batched` row.
    batch_events: usize,
    /// The fused publish pipeline driven in `batch_events`-sized batches
    /// (the granularity `BENCH_churn.json` publishes at).
    batched_events_per_sec: f64,
    /// Per-batch latency quantiles of the batched pipeline row —
    /// directly comparable with `BENCH_churn.json`'s columns.
    batch_latency: BatchLatency,
    /// The largest scale row's per-subscription footprint.
    bytes_per_subscription: f64,
    /// The largest scale row's aggregation ratio.
    aggregation_ratio: f64,
    rows: Vec<Row>,
    /// Covering-layer scale sweep (100k/1M/10M by default; `PUBSUB_SUBS`
    /// restricts to one count).
    scale: Vec<ScaleRow>,
}

/// [`ScaleWorkload`] as a replayable subscription stream for the covered
/// compile.
struct PoolStream<'a>(&'a ScaleWorkload);

impl SubscriptionStream for PoolStream<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(NodeId, &Rect)) {
        self.0.for_each(f);
    }
}

/// Per-worker matching state for the pool rows: one scratch and one CSR
/// arena, constructed once and reused across samples.
struct MatchState {
    scratch: MatchScratch,
    arena: MatchArena,
}

impl PipelineScratch for MatchState {
    fn begin_batch(&mut self) {
        self.arena.begin();
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = event_count(if quick { 20_000 } else { 50_000 });
    let samples = if quick { 3 } else { 7 };

    let seeds = Seeds::default();
    let testbed = build_testbed(seeds);
    let matcher = Matcher::build(
        &stock_space(),
        &testbed.subscriptions,
        STreeConfig::default(),
    )
    .expect("testbed is valid");
    let model = scenario(Modes::Nine);
    let events: Vec<Point> = sample_events(&model, n, seeds.publications);

    let threads = requested_threads();
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Scalar baseline: the node-based S-tree walk.
    let stree = matcher.index();
    let scalar = measure(n, samples, || {
        let mut out = Vec::new();
        let mut total = 0usize;
        for e in &events {
            out.clear();
            stree.query_point_into(e, &mut out);
            total += out.len();
        }
        total
    });

    // The flat engine, single-threaded, scratch reused across queries.
    let flat_index = matcher.flat_index();
    let flat = measure(n, samples, || {
        let mut stack = Vec::new();
        let mut out = Vec::new();
        let mut total = 0usize;
        for e in &events {
            out.clear();
            flat_index.query_point_with(e, &mut stack, &mut out);
            total += out.len();
        }
        total
    });

    // The SIMD block engine: the same flat tree, queried 8 events per
    // structure-of-arrays block through the runtime-dispatched
    // interval-containment kernels, scattering hits back per lane like
    // the matcher does.
    let simd_level = simd::active_level();
    let flat_simd = measure(n, samples, || {
        let mut block = EventBlock::new();
        let mut stack = Vec::new();
        let mut lane_hits: Vec<Vec<pubsub_stree::EntryId>> =
            (0..LANES).map(|_| Vec::new()).collect();
        let mut total = 0usize;
        let mut i = 0usize;
        while i < events.len() {
            let k = (events.len() - i).min(LANES);
            let mut lane_refs: [&[f64]; LANES] = [&[]; LANES];
            for (l, slot) in lane_refs.iter_mut().take(k).enumerate() {
                *slot = events[i + l].as_slice();
            }
            block.fill(&lane_refs[..k]);
            for hits in lane_hits.iter_mut() {
                hits.clear();
            }
            flat_index.query_point_block(&block, &mut stack, |id, lanes| {
                let mut m = lanes;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    lane_hits[l].push(id);
                }
            });
            total += lane_hits[..k].iter().map(Vec::len).sum::<usize>();
            i += k;
        }
        total
    });

    // Count-only traversal (never materializes ids).
    let flat_count = measure(n, samples, || {
        let mut stack = Vec::new();
        let mut total = 0usize;
        for e in &events {
            total += flat_index.count_point_with(e, &mut stack);
        }
        total
    });

    // The full single-thread matcher (flat query + dedup into nodes).
    let matcher_scalar = measure(n, samples, || {
        let mut scratch = MatchScratch::new();
        let mut subs = Vec::new();
        let mut nodes = Vec::new();
        let mut total = 0usize;
        for e in &events {
            matcher.match_event_into(e, &mut scratch, &mut subs, &mut nodes);
            total += nodes.len();
        }
        total
    });

    // The legacy batch API (per-batch thread scope, materialized vectors).
    let legacy_batch = measure(n, samples, || {
        matcher
            .match_events(&events, Some(threads))
            .iter()
            .map(|(_, nodes)| nodes.len())
            .sum::<usize>()
    });

    // The persistent pool writing straight into per-worker CSR arenas:
    // the matching stage of the fused publish pipeline, isolated.
    let pool = Arc::new(WorkerPool::new(threads.max(1)));
    let mut states: Vec<MatchState> = (0..pool.threads())
        .map(|_| MatchState {
            scratch: MatchScratch::new(),
            arena: MatchArena::new(),
        })
        .collect();
    let pool_batch = measure(n, samples, || {
        let used = pool.pipeline(threads, &mut states, events.len(), |_w, st, ranges| {
            matcher.match_events_into_arena(&events, ranges, &mut st.scratch, &mut st.arena);
        });
        states[..used]
            .iter()
            .map(|st| st.arena.total_nodes())
            .sum::<usize>()
    });

    // End to end: the fused match + cost + decide pipeline inside the
    // broker, stats-only (no outcome materialization).
    let mut broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.5,
        DeliveryMode::DenseMode,
    );
    let pipeline_publish = measure(n, samples, || {
        broker.reset_report();
        broker
            .publish_batch_stats(&events, Some(threads))
            .expect("events come from the model")
            .messages
    });

    // The same pipeline at BENCH_churn's batch granularity, with each
    // batch's wall-clock recorded — the per-batch p50/p99 columns shared
    // across the closed-loop benches.
    const BATCH_EVENTS: usize = 100;
    let (batched_eps, batch_latency) = measure_batched(n, samples, |record| {
        broker.reset_report();
        let mut messages = 0u64;
        for chunk in events.chunks(BATCH_EVENTS) {
            let t0 = std::time::Instant::now();
            messages += broker
                .publish_batch_stats(chunk, Some(threads))
                .expect("events come from the model")
                .messages;
            record(t0.elapsed());
        }
        messages
    });

    let rows = vec![
        Row {
            name: "stree_walk",
            events_per_sec: scalar,
            speedup_vs_scalar: 1.0,
        },
        Row {
            name: "flat",
            events_per_sec: flat,
            speedup_vs_scalar: flat / scalar,
        },
        Row {
            name: "flat_simd",
            events_per_sec: flat_simd,
            speedup_vs_scalar: flat_simd / scalar,
        },
        Row {
            name: "flat_count",
            events_per_sec: flat_count,
            speedup_vs_scalar: flat_count / scalar,
        },
        Row {
            name: "matcher_scalar",
            events_per_sec: matcher_scalar,
            speedup_vs_scalar: matcher_scalar / scalar,
        },
        Row {
            name: "legacy_batch",
            events_per_sec: legacy_batch,
            speedup_vs_scalar: legacy_batch / scalar,
        },
        Row {
            name: "pool_batch",
            events_per_sec: pool_batch,
            speedup_vs_scalar: pool_batch / scalar,
        },
        Row {
            name: "pipeline_publish",
            events_per_sec: pipeline_publish,
            speedup_vs_scalar: pipeline_publish / scalar,
        },
        Row {
            name: "pipeline_batched",
            events_per_sec: batched_eps,
            speedup_vs_scalar: batched_eps / scalar,
        },
    ];
    let parallel_speedup_vs_flat = pool_batch / flat;
    let simd_speedup_vs_flat = flat_simd / flat;

    // Covering-layer scale sweep: generate a Zipf-skewed duplicate-heavy
    // population, stream it through the covered compile (no O(N)
    // rectangle intermediate), and measure the matcher's resident
    // footprint as the live-heap delta across the build.
    let scale_defaults: &[usize] = if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000, 10_000_000]
    };
    let mut scale = Vec::new();
    for count in sub_counts(scale_defaults) {
        let population = ScaleConfig::stock(count)
            .generate(&testbed.topology, seeds.subscriptions, None)
            .expect("scale preset is valid");
        let before = heap::live_bytes();
        let t0 = std::time::Instant::now();
        let covered = Matcher::build_covered(
            &stock_space(),
            &PoolStream(&population),
            &CoveringConfig::default(),
        )
        .expect("population is valid");
        let build_seconds = t0.elapsed().as_secs_f64();
        let bytes = heap::live_bytes().saturating_sub(before);
        let stats = *covered.covering_stats().expect("covered build");

        // Fewer events at the bigger counts: each matching event expands
        // to a member list proportional to the population.
        let scale_n = (200_000_000 / count).clamp(20, 2_000);
        let scale_events: Vec<Point> = sample_events(&model, scale_n, seeds.publications);
        let events_per_sec = measure(scale_n, if quick { 2 } else { 3 }, || {
            let mut scratch = MatchScratch::new();
            let mut subs = Vec::new();
            let mut nodes = Vec::new();
            let mut total = 0usize;
            for e in &scale_events {
                covered.match_event_into(e, &mut scratch, &mut subs, &mut nodes);
                total += subs.len();
            }
            total
        });
        scale.push(ScaleRow {
            subscriptions: count,
            uniques: stats.uniques,
            representatives: stats.representatives,
            aggregation_ratio: stats.aggregation_ratio(),
            bytes_per_subscription: bytes as f64 / count as f64,
            build_seconds,
            events_per_sec,
        });
    }
    let last = scale.last().expect("at least one scale count");
    let (bytes_per_subscription, aggregation_ratio) =
        (last.bytes_per_subscription, last.aggregation_ratio);

    println!(
        "matching throughput, k = {} subscriptions, {} events, {} threads ({} cores), \
         {} kernels:",
        testbed.subscriptions.len(),
        n,
        threads,
        available,
        simd_level.name()
    );
    println!("{:<18} {:>14} {:>10}", "engine", "events/s", "speedup");
    for r in &rows {
        println!(
            "{:<18} {:>14.0} {:>9.2}x",
            r.name, r.events_per_sec, r.speedup_vs_scalar
        );
    }
    println!("flat_simd vs flat:  {simd_speedup_vs_flat:.2}x");
    println!("pool_batch vs flat: {parallel_speedup_vs_flat:.2}x");
    println!(
        "pipeline per-batch latency ({BATCH_EVENTS} events): p50 {:.2} ms / p99 {:.2} ms \
         over {} batches",
        batch_latency.p50_ns as f64 / 1e6,
        batch_latency.p99_ns as f64 / 1e6,
        batch_latency.batches
    );

    println!("\ncovering-layer scale (streaming covered compile, quantized index):");
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>10} {:>9} {:>12}",
        "subs", "uniques", "reps", "agg", "bytes/sub", "build_s", "events/s"
    );
    for r in &scale {
        println!(
            "{:>12} {:>8} {:>8} {:>7.1}x {:>10.1} {:>9.2} {:>12.0}",
            r.subscriptions,
            r.uniques,
            r.representatives,
            r.aggregation_ratio,
            r.bytes_per_subscription,
            r.build_seconds,
            r.events_per_sec
        );
    }

    let out = Output {
        subscriptions: testbed.subscriptions.len(),
        events: n,
        threads,
        samples,
        host: pubsub_bench::host_info(),
        simd_speedup_vs_flat,
        parallel_speedup_vs_flat,
        batch_events: BATCH_EVENTS,
        batched_events_per_sec: batched_eps,
        batch_latency,
        bytes_per_subscription,
        aggregation_ratio,
        rows,
        scale,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    if let Err(e) = std::fs::write("BENCH_matching.json", &json) {
        eprintln!("warning: could not write BENCH_matching.json: {e}");
    }

    if quick {
        if simd_level != SimdLevel::Scalar {
            if simd_speedup_vs_flat <= 1.0 {
                eprintln!(
                    "FAIL: {} block kernels are not faster than the one-point flat \
                     engine ({simd_speedup_vs_flat:.2}x <= 1.00x)",
                    simd_level.name()
                );
                std::process::exit(1);
            }
            println!(
                "simd gate passed: {simd_speedup_vs_flat:.2}x > 1.00x with {} kernels",
                simd_level.name()
            );
        } else {
            println!("simd gate skipped: scalar fallback kernels active");
        }
        // The scale gate: the covering layer must actually aggregate the
        // duplicate-heavy population, and the covered matcher's resident
        // footprint must stay far below one flat f64 entry per
        // subscription (the Zipf pool gives > 20x aggregation, so these
        // bounds are loose).
        for r in &out.scale {
            if r.aggregation_ratio < 2.0 || r.bytes_per_subscription > 100.0 {
                eprintln!(
                    "FAIL: scale row at {} subs: aggregation {:.1}x, {:.1} bytes/sub \
                     (want >= 2.0x and <= 100.0)",
                    r.subscriptions, r.aggregation_ratio, r.bytes_per_subscription
                );
                std::process::exit(1);
            }
        }
        println!(
            "scale gate passed: {:.1}x aggregation, {:.1} bytes/sub at {} subs",
            out.aggregation_ratio,
            out.bytes_per_subscription,
            out.scale.last().expect("non-empty").subscriptions
        );
        if threads >= 2 && available >= 2 {
            if parallel_speedup_vs_flat <= 1.0 {
                eprintln!(
                    "FAIL: pooled pipeline at {threads} threads is not faster than the \
                     single-thread flat engine ({parallel_speedup_vs_flat:.2}x <= 1.00x)"
                );
                std::process::exit(1);
            }
            println!("gate passed: {parallel_speedup_vs_flat:.2}x > 1.00x at {threads} threads");
        } else {
            println!(
                "gate skipped: needs >= 2 threads on >= 2 cores \
                 (threads = {threads}, cores = {available})"
            );
        }
    }
}

/// Worker count for the parallel rows: `PUBSUB_THREADS` when set to a
/// positive integer, otherwise the host's available parallelism.
fn requested_threads() -> usize {
    std::env::var("PUBSUB_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| effective_threads(None))
}
