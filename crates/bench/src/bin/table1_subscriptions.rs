//! Table 1: the parametric interval distribution of the `quote` and
//! `volume` subscription predicates.
//!
//! Prints the paper's parameter table and verifies, on a large generated
//! sample, that the empirical frequencies of the four predicate kinds
//! (wild-card / lower bound / upper bound / bounded) and the moments of
//! the cut points match the configured parameters. Writes
//! `results/table1_subscriptions.json`.

use pubsub_bench::write_json;
use pubsub_workload::IntervalDistribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Table1Row {
    field: &'static str,
    q0: f64,
    q1: f64,
    q2: f64,
    empirical_wildcard: f64,
    empirical_lower: f64,
    empirical_upper: f64,
    empirical_bounded: f64,
    bounded_center_mean: f64,
    bounded_length_median: f64,
}

fn analyze(field: &'static str, dist: &IntervalDistribution, seed: u64) -> Table1Row {
    let n = 200_000usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (mut wild, mut lower, mut upper, mut bounded) = (0u64, 0u64, 0u64, 0u64);
    let mut centers = 0.0f64;
    let mut lengths: Vec<f64> = Vec::new();
    for _ in 0..n {
        let iv = dist.sample(&mut rng);
        match (iv.lo().is_finite(), iv.hi().is_finite()) {
            (false, false) => wild += 1,
            (true, false) => lower += 1,
            (false, true) => upper += 1,
            (true, true) => {
                bounded += 1;
                centers += iv.center();
                lengths.push(iv.length());
            }
        }
    }
    lengths.sort_unstable_by(f64::total_cmp);
    let f = |c: u64| c as f64 / n as f64;
    Table1Row {
        field,
        q0: dist.q0,
        q1: dist.q1,
        q2: dist.q2,
        empirical_wildcard: f(wild),
        empirical_lower: f(lower),
        empirical_upper: f(upper),
        empirical_bounded: f(bounded),
        bounded_center_mean: centers / bounded.max(1) as f64,
        bounded_length_median: lengths.get(lengths.len() / 2).copied().unwrap_or(0.0),
    }
}

fn main() {
    println!("== Table 1: parametric interval distribution (quote & volume) ==");
    println!();
    println!(
        "{:>8} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>8}",
        "field", "q0", "q1", "q2", "mu1,s1", "mu2,s2", "mu3,s3", "c,alpha"
    );
    for (name, d) in [
        ("price", IntervalDistribution::price()),
        ("volume", IntervalDistribution::volume()),
    ] {
        println!(
            "{name:>8} {:>6.2} {:>6.2} {:>6.2} {:>10} {:>10} {:>10} {:>8}",
            d.q0,
            d.q1,
            d.q2,
            format!("{},{}", d.mu1, d.sigma1),
            format!("{},{}", d.mu2, d.sigma2),
            format!("{},{}", d.mu3, d.sigma3),
            format!("{},{}", d.pareto_scale, d.pareto_shape),
        );
    }

    println!();
    println!("empirical check over 200k samples per field:");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "field", "wildcard", "lower", "upper", "bounded", "center mean", "len median"
    );
    let rows = vec![
        analyze("price", &IntervalDistribution::price(), 41),
        analyze("volume", &IntervalDistribution::volume(), 42),
    ];
    for r in &rows {
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12.2} {:>12.2}",
            r.field,
            r.empirical_wildcard,
            r.empirical_lower,
            r.empirical_upper,
            r.empirical_bounded,
            r.bounded_center_mean,
            r.bounded_length_median,
        );
    }
    println!();
    println!("expected: price wildcard 0.150, volume wildcard 0.350, both lower/upper 0.100,");
    println!(
        "bounded centers ~9 (mu3), median bounded length ~8 (Pareto(4,1): median = c*2^(1/alpha))"
    );

    write_json("table1_subscriptions", &rows);
    println!("\nwrote results/table1_subscriptions.json");
}
