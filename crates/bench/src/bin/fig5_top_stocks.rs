//! Figure 5: per-stock distributions for the three most-traded stocks.
//!
//! The paper observes that each heavily-traded stock's normalized price is
//! bell-shaped around its own average while its trade amounts follow a
//! Pareto distribution. This binary reproduces the analysis on the
//! synthetic day and writes `results/fig5_top_stocks.json`.

use pubsub_bench::write_json;
use pubsub_workload::nyse::NyseConfig;
use pubsub_workload::stats::{fit_normal, fit_pareto_alpha, Histogram};
use serde::Serialize;

#[derive(Serialize)]
struct StockRow {
    rank: usize,
    stock: usize,
    trades: usize,
    price_mean: f64,
    price_sd: f64,
    amount_alpha: f64,
}

fn main() {
    let day = NyseConfig::riabov_day()
        .generate(1999)
        .expect("preset is valid");
    let top = day.top_stocks(3);
    println!("== Figure 5: the three most frequently traded stocks ==\n");

    let mut rows = Vec::new();
    for (rank, &stock) in top.iter().enumerate() {
        let prices = day.prices_of(stock);
        let amounts = day.amounts_of(stock);
        let (mean, sd) = fit_normal(&prices).expect("top stock has many trades");
        let alpha = fit_pareto_alpha(&amounts).expect("top stock has many trades");
        println!(
            "#{} stock {} — {} trades; price ~ N({mean:.4}, {sd:.4}); amount Pareto alpha {alpha:.2}",
            rank + 1,
            stock,
            prices.len()
        );
        let mut hist = Histogram::new(mean - 3.0 * sd, mean + 3.0 * sd, 15).expect("sd > 0");
        hist.extend(prices.iter().copied());
        print!("{}", hist.ascii(30));
        println!();
        rows.push(StockRow {
            rank: rank + 1,
            stock,
            trades: prices.len(),
            price_mean: mean,
            price_sd: sd,
            amount_alpha: alpha,
        });
    }
    println!("expected shapes: bell-shaped prices centered near 1.0; Pareto amounts (alpha ~ 1.2)");

    write_json("fig5_top_stocks", &rows);
    println!("\nwrote results/fig5_top_stocks.json");
}
