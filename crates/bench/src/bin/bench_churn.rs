//! Live-churn broker benchmark: what does subscription churn cost the
//! publish path?
//!
//! Four phases on the paper's ~600-node testbed (1000 stock
//! subscriptions, nine-mode publications):
//!
//! 1. **static** — baseline `publish_batch` throughput on a fully
//!    compiled broker (no churn machinery active).
//! 2. **overlay** — the same subscription set, but with 10% of it
//!    subscribed live after the build, so every match merges the flat
//!    index with the 100-entry delta overlay.
//! 3. **recompile** — latency of folding that overlay back into a fully
//!    compiled engine, and verification that the result is bit-identical
//!    to the static broker (same ids, decisions and costs).
//! 4. **churn** — sustained throughput while one subscribe/unsubscribe
//!    pair lands every `CHURN_PERIOD` events: overlay matching, exact
//!    group maintenance and periodic local partition refreshes all stay
//!    on. The drift-triggered full recompile is suppressed
//!    (`recluster_fraction(10.0)`) so the phase measures the incremental
//!    steady state; phase 3 prices the recompile separately.
//!
//! Because the churn phase must interleave churn ops with publishing, it
//! publishes in `CHURN_PERIOD`-sized batches; the acceptance comparison
//! therefore uses a static baseline measured at the *same* batch
//! granularity, so it isolates the cost of churn rather than the cost of
//! smaller parallel fan-outs. Both static numbers are reported.
//!
//! Prints a table and writes `BENCH_churn.json` in the current
//! directory. Event count is overridable with `PUBSUB_EVENTS`; pass
//! `--quick` for a smoke-sized run (used by CI).

use serde::Serialize;

use pubsub_bench::{
    batch_quantiles, build_testbed, event_count, measure, sample_events, scenario, BatchLatency,
    Seeds,
};
use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub_core::{Broker, ChurnCounters, DeliveryMode};
use pubsub_geom::Rect;
use pubsub_netsim::NodeId;
use pubsub_workload::{stock_space, Modes};

/// One subscribe/unsubscribe pair per this many published events in the
/// sustained-churn phase.
const CHURN_PERIOD: usize = 100;

#[derive(Debug, Serialize)]
struct Output {
    nodes: usize,
    edges: usize,
    subscriptions: usize,
    overlay_subscriptions: usize,
    events: usize,
    samples: usize,
    /// Host core count and runtime kernel level, uniform across every
    /// `BENCH_*.json` header.
    host: pubsub_bench::HostInfo,
    churn_period: usize,
    static_events_per_sec: f64,
    /// Static broker publishing in `CHURN_PERIOD`-sized batches — the
    /// baseline the churn phase is gated against (same fan-out
    /// granularity, so the difference is churn alone).
    static_chunked_events_per_sec: f64,
    overlay_events_per_sec: f64,
    /// Publish slowdown from matching through the 10% overlay, percent.
    overlay_overhead_pct: f64,
    recompile_ms: f64,
    churn_events_per_sec: f64,
    /// Publish slowdown under sustained churn vs the chunked static
    /// baseline, percent.
    churn_overhead_pct: f64,
    /// Per-`CHURN_PERIOD`-batch latency quantiles of the chunked static
    /// baseline (comparable with `BENCH_matching.json`'s batched row).
    static_chunked_latency: BatchLatency,
    /// Per-batch latency quantiles under sustained churn (each batch's
    /// time includes its subscribe/unsubscribe pair).
    churn_latency: BatchLatency,
    /// The acceptance gate: sustained churn throughput within 20% of the
    /// static baseline at the same batch granularity.
    within_20_percent: bool,
    churn_counters: ChurnCounters,
}

fn build(
    testbed: &pubsub_bench::Testbed,
    subs: Vec<(NodeId, Rect)>,
    recluster_fraction: f64,
) -> Broker {
    let model = scenario(Modes::Nine);
    Broker::builder(testbed.topology.clone(), stock_space())
        .subscriptions(subs)
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 11))
        .threshold(0.15)
        .delivery_mode(DeliveryMode::DenseMode)
        .density(move |r| model.mass(r))
        .recluster_fraction(recluster_fraction)
        .build()
        .expect("testbed configuration is valid")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = event_count(if quick { 2_000 } else { 20_000 });
    let samples = if quick { 3 } else { 7 };

    let seeds = Seeds::default();
    let testbed = build_testbed(seeds);
    let events = sample_events(&scenario(Modes::Nine), n, seeds.publications);
    let total = testbed.subscriptions.len();
    let compiled = total * 9 / 10;

    // Phase 1: fully compiled baseline.
    let mut static_broker = build(&testbed, testbed.subscriptions.clone(), 0.5);
    let mut static_pass = || {
        static_broker.reset_report();
        static_broker
            .publish_batch(&events, None)
            .expect("events come from the model")
            .len()
    };
    let static_eps = measure(n, samples, &mut static_pass);

    // Phase 2: 90% compiled, 10% live-subscribed into the overlay. A
    // high recluster fraction keeps the overlay pending (no drift
    // recompile) for the whole measurement.
    let mut overlay_broker = build(&testbed, testbed.subscriptions[..compiled].to_vec(), 10.0);
    for (node, rect) in &testbed.subscriptions[compiled..] {
        overlay_broker
            .subscribe(*node, rect.clone())
            .expect("testbed subscription is valid");
    }
    assert_eq!(
        overlay_broker.churn_counters().overlay_len,
        total - compiled,
        "the overlay must still be pending"
    );
    // Same subscription set, same insertion order: matching must agree
    // exactly (overlay ids continue the compiled numbering).
    {
        let mut fresh = static_broker.match_only(&events[0]);
        fresh.0.sort_unstable();
        for event in events.iter().take(200) {
            let live = overlay_broker.match_only(event);
            fresh = static_broker.match_only(event);
            assert_eq!(live.0, fresh.0, "overlay match ids diverge");
            assert_eq!(live.1, fresh.1, "overlay match nodes diverge");
        }
    }
    let mut overlay_pass = || {
        overlay_broker.reset_report();
        overlay_broker
            .publish_batch(&events, None)
            .expect("events come from the model")
            .len()
    };
    let overlay_eps = measure(n, samples, &mut overlay_pass);

    // Phase 3: fold the overlay back into a compiled engine and verify
    // the result is bit-identical to the never-churned broker.
    let start = std::time::Instant::now();
    overlay_broker.recompile().expect("recompile is valid");
    let recompile_ms = start.elapsed().as_secs_f64() * 1e3;
    let probe = &events[..events.len().min(500)];
    overlay_broker.reset_report();
    static_broker.reset_report();
    let a = overlay_broker
        .publish_batch(probe, None)
        .expect("events come from the model");
    let b = static_broker
        .publish_batch(probe, None)
        .expect("events come from the model");
    assert_eq!(a, b, "recompiled broker diverges from the static build");

    // Phase 4: sustained churn — one subscribe/unsubscribe pair every
    // CHURN_PERIOD events, interleaved with batched publishing. Each pair
    // replaces the previous transient subscription, so the live
    // population is stable and the measurement reaches a steady state.
    let mut churn_broker = build(&testbed, testbed.subscriptions.clone(), 10.0);
    let recycled: Vec<(NodeId, Rect)> = testbed.subscriptions[..64].to_vec();
    let mut pair = 0usize;
    let mut pending = None;
    let mut churn_lat_ns: Vec<u64> = Vec::new();
    let mut churn_pass = |lat: Option<&mut Vec<u64>>| {
        churn_broker.reset_report();
        let mut delivered = 0usize;
        let mut batch_lat = Vec::new();
        for chunk in events.chunks(CHURN_PERIOD) {
            let t0 = std::time::Instant::now();
            let (node, rect) = &recycled[pair % recycled.len()];
            let added = churn_broker
                .subscribe(*node, rect.clone())
                .expect("recycled subscription is valid");
            if let Some(old) = pending.replace(added) {
                churn_broker.unsubscribe(old).expect("handle is live");
            }
            pair += 1;
            delivered += churn_broker
                .publish_batch(chunk, None)
                .expect("events come from the model")
                .len();
            batch_lat.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        if let Some(lat) = lat {
            lat.extend(batch_lat);
        }
        delivered
    };
    // The baseline at the same batch granularity: the static broker
    // publishing the same CHURN_PERIOD-sized chunks, no churn ops. The
    // two passes are sampled back-to-back in pairs so background load
    // hits both alike, instead of skewing whichever phase it lands on.
    let mut static_chunked_lat_ns: Vec<u64> = Vec::new();
    let mut static_chunked_pass = |lat: Option<&mut Vec<u64>>| {
        static_broker.reset_report();
        let mut delivered = 0usize;
        let mut batch_lat = Vec::new();
        for chunk in events.chunks(CHURN_PERIOD) {
            let t0 = std::time::Instant::now();
            delivered += static_broker
                .publish_batch(chunk, None)
                .expect("events come from the model")
                .len();
            batch_lat.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        if let Some(lat) = lat {
            lat.extend(batch_lat);
        }
        delivered
    };
    std::hint::black_box(static_chunked_pass(None));
    std::hint::black_box(churn_pass(None));
    let mut best_static_chunked = f64::INFINITY;
    let mut best_churn = f64::INFINITY;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        std::hint::black_box(static_chunked_pass(Some(&mut static_chunked_lat_ns)));
        best_static_chunked = best_static_chunked.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        std::hint::black_box(churn_pass(Some(&mut churn_lat_ns)));
        best_churn = best_churn.min(start.elapsed().as_secs_f64());
    }
    let static_chunked_eps = n as f64 / best_static_chunked;
    let churn_eps = n as f64 / best_churn;
    let static_chunked_latency = batch_quantiles(&mut static_chunked_lat_ns);
    let churn_latency = batch_quantiles(&mut churn_lat_ns);
    let churn_counters = churn_broker.churn_counters();

    let overlay_overhead_pct = 100.0 * (1.0 - overlay_eps / static_eps);
    let churn_overhead_pct = 100.0 * (1.0 - churn_eps / static_chunked_eps);
    let within_20_percent = churn_eps >= 0.8 * static_chunked_eps;

    println!(
        "live-churn broker throughput, {} nodes / {} edges, {} subscriptions, {} events\n\
         (overlay + recompiled engines verified identical to the static build):",
        testbed.topology.graph().node_count(),
        testbed.topology.graph().edge_count(),
        total,
        n,
    );
    println!("{:<28} {:>14} {:>10}", "phase", "events/s", "overhead");
    println!("{:<28} {:>14.0} {:>9.1}%", "static", static_eps, 0.0);
    println!(
        "{:<28} {:>14.0} {:>9.1}%",
        format!("static ({CHURN_PERIOD}-event batches)"),
        static_chunked_eps,
        100.0 * (1.0 - static_chunked_eps / static_eps)
    );
    println!(
        "{:<28} {:>14.0} {:>9.1}%",
        "overlay (10% pending)", overlay_eps, overlay_overhead_pct
    );
    println!(
        "{:<28} {:>14.0} {:>9.1}%",
        format!("churn (pair / {CHURN_PERIOD} events)"),
        churn_eps,
        churn_overhead_pct
    );
    println!(
        "per-batch latency ({CHURN_PERIOD} events): static p50 {:.2} ms / p99 {:.2} ms, \
         churn p50 {:.2} ms / p99 {:.2} ms",
        static_chunked_latency.p50_ns as f64 / 1e6,
        static_chunked_latency.p99_ns as f64 / 1e6,
        churn_latency.p50_ns as f64 / 1e6,
        churn_latency.p99_ns as f64 / 1e6,
    );
    println!("recompile latency: {recompile_ms:.1} ms (1000 subscriptions)");
    println!(
        "sustained churn within 20% of static at equal batch size: {} ({} local refreshes)",
        if within_20_percent { "yes" } else { "NO" },
        churn_counters.local_refreshes
    );

    let out = Output {
        nodes: testbed.topology.graph().node_count(),
        edges: testbed.topology.graph().edge_count(),
        subscriptions: total,
        overlay_subscriptions: total - compiled,
        events: n,
        samples,
        host: pubsub_bench::host_info(),
        churn_period: CHURN_PERIOD,
        static_events_per_sec: static_eps,
        static_chunked_events_per_sec: static_chunked_eps,
        overlay_events_per_sec: overlay_eps,
        overlay_overhead_pct,
        recompile_ms,
        churn_events_per_sec: churn_eps,
        churn_overhead_pct,
        static_chunked_latency,
        churn_latency,
        within_20_percent,
        churn_counters,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    if let Err(e) = std::fs::write("BENCH_churn.json", &json) {
        eprintln!("warning: could not write BENCH_churn.json: {e}");
    }
    assert!(
        within_20_percent,
        "sustained churn throughput fell more than 20% below the static baseline"
    );
}
