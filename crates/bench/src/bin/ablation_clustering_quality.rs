//! Clustering quality ablation: the expected-waste objective vs the
//! realized network improvement, per algorithm.
//!
//! The clustering algorithms greedily minimize expected wasted
//! deliveries; the simulation measures the realized cost improvement.
//! This ablation reports the *exact* expected-waste objective (see
//! `pubsub_clustering::expected_waste`) next to the realized static and
//! dynamic improvements. Waste counts deliveries while the improvement
//! metric weighs link costs, so the rankings correlate only loosely —
//! which is itself a finding: the EW distance optimizes a proxy.
//!
//! Writes `results/ablation_clustering_quality.json`. Override the event
//! count with `PUBSUB_EVENTS` (default 4000).

use pubsub_bench::{
    build_broker, build_testbed, drive, event_count, sample_events, scenario, write_json, Seeds,
};
use pubsub_clustering::{
    cluster, expected_waste, ClusteringAlgorithm, ClusteringConfig, GridModel,
};
use pubsub_core::DeliveryMode;
use pubsub_geom::Grid;
use pubsub_workload::{stock_space, Modes};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    groups: usize,
    expected_waste: f64,
    static_improvement: f64,
    dynamic_improvement: f64,
}

fn main() {
    let n = event_count(4000);
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let events = sample_events(&model, n, Seeds::default().publications);

    // The same grid model the broker builds internally.
    let space = stock_space();
    let mut nodes: Vec<_> = testbed.subscriptions.iter().map(|&(n, _)| n).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let subs: Vec<(usize, pubsub_geom::Rect)> = testbed
        .subscriptions
        .iter()
        .map(|(nd, r)| (nodes.binary_search(nd).expect("collected"), space.clamp(r)))
        .collect();
    let grid = Grid::uniform(space.bounds().clone(), 10).expect("finite bounds");
    let density = model.clone();
    let grid_model =
        GridModel::build(grid, nodes.len(), &subs, move |r| density.mass(r)).expect("valid");

    println!(
        "== Clustering quality: EW objective vs realized improvement (9 modes, {n} events) ==\n"
    );
    println!(
        "{:>22} {:>7} {:>14} {:>12} {:>12}",
        "algorithm", "groups", "EW objective", "static t=0", "dynamic .15"
    );
    let mut rows = Vec::new();
    for groups in [11usize, 61] {
        for alg in ClusteringAlgorithm::ALL {
            let partition =
                cluster(&grid_model, &ClusteringConfig::new(alg, groups)).expect("valid config");
            let objective = expected_waste(&grid_model, &partition);
            let mut broker =
                build_broker(&testbed, &model, alg, groups, 0.0, DeliveryMode::DenseMode);
            let static_report = drive(&mut broker, &events);
            broker.set_threshold(0.15).expect("valid");
            let dynamic_report = drive(&mut broker, &events);
            println!(
                "{:>22} {:>7} {:>14.3} {:>11.1}% {:>11.1}%",
                alg.to_string(),
                groups,
                objective,
                static_report.improvement_percent(),
                dynamic_report.improvement_percent()
            );
            rows.push(Row {
                algorithm: alg.to_string(),
                groups,
                expected_waste: objective,
                static_improvement: static_report.improvement_percent(),
                dynamic_improvement: dynamic_report.improvement_percent(),
            });
        }
    }
    println!("\nexpected shape: 61 groups dominate 11 on both columns; the waste objective");
    println!("(deliveries) and the improvement metric (link costs) correlate loosely.");
    write_json("ablation_clustering_quality", &rows);
    println!("wrote results/ablation_clustering_quality.json");
}
