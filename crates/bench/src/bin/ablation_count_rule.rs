//! Ratio rule vs absolute-count rule (§1 names both: "the number (or the
//! ratio of the number to the group size) of subscriptions relevant to
//! each publication event").
//!
//! Sweeps the fraction threshold and the absolute-count threshold on the
//! same broker and event stream. With similarly-sized groups the two
//! rules coincide around `count ≈ t·|M|`; the ratio rule adapts to group
//! size, the count rule is cheaper to evaluate and needs no group-size
//! bookkeeping.
//!
//! Writes `results/ablation_count_rule.json`. Override the event count
//! with `PUBSUB_EVENTS` (default 6000).

use pubsub_bench::{
    build_broker, build_testbed, drive, event_count, sample_events, scenario, write_json, Seeds,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::{DeliveryMode, DistributionPolicy};
use pubsub_workload::Modes;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    rule: String,
    parameter: f64,
    improvement: f64,
    multicasts: u64,
}

fn main() {
    let n = event_count(6000);
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let events = sample_events(&model, n, Seeds::default().publications);
    let mut broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.0,
        DeliveryMode::DenseMode,
    );
    let avg_group =
        broker.groups().sizes().iter().sum::<usize>() as f64 / broker.groups().len().max(1) as f64;

    println!("== Ratio vs absolute-count distribution rules (9 modes, 11 groups, {n} events) ==");
    println!("mean group size: {avg_group:.0} members\n");
    println!(
        "{:>10} {:>12} {:>12} {:>11}",
        "rule", "parameter", "improvement", "multicasts"
    );

    let mut rows = Vec::new();
    for t in [0.0, 0.05, 0.10, 0.15, 0.20, 0.30] {
        broker.set_threshold(t).expect("valid threshold");
        let r = drive(&mut broker, &events);
        println!(
            "{:>10} {:>11.0}% {:>11.1}% {:>11}",
            "ratio",
            t * 100.0,
            r.improvement_percent(),
            r.multicasts
        );
        rows.push(Row {
            rule: "ratio".into(),
            parameter: t,
            improvement: r.improvement_percent(),
            multicasts: r.multicasts,
        });
    }
    println!();
    for count in [0usize, 4, 8, 16, 24, 32, 48] {
        *broker.policy_mut() = DistributionPolicy::by_count(count);
        let r = drive(&mut broker, &events);
        println!(
            "{:>10} {:>12} {:>11.1}% {:>11}",
            "count",
            count,
            r.improvement_percent(),
            r.multicasts
        );
        rows.push(Row {
            rule: "count".into(),
            parameter: count as f64,
            improvement: r.improvement_percent(),
            multicasts: r.multicasts,
        });
    }
    println!("\nexpected shape: both rules show the interior optimum; the count rule's best");
    println!("parameter sits near t*·(mean group size).");
    write_json("ablation_count_rule", &rows);
    println!("wrote results/ablation_count_rule.json");
}
