//! Figure 6 on replayed trade data (extension): instead of the parametric
//! 1/4/9-mode mixtures, drive the broker with publications replayed from
//! the synthetic NYSE trading day of §5.1 (`TradingDay::replay_events`).
//!
//! The paper uses the NYSE analysis only to *justify* its parametric
//! distributions; this experiment closes the loop by publishing the
//! trades themselves and checking that the headline shape — an interior
//! optimal threshold beating both the static scheme and pure unicast —
//! survives on data the clustering density model was *not* fitted to
//! (the density still uses the 9-mode mixture, a deliberate mismatch).
//!
//! Writes `results/fig6_nyse_replay.json`. Override the replay length
//! with `PUBSUB_EVENTS` (default 10000 trades).

use pubsub_bench::{
    build_broker, build_testbed, event_count, scenario, threshold_sweep, write_json, Seeds,
    SweepPoint,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::DeliveryMode;
use pubsub_workload::nyse::{NyseConfig, ReplayConfig};
use pubsub_workload::Modes;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    groups: usize,
    trades_replayed: usize,
    sweep: Vec<SweepPoint>,
}

fn main() {
    let n = event_count(10_000);
    let testbed = build_testbed(Seeds::default());
    let day = NyseConfig::riabov_day().generate(1999).expect("preset");
    let mut events = day.replay_events(&ReplayConfig::default(), 5);
    events.truncate(n);

    println!("== Figure 6 variant: replayed NYSE trades as publications ==");
    println!("{} trades replayed into the event space\n", events.len());

    // Clustering still uses the parametric 9-mode density: the realistic
    // mismatch between the model groups were built for and live traffic.
    let model = scenario(Modes::Nine);
    let mut results = Vec::new();
    for groups in [11usize, 61] {
        let mut broker = build_broker(
            &testbed,
            &model,
            ClusteringAlgorithm::ForgyKMeans,
            groups,
            0.0,
            DeliveryMode::DenseMode,
        );
        let thresholds = [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50];
        let sweep = threshold_sweep(&mut broker, &events, &thresholds);
        println!("-- {groups} groups --");
        println!(
            "{:>10} {:>12} {:>16}",
            "threshold", "improvement", "multicast share"
        );
        for p in &sweep {
            println!(
                "{:>9.0}% {:>11.1}% {:>16.2}",
                p.threshold * 100.0,
                p.improvement_percent,
                p.multicast_fraction
            );
        }
        println!();
        results.push(Out {
            groups,
            trades_replayed: events.len(),
            sweep,
        });
    }
    println!("expected shape: interior peak survives the model/traffic mismatch;");
    println!("absolute improvements may sit below the matched-model Figure 6 numbers.");
    write_json("fig6_nyse_replay", &results);
    println!("wrote results/fig6_nyse_replay.json");
}
