//! S-tree ablation (§3's design parameters): how the skew factor `p` and
//! fanout `M` shape the tree and its point-query cost, against the
//! Hilbert- and Morton-packed R-trees and the linear scan.
//!
//! The metric is *nodes visited per point query* — the in-memory analogue
//! of the page-access counts the spatial-database literature reports.
//! Writes `results/ablation_stree.json`.

use pubsub_bench::{build_testbed, sample_events, scenario, write_json, Seeds};
use pubsub_geom::Space;
use pubsub_stree::{
    CountingIndex, CurveKind, Entry, EntryId, PackedConfig, PackedRTree, STree, STreeConfig,
};
use pubsub_workload::{stock_space, Modes};
use serde::Serialize;

#[derive(Serialize)]
struct StreeRow {
    fanout: usize,
    skew: f64,
    nodes: usize,
    max_leaf_depth: usize,
    avg_leaf_depth: f64,
    sibling_overlap_fraction: f64,
    avg_visited_per_query: f64,
    avg_matches: f64,
}

#[derive(Serialize)]
struct BaselineRow {
    index: String,
    avg_visited_per_query: f64,
}

fn entries(space: &Space, testbed: &pubsub_bench::Testbed) -> Vec<Entry> {
    testbed
        .subscriptions
        .iter()
        .enumerate()
        .map(|(i, (_, rect))| Entry::new(space.clamp(rect), EntryId(i as u32)))
        .collect()
}

fn main() {
    let testbed = build_testbed(Seeds::default());
    let space = stock_space();
    let entries = entries(&space, &testbed);
    let model = scenario(Modes::Nine);
    let events = sample_events(&model, 2000, 99);

    println!("== S-tree ablation: skew factor p and fanout M ==");
    println!(
        "{} subscriptions, 2000 point queries (9-mode events)\n",
        entries.len()
    );
    println!(
        "{:>6} {:>6} {:>7} {:>10} {:>10} {:>9} {:>14} {:>10}",
        "M", "p", "nodes", "max depth", "avg depth", "overlap", "visited/query", "matches"
    );

    let mut stree_rows = Vec::new();
    for &fanout in &[8usize, 16, 40, 64] {
        for &skew in &[0.1f64, 0.2, 0.3, 0.4, 0.5] {
            let tree = STree::build(
                entries.clone(),
                STreeConfig::new(fanout, skew).expect("valid parameters"),
            )
            .expect("finite clamped entries");
            let stats = tree.stats();
            let mut visited_total = 0usize;
            let mut matches_total = 0usize;
            for e in &events {
                let (hits, visited) = tree.query_point_counting(e);
                visited_total += visited;
                matches_total += hits.len();
            }
            let row = StreeRow {
                fanout,
                skew,
                nodes: stats.node_count,
                max_leaf_depth: stats.max_leaf_depth,
                avg_leaf_depth: stats.avg_leaf_depth,
                sibling_overlap_fraction: stats.sibling_overlap_fraction,
                avg_visited_per_query: visited_total as f64 / events.len() as f64,
                avg_matches: matches_total as f64 / events.len() as f64,
            };
            println!(
                "{:>6} {:>6.1} {:>7} {:>10} {:>10.2} {:>9.3} {:>14.2} {:>10.2}",
                row.fanout,
                row.skew,
                row.nodes,
                row.max_leaf_depth,
                row.avg_leaf_depth,
                row.sibling_overlap_fraction,
                row.avg_visited_per_query,
                row.avg_matches
            );
            stree_rows.push(row);
        }
    }

    println!("\n== baselines at M=40 (visited nodes per query; linear scan visits every entry) ==");
    let mut baselines = Vec::new();
    for (name, visited) in [
        (
            "hilbert-rtree".to_string(),
            avg_visited_packed(&entries, CurveKind::Hilbert, &events),
        ),
        (
            "morton-rtree".to_string(),
            avg_visited_packed(&entries, CurveKind::Morton, &events),
        ),
        (
            // For the counting algorithm "visited" = candidate counter
            // increments (its unit of work).
            "counting".to_string(),
            avg_increments_counting(&entries, &events),
        ),
        ("linear-scan".to_string(), entries.len() as f64),
    ] {
        println!("{name:>16}: {visited:>10.2}");
        baselines.push(BaselineRow {
            index: name,
            avg_visited_per_query: visited,
        });
    }

    #[derive(Serialize)]
    struct Out {
        stree: Vec<StreeRow>,
        baselines: Vec<BaselineRow>,
    }
    write_json(
        "ablation_stree",
        &Out {
            stree: stree_rows,
            baselines,
        },
    );
    println!("\nwrote results/ablation_stree.json");
}

fn avg_increments_counting(entries: &[Entry], events: &[pubsub_geom::Point]) -> f64 {
    let idx = CountingIndex::new(entries.to_vec()).expect("consistent dims");
    let total: usize = events.iter().map(|e| idx.query_point_counting(e).1).sum();
    total as f64 / events.len() as f64
}

fn avg_visited_packed(entries: &[Entry], curve: CurveKind, events: &[pubsub_geom::Point]) -> f64 {
    let tree = PackedRTree::build(
        entries.to_vec(),
        PackedConfig::new(40, curve, 10).expect("valid parameters"),
    )
    .expect("finite clamped entries");
    let total: usize = events.iter().map(|e| tree.query_point_counting(e).1).sum();
    total as f64 / events.len() as f64
}
