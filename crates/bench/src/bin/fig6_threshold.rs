//! Figure 6 (the headline experiment): the effect of dynamically switching
//! to unicast based on the proportion of interested subscribers.
//!
//! For each publication scenario (1/4/9 modes), group count (11 and 61)
//! and clustering algorithm (Forgy k-means, pairwise grouping, minimum
//! spanning tree), sweep the distribution threshold `t` and report the
//! communication-cost improvement over pure unicast (0% = unicast each
//! message, 100% = a dedicated multicast group per message).
//!
//! Expected shape, per the paper: improvement peaks at an interior
//! threshold around 15%; `t = 0` (the static scheme) is worse than the
//! peak; high thresholds degrade to unicast (0%); 61 groups beat 11.
//!
//! Writes `results/fig6_threshold.json`. Override the publication count
//! with `PUBSUB_EVENTS` (default 10000).

use pubsub_bench::{
    build_broker, build_testbed, event_count, sample_events, scenario, threshold_sweep, write_json,
    Seeds, SweepPoint,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::DeliveryMode;
use pubsub_workload::Modes;
use serde::Serialize;

const THRESHOLDS: [f64; 11] = [
    0.0, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50,
];
const ALGORITHMS: [ClusteringAlgorithm; 3] = [
    ClusteringAlgorithm::ForgyKMeans,
    ClusteringAlgorithm::PairwiseGrouping,
    ClusteringAlgorithm::MinimumSpanningTree,
];

#[derive(Serialize)]
struct Cell {
    modes: usize,
    groups: usize,
    algorithm: String,
    sweep: Vec<SweepPoint>,
}

fn main() {
    let events_per_cell = event_count(10_000);
    let testbed = build_testbed(Seeds::default());
    println!("== Figure 6: dynamic unicast/multicast switching vs threshold ==");
    println!(
        "testbed: {} nodes, {} subscriptions, {} publications per cell\n",
        testbed.topology.stats().nodes,
        testbed.subscriptions.len(),
        events_per_cell
    );

    let mut results: Vec<Cell> = Vec::new();
    for modes in Modes::ALL {
        let model = scenario(modes);
        let events = sample_events(&model, events_per_cell, Seeds::default().publications);
        for groups in [11usize, 61] {
            println!("-- {modes}, {groups} multicast groups --");
            print!("{:>10}", "threshold");
            for alg in ALGORITHMS {
                print!(" {:>22}", alg.to_string());
            }
            println!();
            let mut sweeps = Vec::new();
            for alg in ALGORITHMS {
                let mut broker =
                    build_broker(&testbed, &model, alg, groups, 0.0, DeliveryMode::DenseMode);
                sweeps.push(threshold_sweep(&mut broker, &events, &THRESHOLDS));
            }
            for (ti, &t) in THRESHOLDS.iter().enumerate() {
                print!("{:>9.1}%", t * 100.0);
                for sweep in &sweeps {
                    print!(" {:>21.1}%", sweep[ti].improvement_percent);
                }
                println!();
            }
            println!();
            for (alg, sweep) in ALGORITHMS.iter().zip(sweeps) {
                results.push(Cell {
                    modes: modes.mode_count(),
                    groups,
                    algorithm: alg.to_string(),
                    sweep,
                });
            }
        }
    }

    // Headline summary: best threshold per cell.
    println!("== summary: best threshold per configuration ==");
    println!(
        "{:>6} {:>7} {:>22} {:>10} {:>12} {:>12}",
        "modes", "groups", "algorithm", "best t", "improve %", "at t=0 %"
    );
    for cell in &results {
        let best = cell
            .sweep
            .iter()
            .max_by(|a, b| a.improvement_percent.total_cmp(&b.improvement_percent))
            .expect("non-empty sweep");
        let at_zero = cell.sweep[0].improvement_percent;
        println!(
            "{:>6} {:>7} {:>22} {:>9.1}% {:>11.1}% {:>11.1}%",
            cell.modes,
            cell.groups,
            cell.algorithm,
            best.threshold * 100.0,
            best.improvement_percent,
            at_zero
        );
    }

    write_json("fig6_threshold", &results);
    println!("\nwrote results/fig6_threshold.json");
}
