//! Distribution-scheme ablation: the design choices DESIGN.md calls out.
//!
//! 1. Static (`t = 0`) vs dynamic (`t = 0.15`) distribution, per
//!    clustering algorithm — quantifying the paper's core claim that the
//!    dynamic scheme improves on static multicast groups.
//! 2. Dense-mode (network) multicast vs application-level multicast —
//!    the paper states its results apply to both flavors.
//! 3. The batch k-means variant vs the paper's immediate-update Forgy.
//!
//! Writes `results/ablation_distribution.json`. Override the publication
//! count with `PUBSUB_EVENTS` (default 4000).

use pubsub_bench::{
    build_broker, build_testbed, drive, event_count, sample_events, scenario, write_json, Seeds,
};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::DeliveryMode;
use pubsub_workload::Modes;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    delivery: String,
    static_improvement: f64,
    dynamic_improvement: f64,
    dynamic_multicasts: u64,
    dynamic_unicasts: u64,
    dynamic_wasted: u64,
}

fn main() {
    let events_per_cell = event_count(4000);
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let events = sample_events(&model, events_per_cell, Seeds::default().publications);
    let groups = 11usize;

    println!("== Distribution ablation (9 modes, 11 groups, {events_per_cell} events) ==\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>11} {:>10} {:>8}",
        "clustering", "delivery", "static t=0", "dynamic .15", "multicasts", "unicasts", "wasted"
    );

    let mut rows = Vec::new();
    // Sparse mode needs a rendezvous point: a central transit node.
    let rp = testbed.topology.transit_nodes_of_block(1)[0];
    for alg in [
        ClusteringAlgorithm::ForgyKMeans,
        ClusteringAlgorithm::BatchKMeans,
        ClusteringAlgorithm::PairwiseGrouping,
        ClusteringAlgorithm::MinimumSpanningTree,
    ] {
        for delivery in [
            DeliveryMode::DenseMode,
            DeliveryMode::SparseMode { rendezvous: rp },
            DeliveryMode::ApplicationLevel,
        ] {
            let mut broker = build_broker(&testbed, &model, alg, groups, 0.0, delivery);
            let static_report = drive(&mut broker, &events);
            broker.set_threshold(0.15).expect("valid threshold");
            let dynamic_report = drive(&mut broker, &events);
            let delivery_name = match delivery {
                DeliveryMode::DenseMode => "dense-mode",
                DeliveryMode::SparseMode { .. } => "sparse-mode",
                DeliveryMode::ApplicationLevel => "alm",
            };
            println!(
                "{:>22} {:>12} {:>11.1}% {:>11.1}% {:>11} {:>10} {:>8}",
                alg.to_string(),
                delivery_name,
                static_report.improvement_percent(),
                dynamic_report.improvement_percent(),
                dynamic_report.multicasts,
                dynamic_report.unicasts,
                dynamic_report.wasted_deliveries,
            );
            rows.push(Row {
                algorithm: alg.to_string(),
                delivery: delivery_name.to_string(),
                static_improvement: static_report.improvement_percent(),
                dynamic_improvement: dynamic_report.improvement_percent(),
                dynamic_multicasts: dynamic_report.multicasts,
                dynamic_unicasts: dynamic_report.unicasts,
                dynamic_wasted: dynamic_report.wasted_deliveries,
            });
        }
    }

    println!("\nexpected shape: dynamic >= static for every row; ALM improvements comparable to dense-mode");
    write_json("ablation_distribution", &rows);
    println!("wrote results/ablation_distribution.json");
}
