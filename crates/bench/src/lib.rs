//! Shared experiment harness for the figure/table binaries and Criterion
//! benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index); this library
//! holds the plumbing they share: building the paper's testbed (topology +
//! subscriptions + publication model), driving a broker over an event
//! stream, and sweeping thresholds.

#![deny(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub_core::{Broker, CostReport, DeliveryMode};
use pubsub_geom::Point;
use pubsub_netsim::{Topology, TransitStubConfig};
use pubsub_workload::{stock_space, Modes, PublicationModel, SubscriptionConfig};

/// Seeds that make every experiment reproducible end to end.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Seeds {
    /// Topology generation seed.
    pub topology: u64,
    /// Subscription generation seed.
    pub subscriptions: u64,
    /// Publication stream seed.
    pub publications: u64,
}

impl Default for Seeds {
    fn default() -> Self {
        Seeds {
            topology: 1903,
            subscriptions: 2003,
            publications: 23,
        }
    }
}

/// The paper's testbed: the ~600-node transit-stub network and the 1000
/// placed stock subscriptions.
#[derive(Debug)]
pub struct Testbed {
    /// The generated network.
    pub topology: Topology,
    /// `(node, rect)` subscriptions in generation order.
    pub subscriptions: Vec<(pubsub_netsim::NodeId, pubsub_geom::Rect)>,
}

/// Builds the paper's testbed from seeds.
///
/// # Panics
///
/// Panics if the static experiment configuration is rejected (cannot
/// happen for the built-in presets).
pub fn build_testbed(seeds: Seeds) -> Testbed {
    let topology = TransitStubConfig::riabov()
        .generate(seeds.topology)
        .expect("preset config is valid");
    let placed = SubscriptionConfig::riabov()
        .generate(&topology, seeds.subscriptions)
        .expect("preset config is valid");
    let subscriptions = placed.into_iter().map(|p| (p.node, p.rect)).collect();
    Testbed {
        topology,
        subscriptions,
    }
}

/// Builds a broker on the testbed for one experimental cell.
///
/// # Panics
///
/// Panics if the combination is invalid (cannot happen for paper
/// parameter ranges).
pub fn build_broker(
    testbed: &Testbed,
    model: &PublicationModel,
    algorithm: ClusteringAlgorithm,
    groups: usize,
    threshold: f64,
    delivery: DeliveryMode,
) -> Broker {
    let model = model.clone();
    Broker::builder(testbed.topology.clone(), stock_space())
        .subscriptions(testbed.subscriptions.iter().cloned())
        .clustering(ClusteringConfig::new(algorithm, groups))
        .threshold(threshold)
        .delivery_mode(delivery)
        .density(move |r| model.mass(r))
        .build()
        .expect("experiment configuration is valid")
}

/// Samples a reproducible publication stream.
pub fn sample_events(model: &PublicationModel, count: usize, seed: u64) -> Vec<Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count).map(|_| model.sample(&mut rng)).collect()
}

/// Publishes every event and returns the cumulative report.
///
/// Drives the broker through [`Broker::publish_batch`] with the default
/// worker count: the matching stage runs in parallel, and the report is
/// guaranteed identical to a sequential publish loop.
///
/// # Panics
///
/// Panics if an event has the wrong dimensionality (the harness samples
/// them from the broker's own space, so this is a programming error).
pub fn drive(broker: &mut Broker, events: &[Point]) -> CostReport {
    drive_with(broker, events, None)
}

/// [`drive`] with an explicit matching worker count (`None` = available
/// parallelism, `Some(1)` = fully sequential).
///
/// # Panics
///
/// Panics if an event has the wrong dimensionality.
pub fn drive_with(broker: &mut Broker, events: &[Point], threads: Option<usize>) -> CostReport {
    broker.reset_report();
    broker
        .publish_batch(events, threads)
        .expect("events come from the model");
    *broker.report()
}

/// One row of a threshold sweep.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SweepPoint {
    /// The threshold `t`.
    pub threshold: f64,
    /// Improvement over unicast (paper's vertical axis).
    pub improvement_percent: f64,
    /// Mean delivery cost per message.
    pub avg_cost: f64,
    /// Fraction of delivered messages that were multicast.
    pub multicast_fraction: f64,
    /// Deliveries to uninterested subscribers.
    pub wasted_deliveries: u64,
}

/// Sweeps the distribution threshold on one broker, re-publishing the
/// same event stream at each point (Figure 6's horizontal axis).
///
/// # Panics
///
/// Panics if a threshold is outside `[0, 1]`.
pub fn threshold_sweep(
    broker: &mut Broker,
    events: &[Point],
    thresholds: &[f64],
) -> Vec<SweepPoint> {
    thresholds
        .iter()
        .map(|&t| {
            broker.set_threshold(t).expect("threshold in [0,1]");
            let report = drive(broker, events);
            let sent = (report.unicasts + report.multicasts).max(1);
            SweepPoint {
                threshold: t,
                improvement_percent: report.improvement_percent(),
                avg_cost: report.avg_cost(),
                multicast_fraction: report.multicasts as f64 / sent as f64,
                wasted_deliveries: report.wasted_deliveries,
            }
        })
        .collect()
}

/// The publication scenarios of §5, by mode count.
pub fn scenario(modes: Modes) -> PublicationModel {
    modes.model()
}

/// The host execution environment, recorded uniformly in every
/// `BENCH_*.json` header so results can be compared across machines:
/// a 1-core CI runner and a 32-core workstation produce legitimately
/// different numbers, and the JSON must say which one it came from.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HostInfo {
    /// `std::thread::available_parallelism()` at process start (1 when
    /// the host cannot report it).
    pub host_cores: usize,
    /// The interval-containment kernel level the matcher dispatched to
    /// at runtime ("scalar", "sse2" or "avx2") — also reflects
    /// `PUBSUB_NO_SIMD=1`.
    pub simd_level: &'static str,
}

/// Snapshots [`HostInfo`] for a bench JSON header. Embed with
/// `#[serde(flatten)]` so every file carries the same two keys.
pub fn host_info() -> HostInfo {
    HostInfo {
        host_cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        simd_level: pubsub_stree::simd::active_level().name(),
    }
}

/// Formats a table row of `f64` cells for the experiment binaries.
pub fn row(cells: &[f64]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>10.2}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Writes an experiment's machine-readable result next to the
/// human-readable stdout tables: `results/<name>.json` under the current
/// directory. Failures are reported but non-fatal (the figures still
/// print).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(dir.join(format!("{name}.json")), json)
    };
    if let Err(e) = write() {
        eprintln!("warning: could not write results/{name}.json: {e}");
    }
}

/// Times `pass` over `samples` runs (after one warm-up) and returns the
/// best events-per-second figure. Each pass's result feeds a black box so
/// the measured work cannot be optimized away.
pub fn measure<T>(events: usize, samples: usize, mut pass: impl FnMut() -> T) -> f64 {
    std::hint::black_box(pass());
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        std::hint::black_box(pass());
        best = best.min(start.elapsed().as_secs_f64());
    }
    events as f64 / best
}

/// Per-batch latency quantiles, pooled across every timed sample of a
/// [`measure_batched`] run. Throughput alone hides tail behaviour — two
/// engines with equal events/sec can differ 10x at p99 — so the closed-
/// loop benches report these next to their rate columns.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct BatchLatency {
    /// Batches pooled into the quantiles.
    pub batches: usize,
    /// Median per-batch wall-clock, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-batch wall-clock, nanoseconds.
    pub p99_ns: u64,
}

/// Computes [`BatchLatency`] from raw per-batch durations (sorted in
/// place). Empty input yields the all-zero default.
pub fn batch_quantiles(lat_ns: &mut [u64]) -> BatchLatency {
    if lat_ns.is_empty() {
        return BatchLatency::default();
    }
    lat_ns.sort_unstable();
    let pick = |q: f64| {
        let rank = (q * (lat_ns.len() - 1) as f64).round() as usize;
        lat_ns[rank.min(lat_ns.len() - 1)]
    };
    BatchLatency {
        batches: lat_ns.len(),
        p50_ns: pick(0.50),
        p99_ns: pick(0.99),
    }
}

/// [`measure`] that also reports per-batch latency quantiles. `pass`
/// calls the recorder once per published batch with that batch's
/// wall-clock duration; the warm-up run's batches are discarded and the
/// quantiles pool every batch from the timed samples.
pub fn measure_batched<T>(
    events: usize,
    samples: usize,
    mut pass: impl FnMut(&mut dyn FnMut(std::time::Duration)) -> T,
) -> (f64, BatchLatency) {
    std::hint::black_box(pass(&mut |_| {}));
    let mut lat_ns: Vec<u64> = Vec::new();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let mut record = |d: std::time::Duration| {
            lat_ns.push(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        };
        let start = std::time::Instant::now();
        std::hint::black_box(pass(&mut record));
        best = best.min(start.elapsed().as_secs_f64());
    }
    (events as f64 / best, batch_quantiles(&mut lat_ns))
}

/// Number of publications per experimental cell; override with the
/// `PUBSUB_EVENTS` environment variable (e.g. for quick smoke runs).
/// Unparsable or zero overrides fall back to `default` — a zero event
/// count would make every throughput figure 0/0 and once produced an
/// all-zero `BENCH_matching.json`.
pub fn event_count(default: usize) -> usize {
    std::env::var("PUBSUB_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Subscription counts for the scale rows: `PUBSUB_SUBS` (a single
/// positive integer) restricts the sweep to that one count; otherwise
/// `default` is used as-is. Unparsable or zero overrides fall back to
/// `default`.
pub fn sub_counts(default: &[usize]) -> Vec<usize> {
    std::env::var("PUBSUB_SUBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .map_or_else(|| default.to_vec(), |n| vec![n])
}

/// Byte-accounting global allocator wrapper: tracks the number of heap
/// bytes currently live (and the peak) across every thread, delegating
/// the actual work to the system allocator. Install in a binary with
/// `#[global_allocator]` to measure a structure's resident footprint as
/// the live-byte delta across its construction.
pub mod heap {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The wrapper allocator; see the module docs.
    #[derive(Debug)]
    pub struct MeterAlloc;

    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    fn add(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for MeterAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                add(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
                add(new_size);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                add(layout.size());
            }
            p
        }
    }

    /// Heap bytes currently live (allocated and not yet freed).
    pub fn live_bytes() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Highest live-byte level seen since process start (or the last
    /// [`reset_peak`]).
    pub fn peak_bytes() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Rebases the peak to the current live level, so a following
    /// [`peak_bytes`] reads the high-water mark of just the code in
    /// between.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_is_reproducible() {
        let a = build_testbed(Seeds::default());
        let b = build_testbed(Seeds::default());
        assert_eq!(a.subscriptions, b.subscriptions);
        assert_eq!(a.topology.stats(), b.topology.stats());
        assert_eq!(a.subscriptions.len(), 1000);
    }

    #[test]
    fn small_sweep_produces_finite_improvements() {
        let testbed = build_testbed(Seeds::default());
        let model = scenario(Modes::Nine);
        let mut broker = build_broker(
            &testbed,
            &model,
            ClusteringAlgorithm::ForgyKMeans,
            11,
            0.15,
            DeliveryMode::DenseMode,
        );
        let events = sample_events(&model, 300, 7);
        let sweep = threshold_sweep(&mut broker, &events, &[0.0, 0.15, 0.5]);
        assert_eq!(sweep.len(), 3);
        for p in &sweep {
            assert!(p.improvement_percent.is_finite());
            assert!(p.improvement_percent <= 100.0 + 1e-9);
            assert!(p.avg_cost >= 0.0);
        }
        // At t=0 every group hit multicasts; at t=0.5 fewer do.
        assert!(sweep[0].multicast_fraction >= sweep[2].multicast_fraction);
    }

    #[test]
    fn events_are_reproducible() {
        let model = scenario(Modes::One);
        assert_eq!(sample_events(&model, 10, 3), sample_events(&model, 10, 3));
    }

    #[test]
    fn row_formats_fixed_width() {
        let s = row(&[1.0, 2.5]);
        assert!(s.contains("1.00") && s.contains("2.50"));
    }

    #[test]
    fn batch_quantiles_bracket_the_samples() {
        let mut lat: Vec<u64> = (1..=100).collect();
        let q = batch_quantiles(&mut lat);
        assert_eq!(q.batches, 100);
        assert!(q.p50_ns >= 45 && q.p50_ns <= 55, "p50 = {}", q.p50_ns);
        assert!(q.p99_ns >= 99, "p99 = {}", q.p99_ns);
        assert_eq!(batch_quantiles(&mut []).batches, 0);
    }

    #[test]
    fn measure_batched_pools_timed_batches_only() {
        let samples = 3;
        let batches_per_pass = 4;
        let (eps, lat) = measure_batched(100, samples, |rec| {
            for _ in 0..batches_per_pass {
                rec(std::time::Duration::from_micros(50));
            }
        });
        assert!(eps > 0.0 && eps.is_finite());
        // The warm-up pass's batches are not pooled.
        assert_eq!(lat.batches, samples * batches_per_pass);
        assert_eq!(lat.p50_ns, 50_000);
        assert_eq!(lat.p99_ns, 50_000);
    }

    #[test]
    fn event_count_rejects_zero_and_garbage() {
        // Serialized to avoid races on the process environment.
        let cases = [("0", 500), ("junk", 500), ("250", 250)];
        for (value, expected) in cases {
            std::env::set_var("PUBSUB_EVENTS", value);
            assert_eq!(event_count(500), expected, "PUBSUB_EVENTS={value}");
        }
        std::env::remove_var("PUBSUB_EVENTS");
        assert_eq!(event_count(500), 500);
    }
}
