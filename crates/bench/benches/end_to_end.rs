//! End-to-end broker throughput: publications per second through the full
//! match → locate-group → decide → cost pipeline, across thresholds and
//! delivery modes, plus the one-off broker construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pubsub_bench::{build_broker, build_testbed, sample_events, scenario, Seeds};
use pubsub_clustering::ClusteringAlgorithm;
use pubsub_core::DeliveryMode;
use pubsub_workload::Modes;

fn bench_publish(c: &mut Criterion) {
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let events = sample_events(&model, 1024, 5);

    let mut group = c.benchmark_group("publish");
    group.throughput(Throughput::Elements(events.len() as u64));
    for &threshold in &[0.0f64, 0.15, 1.0] {
        let mut broker = build_broker(
            &testbed,
            &model,
            ClusteringAlgorithm::ForgyKMeans,
            11,
            threshold,
            DeliveryMode::DenseMode,
        );
        group.bench_with_input(
            BenchmarkId::new("dense", format!("t{threshold}")),
            &events,
            |b, events| {
                b.iter(|| {
                    for e in events {
                        broker.publish(e).expect("valid event");
                    }
                    broker.report().messages
                })
            },
        );
    }
    // The batched pipeline: parallel matching, sequential (deterministic)
    // decide/cost/record fold.
    let mut batch_broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.15,
        DeliveryMode::DenseMode,
    );
    group.bench_with_input(
        BenchmarkId::new("dense_batch", "t0.15"),
        &events,
        |b, events| {
            b.iter(|| {
                batch_broker
                    .publish_batch(events, None)
                    .expect("valid events")
                    .len()
            })
        },
    );

    let mut alm_broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.15,
        DeliveryMode::ApplicationLevel,
    );
    group.bench_with_input(BenchmarkId::new("alm", "t0.15"), &events, |b, events| {
        b.iter(|| {
            for e in events {
                alm_broker.publish(e).expect("valid event");
            }
            alm_broker.report().messages
        })
    });
    group.finish();
}

fn bench_broker_build(c: &mut Criterion) {
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let mut group = c.benchmark_group("broker_build");
    group.sample_size(10);
    for &groups in &[11usize, 61] {
        group.bench_with_input(BenchmarkId::new("forgy", groups), &groups, |b, &groups| {
            b.iter(|| {
                build_broker(
                    &testbed,
                    &model,
                    ClusteringAlgorithm::ForgyKMeans,
                    groups,
                    0.15,
                    DeliveryMode::DenseMode,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_publish, bench_broker_build
}
criterion_main!(benches);
