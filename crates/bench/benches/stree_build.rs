//! S-tree construction cost: bulk build time against subscription count
//! `k` and against the design parameters (fanout `M`, skew factor `p`),
//! compared with bottom-up Hilbert packing.
//!
//! The paper's §3 choices under test: `M ≈ 40`, `p ≈ 0.3`. Lower skew
//! factors admit more candidate splits (more work, more freedom); larger
//! fanouts shrink the tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pubsub_netsim::TransitStubConfig;
use pubsub_stree::{Entry, EntryId, PackedConfig, PackedRTree, STree, STreeConfig};
use pubsub_workload::{stock_space, SubscriptionConfig};

fn entries(k: usize) -> Vec<Entry> {
    let topology = TransitStubConfig::riabov().generate(77).expect("preset");
    let mut config = SubscriptionConfig::riabov();
    config.count = k;
    let placed = config.generate(&topology, 79).expect("preset");
    let space = stock_space();
    placed
        .iter()
        .enumerate()
        .map(|(i, p)| Entry::new(space.clamp(&p.rect), EntryId(i as u32)))
        .collect()
}

fn bench_build_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_scaling");
    for &k in &[1_000usize, 10_000, 50_000] {
        let input = entries(k);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("stree", k), &input, |b, input| {
            b.iter(|| STree::build(input.clone(), STreeConfig::default()).expect("finite"))
        });
        group.bench_with_input(BenchmarkId::new("hilbert", k), &input, |b, input| {
            b.iter(|| PackedRTree::build(input.clone(), PackedConfig::hilbert()).expect("finite"))
        });
    }
    group.finish();
}

fn bench_build_parameters(c: &mut Criterion) {
    let input = entries(10_000);
    let mut group = c.benchmark_group("build_parameters");
    for &fanout in &[8usize, 40, 64] {
        for &skew in &[0.1f64, 0.3, 0.5] {
            let config = STreeConfig::new(fanout, skew).expect("valid");
            group.bench_with_input(
                BenchmarkId::new("stree", format!("M{fanout}_p{skew}")),
                &config,
                |b, &config| b.iter(|| STree::build(input.clone(), config).expect("finite")),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build_scaling, bench_build_parameters
}
criterion_main!(benches);
