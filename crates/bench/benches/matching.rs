//! Matching throughput: point queries per second on the paper's
//! subscription workload, S-tree vs the packed R-tree baselines vs the
//! linear-scan oracle, sweeping the subscription count `k`.
//!
//! The paper's §3 claim under test: tree indexes answer point queries
//! efficiently and scale with `k`; the comparison trees are the
//! Hilbert-packed R-tree the paper cites and a Morton-packed variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pubsub_bench::{sample_events, scenario};
use pubsub_netsim::TransitStubConfig;
use pubsub_stree::{
    CountingIndex, CurveKind, Entry, EntryId, FlatSTree, LinearScan, PackedConfig, PackedRTree,
    STree, STreeConfig, SpatialIndex,
};
use pubsub_workload::{stock_space, Modes, SubscriptionConfig};

fn entries(k: usize) -> Vec<Entry> {
    let topology = TransitStubConfig::riabov().generate(77).expect("preset");
    let mut config = SubscriptionConfig::riabov();
    config.count = k;
    let placed = config.generate(&topology, 78).expect("preset");
    let space = stock_space();
    placed
        .iter()
        .enumerate()
        .map(|(i, p)| Entry::new(space.clamp(&p.rect), EntryId(i as u32)))
        .collect()
}

fn bench_point_queries(c: &mut Criterion) {
    let events = sample_events(&scenario(Modes::Nine), 512, 5);
    let mut group = c.benchmark_group("point_query");
    for &k in &[1_000usize, 10_000, 50_000] {
        let entries = entries(k);
        group.throughput(Throughput::Elements(events.len() as u64));

        let stree = STree::build(entries.clone(), STreeConfig::default()).expect("finite");
        group.bench_with_input(BenchmarkId::new("stree", k), &stree, |b, idx| {
            let mut out = Vec::new();
            b.iter(|| {
                for e in &events {
                    out.clear();
                    idx.query_point_into(e, &mut out);
                }
                out.len()
            })
        });

        let flat = FlatSTree::from_stree(&stree);
        group.bench_with_input(BenchmarkId::new("flat", k), &flat, |b, idx| {
            let mut stack = Vec::new();
            let mut out = Vec::new();
            b.iter(|| {
                for e in &events {
                    out.clear();
                    idx.query_point_with(e, &mut stack, &mut out);
                }
                out.len()
            })
        });

        group.bench_with_input(BenchmarkId::new("flat_count", k), &flat, |b, idx| {
            let mut stack = Vec::new();
            b.iter(|| {
                let mut total = 0usize;
                for e in &events {
                    total += idx.count_point_with(e, &mut stack);
                }
                total
            })
        });

        let hilbert = PackedRTree::build(entries.clone(), PackedConfig::hilbert()).expect("finite");
        group.bench_with_input(BenchmarkId::new("hilbert", k), &hilbert, |b, idx| {
            let mut out = Vec::new();
            b.iter(|| {
                for e in &events {
                    out.clear();
                    idx.query_point_into(e, &mut out);
                }
                out.len()
            })
        });

        let morton = PackedRTree::build(
            entries.clone(),
            PackedConfig::new(40, CurveKind::Morton, 10).expect("valid"),
        )
        .expect("finite");
        group.bench_with_input(BenchmarkId::new("morton", k), &morton, |b, idx| {
            let mut out = Vec::new();
            b.iter(|| {
                for e in &events {
                    out.clear();
                    idx.query_point_into(e, &mut out);
                }
                out.len()
            })
        });

        let counting = CountingIndex::new(entries.clone()).expect("consistent dims");
        group.bench_with_input(BenchmarkId::new("counting", k), &counting, |b, idx| {
            let mut out = Vec::new();
            b.iter(|| {
                for e in &events {
                    out.clear();
                    idx.query_point_into(e, &mut out);
                }
                out.len()
            })
        });

        // The O(k) baseline only at the smallest sizes (it dominates
        // runtime beyond that without adding information).
        if k <= 10_000 {
            let linear = LinearScan::new(entries).expect("consistent dims");
            group.bench_with_input(BenchmarkId::new("linear", k), &linear, |b, idx| {
                let mut out = Vec::new();
                b.iter(|| {
                    for e in &events {
                        out.clear();
                        idx.query_point_into(e, &mut out);
                    }
                    out.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_point_queries
}
criterion_main!(benches);
