//! Clustering algorithm running time on the paper's workload: `T = 200`
//! cells, `n ∈ {11, 61}` groups.
//!
//! The paper's Appendix A claims under test: Forgy k-means has the
//! shortest running time; pairwise grouping achieves quality at a
//! significantly worse running time; the MST algorithm sits between
//! because it computes all pairwise distances only once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pubsub_bench::{build_testbed, scenario, Seeds};
use pubsub_clustering::{cluster, ClusteringAlgorithm, ClusteringConfig, GridModel};
use pubsub_geom::Grid;
use pubsub_workload::{stock_space, Modes};

fn model() -> GridModel {
    let testbed = build_testbed(Seeds::default());
    let space = stock_space();
    let grid = Grid::uniform(space.bounds().clone(), 10).expect("finite bounds");
    // Dense subscriber indexing as the broker does it.
    let mut nodes: Vec<_> = testbed.subscriptions.iter().map(|&(n, _)| n).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let subs: Vec<(usize, pubsub_geom::Rect)> = testbed
        .subscriptions
        .iter()
        .map(|(n, r)| (nodes.binary_search(n).expect("collected"), space.clamp(r)))
        .collect();
    let publication_model = scenario(Modes::Nine);
    GridModel::build(grid, nodes.len(), &subs, move |r| publication_model.mass(r))
        .expect("valid model")
}

fn bench_algorithms(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("clustering");
    for &n in &[11usize, 61] {
        for alg in ClusteringAlgorithm::ALL {
            let config = ClusteringConfig::new(alg, n);
            group.bench_with_input(
                BenchmarkId::new(alg.to_string(), n),
                &config,
                |b, config| b.iter(|| cluster(&model, config).expect("valid config")),
            );
        }
    }
    group.finish();
}

fn bench_grid_model_build(c: &mut Criterion) {
    let testbed = build_testbed(Seeds::default());
    let space = stock_space();
    let mut nodes: Vec<_> = testbed.subscriptions.iter().map(|&(n, _)| n).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let subs: Vec<(usize, pubsub_geom::Rect)> = testbed
        .subscriptions
        .iter()
        .map(|(n, r)| (nodes.binary_search(n).expect("collected"), space.clamp(r)))
        .collect();
    let publication_model = scenario(Modes::Nine);

    let mut group = c.benchmark_group("grid_model");
    for &cells in &[5usize, 10, 15] {
        group.bench_with_input(BenchmarkId::new("build", cells), &cells, |b, &cells| {
            b.iter(|| {
                let grid = Grid::uniform(space.bounds().clone(), cells).expect("finite");
                GridModel::build(grid, nodes.len(), &subs, |r| publication_model.mass(r))
                    .expect("valid")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms, bench_grid_model_build
}
criterion_main!(benches);
