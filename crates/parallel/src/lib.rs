//! Deterministic data-parallel primitives: a persistent worker pool and
//! block-cyclic batch assignment.
//!
//! The batched publish pipeline needs two properties at once: results
//! **in input order** regardless of how many workers ran or how the OS
//! scheduled them, and **no per-batch setup cost** (the previous
//! implementation spawned fresh `std::thread::scope` threads per batch,
//! which made the parallel path *slower* than the single-threaded flat
//! matcher). The external `rayon` crate is unavailable in this build
//! environment, so this crate implements the primitives directly:
//!
//! * [`WorkerPool`] — long-lived threads parked on a condvar, woken by a
//!   generation counter, running a borrowed job closure with no per-batch
//!   allocation (the closure is passed by reference, never boxed).
//! * **Block-cyclic assignment** ([`block_ranges`]) — the input is cut
//!   into fixed [`BLOCK`]-sized blocks and block `b` belongs to worker
//!   `b % workers`. Every worker writes its results at the items' global
//!   indices, so the output is independent of the worker count *by
//!   construction*, and interleaving blocks keeps the load balanced even
//!   when cost varies along the event stream (one contiguous chunk per
//!   worker would stall the whole batch on the slowest region).
//! * [`PipelineScratch`] — per-worker state constructed once and reused
//!   across batches (match scratch, cost scratch, result arenas), handed
//!   to the job exclusively via [`WorkerPool::pipeline`].

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Fixed block size of the block-cyclic assignment. Small enough to
/// balance load across workers on realistic batches, large enough that a
/// block's results stay cache-resident through a fused
/// match → cost → decide pass.
pub const BLOCK: usize = 64;

/// Resolves a requested worker count: `None` (or `Some(0)`) means "use
/// available parallelism", anything else is taken as given. Always ≥ 1.
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// The block-cyclic index ranges owned by one worker: blocks `worker`,
/// `worker + workers`, `worker + 2·workers`, … of `len` items, each range
/// [`BLOCK`] long except possibly the globally last. Ranges are yielded
/// in ascending index order.
#[derive(Clone, Debug)]
pub struct BlockRanges {
    len: usize,
    next: usize,
    stride: usize,
}

impl Iterator for BlockRanges {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.len {
            return None;
        }
        let start = self.next;
        self.next = self.next.saturating_add(self.stride);
        Some(start..(start + BLOCK).min(self.len))
    }
}

/// The ranges of `0..len` assigned to `worker` out of `workers` under the
/// block-cyclic scheme. The ranges of all workers partition `0..len`.
///
/// # Panics
///
/// Panics if `worker >= workers` or `workers == 0`.
pub fn block_ranges(len: usize, workers: usize, worker: usize) -> BlockRanges {
    assert!(worker < workers, "worker {worker} out of {workers}");
    BlockRanges {
        len,
        next: worker * BLOCK,
        stride: workers * BLOCK,
    }
}

/// A raw pointer that may cross thread boundaries. Safety is the
/// caller's: every use here hands each worker a disjoint region.
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Maps `f` over `items` on up to `threads` scoped worker threads, giving
/// each worker its own scratch built by `make_scratch`. Results come back
/// in input order; panics in workers propagate to the caller.
///
/// Work is dealt in block-cyclic fashion ([`block_ranges`]) and every
/// worker writes each result directly at its item's global index, so the
/// output is identical to a sequential `items.iter().map(f)` for any
/// thread count — and no worker is stuck with one contiguous "expensive"
/// region of the input.
///
/// With `threads <= 1` (or a short input) the map runs inline on the
/// caller's thread — same code path, no spawn overhead. For repeated
/// batches prefer a persistent [`WorkerPool`]; this function still spawns
/// per call.
pub fn map_with_scratch<T, U, S, MS, F>(
    items: &[T],
    threads: usize,
    make_scratch: MS,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> U + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers == 1 || items.len() <= BLOCK {
        let mut scratch = make_scratch();
        return items.iter().map(|item| f(item, &mut scratch)).collect();
    }

    let len = items.len();
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialization.
    unsafe { out.set_len(len) };
    let out_ptr = SendPtr(out.as_mut_ptr());
    let (f, make_scratch) = (&f, &make_scratch);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    // Bind the whole wrapper so closure capture analysis
                    // doesn't reach through to the raw pointer field.
                    let out_ptr = out_ptr;
                    let mut scratch = make_scratch();
                    for range in block_ranges(len, workers, w) {
                        for i in range {
                            let value = f(&items[i], &mut scratch);
                            // SAFETY: block ranges partition 0..len, so
                            // index i is written exactly once, by this
                            // worker.
                            unsafe { (*out_ptr.0.add(i)).write(value) };
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("parallel worker panicked");
        }
    });
    // SAFETY: every index was written exactly once (a panic above does
    // not reach here). Vec<MaybeUninit<U>> and Vec<U> share layout.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<U>(), len, out.capacity()) }
}

/// [`map_with_scratch`] without scratch state.
pub fn map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_with_scratch(items, threads, || (), |item, _scratch| f(item))
}

/// Per-worker state reused across batches by [`WorkerPool::pipeline`]:
/// scratch buffers, result arenas — anything a fused pipeline stage wants
/// to construct once and keep warm.
pub trait PipelineScratch: Send {
    /// Called on each participating worker's state at the start of every
    /// batch (before any work item), e.g. to reset result arenas while
    /// keeping their capacity.
    fn begin_batch(&mut self);
}

/// A borrowed job: erased pointer to a `Fn(usize) + Sync` closure on the
/// caller's stack. Valid only while the caller blocks in
/// [`WorkerPool::run`], which it does by construction.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync and the caller keeps it alive (and itself
// blocked) until every worker is done with it.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per dispatched job; workers detect new work by
    /// comparing against the last generation they acknowledged.
    generation: u64,
    /// Workers participating in the current generation (`0..limit`).
    limit: usize,
    /// Participating workers that have not finished the current job yet.
    active: usize,
    shutdown: bool,
    panicked: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation (or shutdown).
    work: Condvar,
    /// The caller waits here for `active == 0`.
    done: Condvar,
}

/// A persistent, deterministic worker pool: `threads` long-lived threads
/// parked on a condvar, woken per batch by a generation counter. Jobs are
/// plain `Fn(usize)` closures passed **by reference** (no boxing, no
/// per-batch allocation); [`WorkerPool::run`] blocks until every
/// participating worker has finished, so the closure may borrow freely
/// from the caller's stack.
///
/// Determinism is not the pool's concern — it dispatches worker *indices*
/// — but combined with [`block_ranges`] output order holds by
/// construction: worker `w` always owns the same global indices.
///
/// Dropping the pool shuts the threads down and joins them.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let pool = pubsub_parallel::WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(3, |w| {
///     hits.fetch_add(w + 1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                limit: 0,
                active: 0,
                shutdown: false,
                panicked: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pubsub-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job(w)` for every worker index `w in 0..workers` and blocks
    /// until all of them finish. `workers` is clamped to the pool size;
    /// with one worker the job runs inline on the caller's thread.
    /// Concurrent callers are serialized (whole jobs never interleave),
    /// so one pool can be shared by several brokers.
    ///
    /// # Panics
    ///
    /// Panics if any worker's job panicked (after all workers of the
    /// batch have finished, so the pool stays usable).
    pub fn run(&self, workers: usize, job: impl Fn(usize) + Sync) {
        let workers = workers.clamp(1, self.threads());
        if workers == 1 {
            job(0);
            return;
        }
        let job_ref: *const (dyn Fn(usize) + Sync + '_) = &job;
        // SAFETY (lifetime erasure + later dereference): the pointer is
        // only dereferenced by workers of the generation dispatched
        // below, and this function does not return until all of them are
        // done with it, so the erased borrow outlives every use.
        let job_ptr = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job_ref)
        });
        let mut st = self.shared.state.lock().expect("pool lock");
        while st.active != 0 {
            st = self.shared.done.wait(st).expect("pool lock");
        }
        st.job = Some(job_ptr);
        st.limit = workers;
        st.active = workers;
        st.generation += 1;
        st.panicked = false;
        drop(st);
        self.shared.work.notify_all();
        let mut st = self.shared.state.lock().expect("pool lock");
        while st.active != 0 {
            st = self.shared.done.wait(st).expect("pool lock");
        }
        st.job = None;
        let panicked = st.panicked;
        st.panicked = false;
        drop(st);
        // Wake any caller queued behind us in the serialization loop.
        self.shared.done.notify_all();
        assert!(!panicked, "worker pool job panicked");
    }

    /// Runs a fused pipeline over `len` items: worker `w` gets exclusive
    /// access to `states[w]` (reset via [`PipelineScratch::begin_batch`])
    /// and its block-cyclic ranges ([`block_ranges`]). Returns the number
    /// of workers actually used — `workers` clamped to the pool size and
    /// `states.len()`, or 1 when the batch is at most one block (the job
    /// then runs inline with worker 0's state and ranges).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or a worker's job panicked.
    pub fn pipeline<S, F>(&self, workers: usize, states: &mut [S], len: usize, f: F) -> usize
    where
        S: PipelineScratch,
        F: Fn(usize, &mut S, BlockRanges) + Sync,
    {
        assert!(!states.is_empty(), "pipeline needs at least one state");
        let workers = workers.clamp(1, self.threads()).min(states.len());
        if workers == 1 || len <= BLOCK {
            pipeline_inline(&mut states[0], len, f);
            return 1;
        }
        let ptr = SendPtr(states.as_mut_ptr());
        self.run(workers, |w| {
            // Bind the whole wrapper so closure capture analysis doesn't
            // reach through to the raw pointer field.
            let ptr = &ptr;
            // SAFETY: run() invokes each worker index exactly once per
            // batch and w < workers <= states.len(), so the &mut regions
            // are disjoint.
            let state = unsafe { &mut *ptr.0.add(w) };
            state.begin_batch();
            f(w, state, block_ranges(len, workers, w));
        });
        workers
    }
}

/// The single-worker pipeline fast path: runs the whole batch inline on
/// the caller's thread with worker index 0 — bit-identical to
/// [`WorkerPool::pipeline`] with any worker count, no pool required.
pub fn pipeline_inline<S, F>(state: &mut S, len: usize, f: F)
where
    S: PipelineScratch,
    F: Fn(usize, &mut S, BlockRanges) + Sync,
{
    state.begin_batch();
    f(0, state, block_ranges(len, 1, 0));
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    if index < st.limit {
                        break st.job.expect("job set for dispatched generation");
                    }
                    // Not participating in this generation: acknowledge
                    // it and keep waiting.
                }
                st = shared.work.wait(st).expect("pool lock");
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the dispatching caller keeps the closure alive (and
            // itself blocked) until `active` reaches zero below.
            unsafe { (*job.0)(index) }
        }));
        let mut st = shared.state.lock().expect("pool lock");
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 16, 1000, 5000] {
            let got = map(&items, threads, |x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_non_copy_results() {
        let items: Vec<u32> = (0..500).collect();
        let expected: Vec<String> = items.iter().map(|x| format!("#{x}")).collect();
        for threads in [1, 3, 8] {
            assert_eq!(map(&items, threads, |x| format!("#{x}")), expected);
        }
    }

    #[test]
    fn scratch_is_per_worker() {
        let items: Vec<usize> = (0..256).collect();
        let got = map_with_scratch(&items, 4, Vec::<usize>::new, |item, scratch| {
            scratch.push(*item);
            // A worker only ever sees its own, in-order scratch.
            assert!(scratch.windows(2).all(|w| w[0] < w[1]));
            *item
        });
        assert_eq!(got, items);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, 8, |x| *x).is_empty());
        assert_eq!(map(&[5u32], 8, |x| x + 1), vec![6]);
    }

    #[test]
    fn effective_threads_floor_is_one() {
        assert!(effective_threads(None) >= 1);
        assert!(effective_threads(Some(0)) >= 1);
        assert_eq!(effective_threads(Some(3)), 3);
    }

    #[test]
    fn block_ranges_partition_in_order() {
        for len in [0usize, 1, 63, 64, 65, 128, 1000, 4096 + 17] {
            for workers in [1usize, 2, 3, 7, 64] {
                let mut covered = vec![false; len];
                for w in 0..workers {
                    let mut prev_end = None;
                    for range in block_ranges(len, workers, w) {
                        assert!(range.end <= len);
                        assert!(
                            range.len() == BLOCK || range.end == len,
                            "only the last block may be partial"
                        );
                        if let Some(end) = prev_end {
                            assert!(range.start >= end, "ranges ascend per worker");
                        }
                        prev_end = Some(range.end);
                        for i in range {
                            assert!(!covered[i], "index {i} covered twice");
                            covered[i] = true;
                        }
                    }
                }
                assert!(covered.iter().all(|&c| c), "len={len} workers={workers}");
            }
        }
    }

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        for workers in [2, 3, 4, 9] {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(workers, |w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            let expected = workers.min(4);
            for (w, h) in hits.iter().enumerate() {
                let want = usize::from(w < expected);
                assert_eq!(h.load(Ordering::Relaxed), want, "worker {w}");
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_batches() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(3, |_w| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    struct SumState {
        batches: usize,
        sum: u64,
    }

    impl PipelineScratch for SumState {
        fn begin_batch(&mut self) {
            self.batches += 1;
            self.sum = 0;
        }
    }

    #[test]
    fn pipeline_matches_sequential_for_any_worker_count() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..1017).collect();
        let expected: u64 = items.iter().map(|x| x * 7).sum();
        for workers in [1usize, 2, 3, 4, 9] {
            let mut states: Vec<SumState> =
                (0..4).map(|_| SumState { batches: 0, sum: 0 }).collect();
            let used = pool.pipeline(workers, &mut states, items.len(), |_w, st, ranges| {
                for range in ranges {
                    for i in range {
                        st.sum += items[i] * 7;
                    }
                }
            });
            assert_eq!(used, workers.min(4));
            let got: u64 = states[..used].iter().map(|s| s.sum).sum();
            assert_eq!(got, expected, "workers={workers}");
            // begin_batch ran exactly on the participating states.
            for (i, st) in states.iter().enumerate() {
                assert_eq!(st.batches, usize::from(i < used), "state {i}");
            }
        }
    }

    #[test]
    fn pipeline_inlines_small_batches() {
        let pool = WorkerPool::new(4);
        let mut states: Vec<SumState> = (0..4).map(|_| SumState { batches: 0, sum: 0 }).collect();
        let used = pool.pipeline(4, &mut states, BLOCK, |w, st, ranges| {
            assert_eq!(w, 0);
            st.sum = ranges.map(|r| r.len() as u64).sum();
        });
        assert_eq!(used, 1);
        assert_eq!(states[0].sum, BLOCK as u64);
    }

    #[test]
    fn pool_panics_propagate_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, |w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable after a panicked job.
        let hits = AtomicUsize::new(0);
        pool.run(2, |_w| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_drop_joins_cleanly() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        pool.run(3, |_w| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool); // must not hang or leak threads
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn concurrent_callers_are_serialized() {
        let pool = Arc::new(WorkerPool::new(2));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut callers = Vec::new();
        for _ in 0..4 {
            let (pool, in_flight, max_seen) = (
                Arc::clone(&pool),
                Arc::clone(&in_flight),
                Arc::clone(&max_seen),
            );
            callers.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    pool.run(2, |w| {
                        if w == 0 {
                            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                            max_seen.fetch_max(now, Ordering::SeqCst);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                    });
                }
            }));
        }
        for c in callers {
            c.join().expect("caller thread");
        }
        // Jobs never interleave: at most one batch's worker 0 at a time.
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }
}
