//! Deterministic data-parallel helpers built on `std::thread::scope`.
//!
//! The batched matching pipeline needs exactly one primitive: map a pure
//! function over a slice with per-thread scratch state, and get results
//! back **in input order** regardless of how many workers ran or how the
//! OS scheduled them. The external `rayon` crate is unavailable in this
//! build environment, and the full work-stealing machinery is unnecessary
//! for the read-only matching stage, so this crate implements the
//! primitive directly: the input is cut into one contiguous chunk per
//! worker, each worker maps its chunk in order, and the chunks are
//! concatenated in order. Determinism therefore holds by construction —
//! the output is identical to a sequential `items.iter().map(f)` for any
//! thread count.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::num::NonZeroUsize;

/// Resolves a requested worker count: `None` (or `Some(0)`) means "use
/// available parallelism", anything else is taken as given. Always ≥ 1.
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` on up to `threads` scoped worker threads, giving
/// each worker its own scratch built by `make_scratch`. Results come back
/// in input order; panics in workers propagate to the caller.
///
/// With `threads <= 1` (or a short input) the map runs inline on the
/// caller's thread — same code path, no spawn overhead.
pub fn map_with_scratch<T, U, S, MS, F>(
    items: &[T],
    threads: usize,
    make_scratch: MS,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> U + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers == 1 {
        let mut scratch = make_scratch();
        return items.iter().map(|item| f(item, &mut scratch)).collect();
    }

    // Contiguous chunks, sized so every worker gets within one item of the
    // same load; chunk order == input order.
    let chunk_len = items.len().div_ceil(workers);
    let mut results: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(|| {
                    let mut scratch = make_scratch();
                    chunk
                        .iter()
                        .map(|item| f(item, &mut scratch))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for part in results {
        out.extend(part);
    }
    out
}

/// [`map_with_scratch`] without scratch state.
pub fn map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_with_scratch(items, threads, || (), |item, _scratch| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 16, 1000, 5000] {
            let got = map(&items, threads, |x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_per_worker() {
        let items: Vec<usize> = (0..256).collect();
        let got = map_with_scratch(&items, 4, Vec::<usize>::new, |item, scratch| {
            scratch.push(*item);
            // A worker only ever sees its own, in-order scratch.
            assert!(scratch.windows(2).all(|w| w[0] < w[1]));
            *item
        });
        assert_eq!(got, items);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, 8, |x| *x).is_empty());
        assert_eq!(map(&[5u32], 8, |x| x + 1), vec![6]);
    }

    #[test]
    fn effective_threads_floor_is_one() {
        assert!(effective_threads(None) >= 1);
        assert!(effective_threads(Some(0)) >= 1);
        assert_eq!(effective_threads(Some(3)), 3);
    }
}
