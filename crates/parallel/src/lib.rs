//! Deterministic data-parallel primitives: a persistent worker pool and
//! block-cyclic batch assignment.
//!
//! The batched publish pipeline needs two properties at once: results
//! **in input order** regardless of how many workers ran or how the OS
//! scheduled them, and **no per-batch setup cost** (the previous
//! implementation spawned fresh `std::thread::scope` threads per batch,
//! which made the parallel path *slower* than the single-threaded flat
//! matcher). The external `rayon` crate is unavailable in this build
//! environment, so this crate implements the primitives directly:
//!
//! * [`WorkerPool`] — long-lived threads parked on a condvar, woken by a
//!   generation counter, running a borrowed job closure with no per-batch
//!   allocation (the closure is passed by reference, never boxed).
//! * **Block-cyclic assignment** ([`block_ranges`]) — the input is cut
//!   into fixed [`BLOCK`]-sized blocks and block `b` belongs to worker
//!   `b % workers`. Every worker writes its results at the items' global
//!   indices, so the output is independent of the worker count *by
//!   construction*, and interleaving blocks keeps the load balanced even
//!   when cost varies along the event stream (one contiguous chunk per
//!   worker would stall the whole batch on the slowest region).
//! * [`PipelineScratch`] — per-worker state constructed once and reused
//!   across batches (match scratch, cost scratch, result arenas), handed
//!   to the job exclusively via [`WorkerPool::pipeline`].
//! * [`StageQueue`] — the bounded hand-off between pipeline stages of
//!   the staged (async) serving path: a multi-producer multi-consumer
//!   queue whose [`StageQueue::try_push`] is the admission-control
//!   primitive (a full queue is an *explicit reject*, never a block),
//!   with depth gauges for the serving metrics.
//!
//! # Fault containment
//!
//! A panicking job must not take down unrelated work sharing the pool.
//! Three layers enforce that:
//!
//! * every lock acquisition recovers from poisoning
//!   (`unwrap_or_else(|e| e.into_inner())`) — the pool state is
//!   consistent at every unlock point, so a panic elsewhere must not
//!   wedge other brokers sharing the pool;
//! * [`WorkerPool::try_run`] / [`WorkerPool::try_pipeline`] report *which*
//!   workers panicked instead of panicking themselves, and `try_pipeline`
//!   quarantines exactly those workers' blocks and recomputes them inline
//!   on the caller's thread (a [`PipelineScratch::begin_batch`] reset
//!   makes the retry bit-identical to a clean run);
//! * dropping the pool first drains any job still in flight — workers
//!   prioritize a dispatched generation over shutdown — so a caller
//!   blocked in [`WorkerPool::run`] is never stranded waiting for
//!   `active` to reach zero.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Fixed block size of the block-cyclic assignment. Small enough to
/// balance load across workers on realistic batches, large enough that a
/// block's results stay cache-resident through a fused
/// match → cost → decide pass.
pub const BLOCK: usize = 64;

/// Resolves a requested worker count: `None` (or `Some(0)`) means "use
/// available parallelism", anything else is taken as given. Always ≥ 1.
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Locks with poison recovery: the pool invariants hold at every unlock
/// point, so a poisoned mutex (a caller unwound while holding the guard)
/// still guards consistent state and must not wedge unrelated brokers
/// sharing the pool.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait`] with the same poison recovery as [`lock`].
fn cv_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// The block-cyclic index ranges owned by one worker: blocks `worker`,
/// `worker + workers`, `worker + 2·workers`, … of `len` items, each range
/// [`BLOCK`] long except possibly the globally last. Ranges are yielded
/// in ascending index order.
#[derive(Clone, Debug)]
pub struct BlockRanges {
    len: usize,
    next: usize,
    stride: usize,
}

impl Iterator for BlockRanges {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.len {
            return None;
        }
        let start = self.next;
        self.next = self.next.saturating_add(self.stride);
        Some(start..(start + BLOCK).min(self.len))
    }
}

/// The ranges of `0..len` assigned to `worker` out of `workers` under the
/// block-cyclic scheme. The ranges of all workers partition `0..len`.
///
/// # Panics
///
/// Panics if `worker >= workers` or `workers == 0`.
pub fn block_ranges(len: usize, workers: usize, worker: usize) -> BlockRanges {
    assert!(worker < workers, "worker {worker} out of {workers}");
    BlockRanges {
        len,
        next: worker * BLOCK,
        stride: workers * BLOCK,
    }
}

/// A raw pointer that may cross thread boundaries. Safety is the
/// caller's: every use here hands each worker a disjoint region.
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Maps `f` over `items` on up to `threads` scoped worker threads, giving
/// each worker its own scratch built by `make_scratch`. Results come back
/// in input order.
///
/// Work is dealt in block-cyclic fashion ([`block_ranges`]) and every
/// worker writes each result directly at its item's global index, so the
/// output is identical to a sequential `items.iter().map(f)` for any
/// thread count — and no worker is stuck with one contiguous "expensive"
/// region of the input.
///
/// A worker that panics is quarantined: its blocks are recomputed inline
/// on the caller's thread with a fresh scratch (results its panicked run
/// already produced are overwritten without being dropped, so they may
/// leak — acceptable on the panic path, never unsound). The panic only
/// propagates if the inline retry panics too.
///
/// With `threads <= 1` (or a short input) the map runs inline on the
/// caller's thread — same code path, no spawn overhead. For repeated
/// batches prefer a persistent [`WorkerPool`]; this function still spawns
/// per call.
pub fn map_with_scratch<T, U, S, MS, F>(
    items: &[T],
    threads: usize,
    make_scratch: MS,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> U + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers == 1 || items.len() <= BLOCK {
        let mut scratch = make_scratch();
        return items.iter().map(|item| f(item, &mut scratch)).collect();
    }

    let len = items.len();
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialization.
    unsafe { out.set_len(len) };
    let out_ptr = SendPtr(out.as_mut_ptr());
    let (f, make_scratch) = (&f, &make_scratch);
    let panicked: Vec<AtomicBool> = (0..workers).map(|_| AtomicBool::new(false)).collect();
    let panicked = &panicked;
    std::thread::scope(|scope| {
        for (w, worker_panicked) in panicked.iter().enumerate() {
            scope.spawn(move || {
                // Bind the whole wrapper so closure capture analysis
                // doesn't reach through to the raw pointer field.
                let out_ptr = out_ptr;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut scratch = make_scratch();
                    for range in block_ranges(len, workers, w) {
                        for i in range {
                            let value = f(&items[i], &mut scratch);
                            // SAFETY: block ranges partition 0..len, so
                            // index i is written exactly once, by this
                            // worker (or by its inline retry below, which
                            // only starts after this worker is done).
                            unsafe { (*out_ptr.0.add(i)).write(value) };
                        }
                    }
                }));
                if result.is_err() {
                    worker_panicked.store(true, Ordering::Release);
                }
            });
        }
    });
    // Quarantine + inline retry: recompute panicked workers' blocks from
    // a fresh scratch. Slots their panicked run already wrote are simply
    // overwritten (the old value leaks rather than being dropped — a
    // MaybeUninit slot's initialization state is unknowable here).
    for (w, worker_panicked) in panicked.iter().enumerate() {
        if !worker_panicked.load(Ordering::Acquire) {
            continue;
        }
        let mut scratch = make_scratch();
        for range in block_ranges(len, workers, w) {
            for i in range {
                let value = f(&items[i], &mut scratch);
                // SAFETY: i belongs to worker w, which has exited.
                unsafe { (*out_ptr.0.add(i)).write(value) };
            }
        }
    }
    // SAFETY: every index was written exactly once by its owning worker,
    // or rewritten by the inline retry after that worker exited.
    // Vec<MaybeUninit<U>> and Vec<U> share layout.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<U>(), len, out.capacity()) }
}

/// [`map_with_scratch`] without scratch state.
pub fn map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_with_scratch(items, threads, || (), |item, _scratch| f(item))
}

/// Per-worker state reused across batches by [`WorkerPool::pipeline`]:
/// scratch buffers, result arenas — anything a fused pipeline stage wants
/// to construct once and keep warm.
pub trait PipelineScratch: Send {
    /// Called on each participating worker's state at the start of every
    /// batch (before any work item), e.g. to reset result arenas while
    /// keeping their capacity. A correct implementation must erase *all*
    /// traces of prior batches: the quarantine path relies on
    /// `begin_batch` alone making an inline retry bit-identical to a
    /// clean run.
    fn begin_batch(&mut self);
}

/// A borrowed job: erased pointer to a `Fn(usize) + Sync` closure on the
/// caller's stack. Valid only while the caller blocks in
/// [`WorkerPool::run`], which it does by construction.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync and the caller keeps it alive (and itself
// blocked) until every worker is done with it.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per dispatched job; workers detect new work by
    /// comparing against the last generation they acknowledged.
    generation: u64,
    /// Workers participating in the current generation (`0..limit`).
    limit: usize,
    /// Participating workers that have not finished the current job yet.
    active: usize,
    shutdown: bool,
    /// Indices of workers whose job panicked in the current generation.
    panicked: Vec<usize>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation (or shutdown).
    work: Condvar,
    /// The caller waits here for `active == 0`.
    done: Condvar,
}

/// A persistent, deterministic worker pool: `threads` long-lived threads
/// parked on a condvar, woken per batch by a generation counter. Jobs are
/// plain `Fn(usize)` closures passed **by reference** (no boxing, no
/// per-batch allocation); [`WorkerPool::run`] blocks until every
/// participating worker has finished, so the closure may borrow freely
/// from the caller's stack.
///
/// Determinism is not the pool's concern — it dispatches worker *indices*
/// — but combined with [`block_ranges`] output order holds by
/// construction: worker `w` always owns the same global indices.
///
/// Dropping the pool drains any in-flight job, shuts the threads down and
/// joins them.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let pool = pubsub_parallel::WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(3, |w| {
///     hits.fetch_add(w + 1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .finish_non_exhaustive()
    }
}

/// Outcome of [`WorkerPool::try_pipeline`]: how many workers took part,
/// and how many had to be quarantined (their pool job panicked and their
/// blocks were recomputed inline on the caller's thread).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PipelineRun {
    /// Workers that participated in the batch (1 for the inline path).
    pub workers: usize,
    /// Workers whose job panicked and whose blocks were retried inline.
    /// Zero on a clean batch.
    pub quarantined: usize,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                limit: 0,
                active: 0,
                shutdown: false,
                panicked: Vec::new(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pubsub-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job(w)` for every worker index `w in 0..workers` and blocks
    /// until all of them finish. `workers` is clamped to the pool size;
    /// with one worker the job runs inline on the caller's thread.
    /// Concurrent callers are serialized (whole jobs never interleave),
    /// so one pool can be shared by several brokers.
    ///
    /// # Panics
    ///
    /// Panics if any worker's job panicked (after all workers of the
    /// batch have finished, so the pool stays usable). Use
    /// [`WorkerPool::try_run`] to observe panics without propagating.
    pub fn run(&self, workers: usize, job: impl Fn(usize) + Sync) {
        let panicked = self.try_run(workers, job);
        assert!(panicked.is_empty(), "worker pool job panicked");
    }

    /// [`WorkerPool::run`] that reports instead of panicking: returns the
    /// indices of workers whose job panicked, in ascending order (empty
    /// means a clean batch). The pool stays fully usable either way.
    ///
    /// On the single-worker inline path the job runs on the caller's own
    /// thread, so a panic there propagates directly.
    pub fn try_run(&self, workers: usize, job: impl Fn(usize) + Sync) -> Vec<usize> {
        let workers = workers.clamp(1, self.threads());
        if workers == 1 {
            job(0);
            return Vec::new();
        }
        let job_ref: *const (dyn Fn(usize) + Sync + '_) = &job;
        // SAFETY (lifetime erasure + later dereference): the pointer is
        // only dereferenced by workers of the generation dispatched
        // below, and this function does not return until all of them are
        // done with it, so the erased borrow outlives every use.
        let job_ptr = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job_ref)
        });
        let mut st = lock(&self.shared.state);
        while st.active != 0 {
            st = cv_wait(&self.shared.done, st);
        }
        st.job = Some(job_ptr);
        st.limit = workers;
        st.active = workers;
        st.generation += 1;
        st.panicked.clear();
        drop(st);
        self.shared.work.notify_all();
        let mut st = lock(&self.shared.state);
        while st.active != 0 {
            st = cv_wait(&self.shared.done, st);
        }
        st.job = None;
        let mut panicked = std::mem::take(&mut st.panicked);
        drop(st);
        // Wake any caller queued behind us in the serialization loop.
        self.shared.done.notify_all();
        panicked.sort_unstable();
        panicked
    }

    /// Runs a fused pipeline over `len` items: worker `w` gets exclusive
    /// access to `states[w]` (reset via [`PipelineScratch::begin_batch`])
    /// and its block-cyclic ranges ([`block_ranges`]). Returns the number
    /// of workers actually used — `workers` clamped to the pool size and
    /// `states.len()`, or 1 when the batch is at most one block (the job
    /// then runs inline with worker 0's state and ranges).
    ///
    /// A worker that panics is quarantined and its blocks recomputed
    /// inline; see [`WorkerPool::try_pipeline`], which this forwards to.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty, or if a quarantined worker's inline
    /// retry panics again.
    pub fn pipeline<S, F>(&self, workers: usize, states: &mut [S], len: usize, f: F) -> usize
    where
        S: PipelineScratch,
        F: Fn(usize, &mut S, BlockRanges) + Sync,
    {
        self.try_pipeline(workers, states, len, f).workers
    }

    /// [`WorkerPool::pipeline`] with fault containment made visible: a
    /// worker whose job panics is *quarantined* — only that worker's
    /// blocks are affected, and they are recomputed inline on the
    /// caller's thread after a fresh [`PipelineScratch::begin_batch`]
    /// reset, so the batch output is bit-identical to a run where the
    /// panic never happened. [`PipelineRun::quarantined`] reports how
    /// many workers needed that treatment.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty, or if an inline retry panics (a
    /// deterministic panic in `f` cannot be retried away).
    pub fn try_pipeline<S, F>(
        &self,
        workers: usize,
        states: &mut [S],
        len: usize,
        f: F,
    ) -> PipelineRun
    where
        S: PipelineScratch,
        F: Fn(usize, &mut S, BlockRanges) + Sync,
    {
        assert!(!states.is_empty(), "pipeline needs at least one state");
        let workers = workers.clamp(1, self.threads()).min(states.len());
        if workers == 1 || len <= BLOCK {
            pipeline_inline(&mut states[0], len, f);
            return PipelineRun {
                workers: 1,
                quarantined: 0,
            };
        }
        let ptr = SendPtr(states.as_mut_ptr());
        let panicked = self.try_run(workers, |w| {
            // Bind the whole wrapper so closure capture analysis doesn't
            // reach through to the raw pointer field.
            let ptr = &ptr;
            // SAFETY: run() invokes each worker index exactly once per
            // batch and w < workers <= states.len(), so the &mut regions
            // are disjoint.
            let state = unsafe { &mut *ptr.0.add(w) };
            state.begin_batch();
            f(w, state, block_ranges(len, workers, w));
        });
        for &w in &panicked {
            // Quarantine: the worker's state may hold a half-written
            // batch; begin_batch erases it and the retry recomputes
            // exactly the blocks that worker owned.
            let state = &mut states[w];
            state.begin_batch();
            f(w, state, block_ranges(len, workers, w));
        }
        PipelineRun {
            workers,
            quarantined: panicked.len(),
        }
    }
}

/// The single-worker pipeline fast path: runs the whole batch inline on
/// the caller's thread with worker index 0 — bit-identical to
/// [`WorkerPool::pipeline`] with any worker count, no pool required.
pub fn pipeline_inline<S, F>(state: &mut S, len: usize, f: F)
where
    S: PipelineScratch,
    F: Fn(usize, &mut S, BlockRanges) + Sync,
{
    state.begin_batch();
    f(0, state, block_ranges(len, 1, 0));
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        // Drain any job still in flight before shutting down: a
        // generation may be dispatched but not yet picked up, and a
        // caller may be blocked in `run` waiting for `active` to reach
        // zero. Exiting workers on `shutdown` alone would strand that
        // caller forever (the original drop-ordering deadlock).
        while st.active != 0 {
            self.shared.work.notify_all();
            st = cv_wait(&self.shared.done, st);
        }
        st.shutdown = true;
        drop(st);
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                // A dispatched generation takes priority over shutdown:
                // if the pool is dropped between a dispatch and the
                // pickup, the job must still drain (`active` must reach
                // zero) or the dispatching caller would block forever.
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    if index < st.limit {
                        break st.job.expect("job set for dispatched generation");
                    }
                    // Not participating in this generation: acknowledge
                    // it and keep waiting.
                }
                if st.shutdown {
                    return;
                }
                st = cv_wait(&shared.work, st);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the dispatching caller keeps the closure alive (and
            // itself blocked) until `active` reaches zero below.
            unsafe { (*job.0)(index) }
        }));
        let mut st = lock(&shared.state);
        if result.is_err() {
            st.panicked.push(index);
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// Why a [`StageQueue::try_push`] did not enqueue. Carries the rejected
/// item back so the producer can ack the rejection (or retry later)
/// without cloning every submission up front.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity. This is the backpressure signal of the
    /// staged serving path: the caller must turn it into an explicit
    /// reject ack, not silently drop the item.
    Full(T),
    /// The queue was closed; no further items will ever be accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct StageQueueState<T> {
    items: std::collections::VecDeque<T>,
    closed: bool,
    /// High-water mark of `items.len()` since construction.
    max_depth: usize,
    /// `try_push` calls rejected with [`PushError::Full`].
    rejected: u64,
}

struct StageQueueShared<T> {
    state: Mutex<StageQueueState<T>>,
    capacity: usize,
    /// Signalled when an item is pushed or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item is popped or the queue closes.
    not_full: Condvar,
}

/// A bounded multi-producer multi-consumer queue decoupling the stages
/// of the serving path (transport-in → pipeline → transport-out).
///
/// Two disciplines coexist on the same queue:
///
/// * **Lossy producers** (event ingest) use [`StageQueue::try_push`]:
///   a full queue returns [`PushError::Full`] immediately — the
///   admission-control reject — and never blocks a transport thread.
/// * **Lossless producers** (control operations, internal stage-to-stage
///   hand-off) use the blocking [`StageQueue::push`], which parks until
///   space frees up; ordering relative to earlier pushes is preserved,
///   which is what carries churn/recompile barriers through the staging
///   in submission order.
///
/// Consumers block in [`StageQueue::pop`] until an item arrives or the
/// queue is both closed and drained, so shutdown is a `close()` followed
/// by the consumer naturally running dry — no sentinel items.
///
/// Cloning the handle is cheap (an `Arc` bump); all clones address the
/// same queue.
pub struct StageQueue<T> {
    shared: Arc<StageQueueShared<T>>,
}

impl<T> Clone for StageQueue<T> {
    fn clone(&self) -> Self {
        StageQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for StageQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.shared.state);
        f.debug_struct("StageQueue")
            .field("capacity", &self.shared.capacity)
            .field("depth", &st.items.len())
            .field("max_depth", &st.max_depth)
            .field("rejected", &st.rejected)
            .field("closed", &st.closed)
            .finish()
    }
}

impl<T> StageQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        StageQueue {
            shared: Arc::new(StageQueueShared {
                state: Mutex::new(StageQueueState {
                    items: std::collections::VecDeque::new(),
                    closed: false,
                    max_depth: 0,
                    rejected: 0,
                }),
                capacity: capacity.max(1),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            }),
        }
    }

    /// Attempts to enqueue without blocking. A full queue is the
    /// backpressure signal: the item comes back in [`PushError::Full`]
    /// and the rejection counter advances, so "how often did admission
    /// control fire" is observable from [`StageQueue::rejected`].
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`StageQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = lock(&self.shared.state);
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.shared.capacity {
            st.rejected += 1;
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        st.max_depth = st.max_depth.max(st.items.len());
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is at capacity. Used by
    /// lossless producers (control operations, inter-stage hand-off)
    /// where backpressure should stall the producing stage rather than
    /// reject.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is closed (before or while
    /// waiting).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = lock(&self.shared.state);
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.shared.capacity {
                st.items.push_back(item);
                st.max_depth = st.max_depth.max(st.items.len());
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = cv_wait(&self.shared.not_full, st);
        }
    }

    /// Dequeues the oldest item, blocking until one arrives. Returns
    /// `None` once the queue is closed *and* drained — the consumer's
    /// natural shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = lock(&self.shared.state);
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = cv_wait(&self.shared.not_empty, st);
        }
    }

    /// Dequeues the oldest item if one is ready; never blocks.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = lock(&self.shared.state);
        let item = st.items.pop_front();
        if item.is_some() {
            drop(st);
            self.shared.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: every later push fails, every blocked producer
    /// and consumer wakes, and consumers drain what is already queued
    /// before [`StageQueue::pop`] starts returning `None`.
    pub fn close(&self) {
        let mut st = lock(&self.shared.state);
        st.closed = true;
        drop(st);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Whether [`StageQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.shared.state).closed
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        lock(&self.shared.state).items.len()
    }

    /// High-water mark of [`StageQueue::depth`] since construction —
    /// the ingest-queue gauge the serving metrics report.
    pub fn max_depth(&self) -> usize {
        lock(&self.shared.state).max_depth
    }

    /// `try_push` calls rejected with [`PushError::Full`] so far.
    pub fn rejected(&self) -> u64 {
        lock(&self.shared.state).rejected
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

struct SequenceWindowState<T> {
    /// Out-of-order arrivals keyed by ticket, awaiting their turn.
    pending: std::collections::BTreeMap<u64, T>,
    /// The next ticket [`SequenceWindow::pop_next`] will release.
    next: u64,
    closed: bool,
    /// High-water mark of `pending.len()` since construction.
    max_held: usize,
}

struct SequenceWindowShared<T> {
    state: Mutex<SequenceWindowState<T>>,
    /// Maximum ticket *span* kept in flight: a push of ticket `t` parks
    /// while `t >= next + span`.
    span: u64,
    /// Signalled when an item arrives or the window closes.
    ready: Condvar,
    /// Signalled when `next` advances or the window closes.
    advanced: Condvar,
}

/// A re-ordering window between concurrent producers and one in-order
/// consumer: items tagged with a dense ticket sequence (0, 1, 2, …) go
/// in whenever their producer finishes, and come out strictly in ticket
/// order.
///
/// This is the egress-determinism seam of the concurrent pipeline
/// stage: N executors finish batches out of order, the fold stage pops
/// them back in submission order, so delivery records and the
/// f64-accumulating cost report stay bit-identical to a single-threaded
/// run.
///
/// The window is bounded by ticket **span**, not occupancy: a push of
/// ticket `t` blocks while `t >= next + span`. The producer holding
/// ticket `next` therefore *never* blocks (`span ≥ 1`), which makes the
/// window deadlock-free by induction — the consumer is always one push
/// away from progress — while still propagating backpressure: a stalled
/// consumer parks every producer more than `span` tickets ahead, which
/// in turn stops them from draining the ingest queue, which surfaces as
/// admission-control rejects at the front door.
pub struct SequenceWindow<T> {
    shared: Arc<SequenceWindowShared<T>>,
}

impl<T> Clone for SequenceWindow<T> {
    fn clone(&self) -> Self {
        SequenceWindow {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for SequenceWindow<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.shared.state);
        f.debug_struct("SequenceWindow")
            .field("span", &self.shared.span)
            .field("next", &st.next)
            .field("held", &st.pending.len())
            .field("max_held", &st.max_held)
            .field("closed", &st.closed)
            .finish()
    }
}

impl<T> SequenceWindow<T> {
    /// Creates a window releasing tickets 0, 1, 2, … in order, admitting
    /// at most `span` tickets beyond the next expected one (minimum 1).
    pub fn new(span: u64) -> Self {
        SequenceWindow {
            shared: Arc::new(SequenceWindowShared {
                state: Mutex::new(SequenceWindowState {
                    pending: std::collections::BTreeMap::new(),
                    next: 0,
                    closed: false,
                    max_held: 0,
                }),
                span: span.max(1),
                ready: Condvar::new(),
                advanced: Condvar::new(),
            }),
        }
    }

    /// Hands in the item for `ticket`, parking while the ticket is more
    /// than the span ahead of the next expected one. Each ticket must be
    /// pushed at most once.
    ///
    /// # Errors
    ///
    /// Returns the item back if the window was closed (before or while
    /// waiting).
    pub fn push(&self, ticket: u64, item: T) -> Result<(), T> {
        let mut st = lock(&self.shared.state);
        loop {
            if st.closed {
                return Err(item);
            }
            if ticket < st.next.saturating_add(self.shared.span) {
                debug_assert!(
                    ticket >= st.next && !st.pending.contains_key(&ticket),
                    "ticket {ticket} reused (next {})",
                    st.next
                );
                st.pending.insert(ticket, item);
                st.max_held = st.max_held.max(st.pending.len());
                drop(st);
                self.shared.ready.notify_all();
                return Ok(());
            }
            st = cv_wait(&self.shared.advanced, st);
        }
    }

    /// Releases the item for the next ticket in sequence, blocking until
    /// it arrives. Returns `None` once the window is closed and the next
    /// ticket is not pending — the consumer's shutdown signal. Close
    /// only after every producer has finished, or in-window items beyond
    /// a sequence gap are dropped.
    pub fn pop_next(&self) -> Option<(u64, T)> {
        let mut st = lock(&self.shared.state);
        loop {
            let ticket = st.next;
            if let Some(item) = st.pending.remove(&ticket) {
                st.next += 1;
                drop(st);
                self.shared.advanced.notify_all();
                return Some((ticket, item));
            }
            if st.closed {
                return None;
            }
            st = cv_wait(&self.shared.ready, st);
        }
    }

    /// Closes the window: blocked producers and the consumer wake, later
    /// pushes fail, and [`SequenceWindow::pop_next`] returns `None` once
    /// the in-order prefix is drained.
    pub fn close(&self) {
        let mut st = lock(&self.shared.state);
        st.closed = true;
        drop(st);
        self.shared.ready.notify_all();
        self.shared.advanced.notify_all();
    }

    /// High-water mark of simultaneously-held out-of-order items.
    pub fn max_held(&self) -> usize {
        lock(&self.shared.state).max_held
    }

    /// Removes and returns every pending item in ticket order — including
    /// items parked beyond a sequence gap — and advances the window past
    /// the highest drained ticket, waking blocked producers.
    ///
    /// This is the teardown/recovery seam: after a stage failure the
    /// supervisor drains the window to account for every in-flight batch
    /// (replaying or reporting each) instead of silently dropping the
    /// items stranded behind the gap a dead producer left.
    pub fn drain_pending(&self) -> Vec<(u64, T)> {
        let mut st = lock(&self.shared.state);
        let drained: Vec<(u64, T)> = std::mem::take(&mut st.pending).into_iter().collect();
        if let Some(&(last, _)) = drained.last() {
            st.next = st.next.max(last + 1);
        }
        drop(st);
        self.shared.advanced.notify_all();
        drained
    }
}

/// A read-mostly slot whose value advances through explicit, dense
/// versions: readers park until the version they need is published,
/// then share the value by `Arc`.
///
/// This is the epoch barrier of the concurrent pipeline stage. Each
/// batch is tagged at dispatch with the number of control operations
/// ordered before it; an executor asks the cell for exactly that
/// version of the engine's read-side state and blocks if the in-order
/// fold has not yet applied the intervening control op. Versions only
/// move forward, and only the single fold thread publishes, so "which
/// engine state does this batch see" is decided by queue order — never
/// by scheduling luck.
pub struct VersionedCell<T> {
    state: Mutex<(u64, Arc<T>)>,
    published: Condvar,
}

impl<T: std::fmt::Debug> std::fmt::Debug for VersionedCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.state);
        f.debug_struct("VersionedCell")
            .field("version", &st.0)
            .finish_non_exhaustive()
    }
}

impl<T> VersionedCell<T> {
    /// Creates the cell holding `value` at version 0.
    pub fn new(value: T) -> Self {
        VersionedCell {
            state: Mutex::new((0, Arc::new(value))),
            published: Condvar::new(),
        }
    }

    /// Publishes `value` as `version`, waking every waiting reader.
    /// Versions must strictly increase.
    pub fn publish(&self, version: u64, value: Arc<T>) {
        let mut st = lock(&self.state);
        debug_assert!(version > st.0, "version {version} published after {}", st.0);
        *st = (version, value);
        drop(st);
        self.published.notify_all();
    }

    /// The value at the newest version that is at least `version`,
    /// parking until one is published. In the serving path the wait can
    /// only ever observe `version` exactly — a later version implies a
    /// control op whose ticket the in-order fold cannot have reached
    /// while this batch is still unprocessed — but the cell itself makes
    /// no such assumption.
    pub fn wait_at_least(&self, version: u64) -> (u64, Arc<T>) {
        let mut st = lock(&self.state);
        while st.0 < version {
            st = cv_wait(&self.published, st);
        }
        (st.0, Arc::clone(&st.1))
    }

    /// Replaces the value *at the current version* without bumping it —
    /// the recovery seam. A supervisor that rebuilt the producer's state
    /// (e.g. replayed a journal after a fold crash) swaps the rebuilt
    /// view in under the same version so readers stamped with it are
    /// neither stuck nor lied to about ordering. Existing waiters were
    /// already satisfied by the old value; future reads see the
    /// replacement.
    pub fn republish(&self, version: u64, value: Arc<T>) {
        let mut st = lock(&self.state);
        assert_eq!(
            version, st.0,
            "republish must target the current version (got {version}, at {})",
            st.0
        );
        st.1 = value;
        drop(st);
        self.published.notify_all();
    }

    /// The newest version and value, without waiting.
    pub fn current(&self) -> (u64, Arc<T>) {
        let st = lock(&self.state);
        (st.0, Arc::clone(&st.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 16, 1000, 5000] {
            let got = map(&items, threads, |x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_non_copy_results() {
        let items: Vec<u32> = (0..500).collect();
        let expected: Vec<String> = items.iter().map(|x| format!("#{x}")).collect();
        for threads in [1, 3, 8] {
            assert_eq!(map(&items, threads, |x| format!("#{x}")), expected);
        }
    }

    #[test]
    fn scratch_is_per_worker() {
        let items: Vec<usize> = (0..256).collect();
        let got = map_with_scratch(&items, 4, Vec::<usize>::new, |item, scratch| {
            scratch.push(*item);
            // A worker only ever sees its own, in-order scratch.
            assert!(scratch.windows(2).all(|w| w[0] < w[1]));
            *item
        });
        assert_eq!(got, items);
    }

    #[test]
    fn map_survives_a_worker_panic() {
        let items: Vec<u64> = (0..700).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 5).collect();
        let armed = AtomicBool::new(true);
        let got = map_with_scratch(
            &items,
            4,
            || (),
            |item, _scratch| {
                // One transient panic partway through a worker's blocks.
                if *item == 130 && armed.swap(false, Ordering::SeqCst) {
                    panic!("injected map fault");
                }
                *item * 5
            },
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, 8, |x| *x).is_empty());
        assert_eq!(map(&[5u32], 8, |x| x + 1), vec![6]);
    }

    #[test]
    fn effective_threads_floor_is_one() {
        assert!(effective_threads(None) >= 1);
        assert!(effective_threads(Some(0)) >= 1);
        assert_eq!(effective_threads(Some(3)), 3);
    }

    #[test]
    fn block_ranges_partition_in_order() {
        for len in [0usize, 1, 63, 64, 65, 128, 1000, 4096 + 17] {
            for workers in [1usize, 2, 3, 7, 64] {
                let mut covered = vec![false; len];
                for w in 0..workers {
                    let mut prev_end = None;
                    for range in block_ranges(len, workers, w) {
                        assert!(range.end <= len);
                        assert!(
                            range.len() == BLOCK || range.end == len,
                            "only the last block may be partial"
                        );
                        if let Some(end) = prev_end {
                            assert!(range.start >= end, "ranges ascend per worker");
                        }
                        prev_end = Some(range.end);
                        for i in range {
                            assert!(!covered[i], "index {i} covered twice");
                            covered[i] = true;
                        }
                    }
                }
                assert!(covered.iter().all(|&c| c), "len={len} workers={workers}");
            }
        }
    }

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        for workers in [2, 3, 4, 9] {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(workers, |w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            let expected = workers.min(4);
            for (w, h) in hits.iter().enumerate() {
                let want = usize::from(w < expected);
                assert_eq!(h.load(Ordering::Relaxed), want, "worker {w}");
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_batches() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(3, |_w| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    struct SumState {
        batches: usize,
        sum: u64,
    }

    impl PipelineScratch for SumState {
        fn begin_batch(&mut self) {
            self.batches += 1;
            self.sum = 0;
        }
    }

    #[test]
    fn pipeline_matches_sequential_for_any_worker_count() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..1017).collect();
        let expected: u64 = items.iter().map(|x| x * 7).sum();
        for workers in [1usize, 2, 3, 4, 9] {
            let mut states: Vec<SumState> =
                (0..4).map(|_| SumState { batches: 0, sum: 0 }).collect();
            let used = pool.pipeline(workers, &mut states, items.len(), |_w, st, ranges| {
                for range in ranges {
                    for i in range {
                        st.sum += items[i] * 7;
                    }
                }
            });
            assert_eq!(used, workers.min(4));
            let got: u64 = states[..used].iter().map(|s| s.sum).sum();
            assert_eq!(got, expected, "workers={workers}");
            // begin_batch ran exactly on the participating states.
            for (i, st) in states.iter().enumerate() {
                assert_eq!(st.batches, usize::from(i < used), "state {i}");
            }
        }
    }

    #[test]
    fn pipeline_inlines_small_batches() {
        let pool = WorkerPool::new(4);
        let mut states: Vec<SumState> = (0..4).map(|_| SumState { batches: 0, sum: 0 }).collect();
        let used = pool.pipeline(4, &mut states, BLOCK, |w, st, ranges| {
            assert_eq!(w, 0);
            st.sum = ranges.map(|r| r.len() as u64).sum();
        });
        assert_eq!(used, 1);
        assert_eq!(states[0].sum, BLOCK as u64);
    }

    #[test]
    fn pool_panics_propagate_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, |w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable after a panicked job.
        let hits = AtomicUsize::new(0);
        pool.run(2, |_w| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn try_run_reports_panicked_workers() {
        let pool = WorkerPool::new(4);
        let panicked = pool.try_run(4, |w| {
            if w == 1 || w == 3 {
                panic!("boom {w}");
            }
        });
        assert_eq!(panicked, vec![1, 3]);
        // And a clean follow-up batch reports nothing.
        assert!(pool.try_run(4, |_w| {}).is_empty());
    }

    #[test]
    fn pipeline_quarantines_and_retries_panicked_worker() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..1017).collect();
        let expected: u64 = items.iter().map(|x| x * 7).sum();
        let armed = AtomicBool::new(true);
        let mut states: Vec<SumState> = (0..4).map(|_| SumState { batches: 0, sum: 0 }).collect();
        let run = pool.try_pipeline(4, &mut states, items.len(), |w, st, ranges| {
            if w == 2 && armed.swap(false, Ordering::SeqCst) {
                // Panic after partially mutating the state: the retry
                // must reset it via begin_batch.
                st.sum = 123_456;
                panic!("injected pipeline fault");
            }
            for range in ranges {
                for i in range {
                    st.sum += items[i] * 7;
                }
            }
        });
        assert_eq!(
            run,
            PipelineRun {
                workers: 4,
                quarantined: 1
            }
        );
        let got: u64 = states[..run.workers].iter().map(|s| s.sum).sum();
        assert_eq!(got, expected);
        // Worker 2's state saw two begin_batch calls: pool run + retry.
        assert_eq!(states[2].batches, 2);
    }

    #[test]
    fn poisoned_state_lock_recovers() {
        let pool = WorkerPool::new(2);
        // Poison the state mutex from a scratch thread.
        let shared = Arc::clone(&pool.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.state.lock().expect("first lock is clean");
            panic!("poison the pool lock");
        })
        .join();
        assert!(pool.shared.state.is_poisoned());
        // The pool still dispatches and completes jobs.
        let hits = AtomicUsize::new(0);
        pool.run(2, |_w| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_drop_joins_cleanly() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        pool.run(3, |_w| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool); // must not hang or leak threads
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_drop_after_panicked_job_joins_cleanly() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, |_w| panic!("boom"));
        }));
        assert!(result.is_err());
        drop(pool); // must not hang despite the panicked generation
    }

    /// Regression test for the drop-ordering deadlock: a generation
    /// dispatched but not yet picked up by any worker must still be
    /// drained when the pool is dropped. The old worker loop checked
    /// `shutdown` *before* looking for a new generation, so workers
    /// exited with `active` stuck above zero and any caller waiting on
    /// the `done` condvar hung forever.
    #[test]
    fn drop_drains_dispatched_but_unpicked_job() {
        let hits = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2);
        // Hand-dispatch a generation exactly as `try_run` would, but
        // without notifying the workers — they are still parked, which
        // is the racy window the deadlock lived in.
        let job: &'static (dyn Fn(usize) + Sync) = {
            let hits = Arc::clone(&hits);
            Box::leak(Box::new(move |_w: usize| {
                hits.fetch_add(1, Ordering::SeqCst);
            }))
        };
        {
            let mut st = lock(&pool.shared.state);
            st.job = Some(Job(job));
            st.limit = 2;
            st.active = 2;
            st.generation += 1;
        }
        // Drop on a helper thread so a regression fails the test instead
        // of hanging the suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            drop(pool);
            tx.send(()).expect("watchdog alive");
        });
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("pool drop deadlocked with a dispatched job");
        // Both workers ran the pending job before shutting down.
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_callers_are_serialized() {
        let pool = Arc::new(WorkerPool::new(2));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut callers = Vec::new();
        for _ in 0..4 {
            let (pool, in_flight, max_seen) = (
                Arc::clone(&pool),
                Arc::clone(&in_flight),
                Arc::clone(&max_seen),
            );
            callers.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    pool.run(2, |w| {
                        if w == 0 {
                            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                            max_seen.fetch_max(now, Ordering::SeqCst);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                    });
                }
            }));
        }
        for c in callers {
            c.join().expect("caller thread");
        }
        // Jobs never interleave: at most one batch's worker 0 at a time.
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stage_queue_rejects_at_capacity_and_counts() {
        let q = StageQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.try_pop(), None);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn stage_queue_close_drains_then_ends() {
        let q = StageQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(PushError::Closed(item)) => assert_eq!(item, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.push("d"), Err("d"));
        // Queued items still drain in order; only then does pop end.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stage_queue_blocking_push_waits_for_space() {
        let q = StageQueue::new(1);
        q.try_push(0u32).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        // Give the producer a moment to park on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().expect("producer thread"));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn stage_queue_consumer_blocks_until_item_or_close() {
        let q: StageQueue<u64> = StageQueue::new(4);
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || (q2.pop(), q2.pop()));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().expect("consumer thread"), (Some(7), None));
    }

    #[test]
    fn stage_queue_mpmc_delivers_every_item_once() {
        let q: StageQueue<usize> = StageQueue::new(8);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    while let Some(item) = q.pop() {
                        lock(&seen).push(item);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        q.push(p * 100 + i).expect("queue open");
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        q.close();
        for c in consumers {
            c.join().expect("consumer");
        }
        let mut seen = lock(&seen).clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_window_releases_in_ticket_order() {
        let w: SequenceWindow<u64> = SequenceWindow::new(16);
        let producers: Vec<_> = [3u64, 0, 2, 1]
            .into_iter()
            .map(|t| {
                let w = w.clone();
                std::thread::spawn(move || w.push(t, t * 10).expect("window open"))
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        let drained: Vec<_> = (0..4).map(|_| w.pop_next().expect("pending")).collect();
        assert_eq!(drained, vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
        w.close();
        assert_eq!(w.pop_next(), None);
        assert!(w.max_held() >= 1);
    }

    #[test]
    fn sequence_window_span_parks_far_ahead_producers() {
        let w: SequenceWindow<&'static str> = SequenceWindow::new(2);
        w.push(0, "a").unwrap();
        w.push(1, "b").unwrap();
        let w2 = w.clone();
        let landed = Arc::new(AtomicUsize::new(0));
        let landed2 = Arc::clone(&landed);
        // Ticket 2 is span-blocked until ticket 0 is consumed.
        let far = std::thread::spawn(move || {
            w2.push(2, "c").unwrap();
            landed2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(landed.load(Ordering::SeqCst), 0, "push(2) must park");
        assert_eq!(w.pop_next(), Some((0, "a")));
        far.join().expect("far producer");
        assert_eq!(landed.load(Ordering::SeqCst), 1);
        assert_eq!(w.pop_next(), Some((1, "b")));
        assert_eq!(w.pop_next(), Some((2, "c")));
    }

    #[test]
    fn sequence_window_close_wakes_everyone() {
        let w: SequenceWindow<u8> = SequenceWindow::new(1);
        let w2 = w.clone();
        // Blocked consumer (nothing pending) and blocked far producer.
        let consumer = std::thread::spawn(move || w2.pop_next());
        let w3 = w.clone();
        let producer = std::thread::spawn(move || w3.push(5, 0).is_err());
        std::thread::sleep(std::time::Duration::from_millis(20));
        w.close();
        assert_eq!(consumer.join().expect("consumer"), None);
        assert!(producer.join().expect("producer"), "push after close errs");
        assert!(w.push(0, 9).is_err());
    }

    #[test]
    fn versioned_cell_readers_park_until_published() {
        let cell = Arc::new(VersionedCell::new(10u64));
        assert_eq!(cell.current(), (0, Arc::new(10)));
        assert_eq!(cell.wait_at_least(0).1.as_ref(), &10);
        let c2 = Arc::clone(&cell);
        let reader = std::thread::spawn(move || c2.wait_at_least(2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.publish(1, Arc::new(11));
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.publish(2, Arc::new(12));
        let (version, value) = reader.join().expect("reader");
        assert_eq!((version, *value), (2, 12));
    }

    /// Regression: the span admission test used `next + span`, which
    /// overflows (and in release wraps to a tiny bound, parking every
    /// producer forever) once `next` is nonzero and the span is huge.
    #[test]
    fn sequence_window_span_arithmetic_saturates() {
        let w: SequenceWindow<u64> = SequenceWindow::new(u64::MAX);
        w.push(0, 0).unwrap();
        assert_eq!(w.pop_next(), Some((0, 0)));
        // next = 1, span = u64::MAX: `1 + u64::MAX` would overflow; the
        // saturating bound admits any ticket without blocking.
        w.push(u64::MAX - 1, 7).unwrap();
        w.push(1, 1).unwrap();
        assert_eq!(w.pop_next(), Some((1, 1)));
    }

    /// A producer dying between taking a ticket and pushing it leaves a
    /// sequence gap; `drain_pending` recovers the items stranded behind
    /// it (in ticket order) instead of dropping them at close.
    #[test]
    fn sequence_window_drain_pending_recovers_gap_items() {
        let w: SequenceWindow<&'static str> = SequenceWindow::new(16);
        w.push(0, "a").unwrap();
        w.push(2, "c").unwrap();
        w.push(3, "d").unwrap();
        assert_eq!(w.pop_next(), Some((0, "a")));
        // Ticket 1 never arrives (its producer died). The consumer
        // cannot advance; the supervisor drains instead.
        assert_eq!(w.drain_pending(), vec![(2, "c"), (3, "d")]);
        // The window advanced past the drained tickets: new pushes
        // continue the sequence rather than re-blocking on the gap.
        w.push(4, "e").unwrap();
        assert_eq!(w.pop_next(), Some((4, "e")));
        w.close();
        assert_eq!(w.pop_next(), None);
    }

    /// Close with a stranded gap: the consumer sees `None` (never a
    /// skipped-ahead item), and the stranded items remain recoverable
    /// through `drain_pending` afterwards.
    #[test]
    fn sequence_window_close_strands_gap_items_for_drain() {
        let w: SequenceWindow<u8> = SequenceWindow::new(8);
        w.push(1, 11).unwrap();
        let w2 = w.clone();
        let consumer = std::thread::spawn(move || w2.pop_next());
        std::thread::sleep(std::time::Duration::from_millis(10));
        w.close();
        assert_eq!(consumer.join().expect("consumer"), None);
        assert_eq!(w.drain_pending(), vec![(1, 11)]);
    }

    /// Many readers waiting for distinct versions while a publisher
    /// races through the whole version sequence: every reader observes a
    /// version at least the one it asked for, and the value always
    /// matches the version it rode in on.
    #[test]
    fn versioned_cell_wait_at_least_races_version_bumps() {
        const VERSIONS: u64 = 64;
        let cell = Arc::new(VersionedCell::new(0u64));
        let readers: Vec<_> = (1..=VERSIONS)
            .map(|v| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let (version, value) = cell.wait_at_least(v);
                    assert!(version >= v, "asked for {v}, got {version}");
                    assert_eq!(*value, version, "value must match its version");
                })
            })
            .collect();
        for v in 1..=VERSIONS {
            cell.publish(v, Arc::new(v));
            if v % 8 == 0 {
                std::thread::yield_now();
            }
        }
        for r in readers {
            r.join().expect("reader");
        }
        assert_eq!(cell.current().0, VERSIONS);
    }

    /// A reader parked on a version that skips past its target (the
    /// publisher jumps 0 → 3 → 9) still wakes, with the newest value.
    #[test]
    fn versioned_cell_wait_survives_version_skips() {
        let cell = Arc::new(VersionedCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let reader = std::thread::spawn(move || c2.wait_at_least(5));
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.publish(3, Arc::new(3));
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.publish(9, Arc::new(9));
        let (version, value) = reader.join().expect("reader");
        assert_eq!((version, *value), (9, 9));
    }

    #[test]
    fn versioned_cell_republish_swaps_value_in_place() {
        let cell = VersionedCell::new(10u64);
        cell.publish(1, Arc::new(11));
        // Recovery path: same version, rebuilt value.
        cell.republish(1, Arc::new(99));
        let (version, value) = cell.current();
        assert_eq!((version, *value), (1, 99));
        // Readers waiting at-or-below the version see the replacement.
        let (version, value) = cell.wait_at_least(1);
        assert_eq!((version, *value), (1, 99));
    }

    #[test]
    #[should_panic(expected = "republish must target the current version")]
    fn versioned_cell_republish_rejects_stale_version() {
        let cell = VersionedCell::new(0u64);
        cell.publish(2, Arc::new(2));
        cell.republish(1, Arc::new(1));
    }
}
