//! Correctness properties for the quantized [`CompactSTree`]:
//!
//! * **superset** — every exact hit is emitted (outward rounding never
//!   loses a true hit);
//! * **certainty** — a hit emitted without the ambiguous flag is always
//!   an exact hit (no re-check needed), so resolving ambiguous hits
//!   against the exact `f64` bounds reproduces the exact answer;
//! * **kernel bit-identity** — the emitted tape (ids, lane masks,
//!   ambiguity flags, order) is identical at every kernel level the
//!   host supports, for both the scalar and block traversals.

use proptest::prelude::*;
use pubsub_stree::simd::{QuantBlock, SimdLevel, LANES};
use pubsub_stree::{CompactConfig, CompactSTree};

fn levels() -> Vec<SimdLevel> {
    let mut out = vec![SimdLevel::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            out.push(SimdLevel::Sse2);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push(SimdLevel::Avx2);
        }
    }
    out
}

/// Integer-cornered rects so coordinates land exactly on bounds often.
fn rects(dims: usize) -> impl Strategy<Value = Vec<(Vec<f64>, Vec<f64>)>> {
    prop::collection::vec(prop::collection::vec((-15i32..15, 0u32..10), dims), 1..150).prop_map(
        |rs| {
            rs.into_iter()
                .map(|sides| {
                    let lo: Vec<f64> = sides.iter().map(|&(l, _)| f64::from(l)).collect();
                    let hi: Vec<f64> = sides
                        .iter()
                        .map(|&(l, w)| f64::from(l) + f64::from(w))
                        .collect();
                    (lo, hi)
                })
                .collect()
        },
    )
}

fn coord() -> impl Strategy<Value = f64> {
    (0u32..10, -20.0f64..20.0, -16i32..16).prop_map(|(sel, real, int)| match sel {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3..=6 => f64::from(int),
        _ => real,
    })
}

fn exact(lo: &[f64], hi: &[f64], p: &[f64]) -> bool {
    p.iter().enumerate().all(|(d, &x)| lo[d] < x && x <= hi[d])
}

fn build(dims: usize, rs: &[(Vec<f64>, Vec<f64>)], leaf: usize, fanout: usize) -> CompactSTree {
    CompactSTree::build(
        dims,
        rs.len(),
        |i, d| (rs[i].0[d], rs[i].1[d]),
        CompactConfig {
            leaf_size: leaf,
            fanout,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn superset_certainty_and_resolution(
        (dims, rs, points, leaf, fanout) in (1usize..5).prop_flat_map(|dims| {
            (
                Just(dims),
                rects(dims),
                prop::collection::vec(prop::collection::vec(coord(), dims), 1..40),
                1usize..66,
                2usize..9,
            )
        })
    ) {
        let tree = build(dims, &rs, leaf, fanout);
        let mut q = Vec::new();
        let mut stack = Vec::new();
        for p in &points {
            let mut hits = Vec::new();
            tree.quantize_into(p, &mut q);
            tree.query_point_with(&q, &mut stack, |rep, amb| hits.push((rep, amb)));
            let mut resolved: Vec<u32> = Vec::new();
            for &(rep, amb) in &hits {
                let (lo, hi) = &rs[rep as usize];
                let is_exact = exact(lo, hi, p);
                // Certainty: a non-ambiguous hit must be exact.
                prop_assert!(amb || is_exact, "false certain hit {} at {:?}", rep, p);
                if is_exact {
                    resolved.push(rep);
                }
            }
            resolved.sort_unstable();
            // Superset + resolution: re-checking ambiguous hits yields
            // exactly the exact answer.
            let mut want: Vec<u32> = rs
                .iter()
                .enumerate()
                .filter(|(_, (lo, hi))| exact(lo, hi, p))
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(resolved, want, "p = {:?}", p);
        }
    }

    #[test]
    fn scalar_and_block_tapes_are_level_identical(
        (dims, rs, points, leaf, fanout) in (1usize..5).prop_flat_map(|dims| {
            (
                Just(dims),
                rects(dims),
                prop::collection::vec(prop::collection::vec(coord(), dims), 1..=LANES),
                1usize..66,
                2usize..9,
            )
        })
    ) {
        let tree = build(dims, &rs, leaf, fanout);
        let mut q = Vec::new();
        let mut stack = Vec::new();
        let mut bstack = Vec::new();

        // Scalar tape per level.
        let mut scalar_tapes: Vec<Vec<(u32, bool)>> = Vec::new();
        for &level in &levels() {
            let mut tape = Vec::new();
            for p in &points {
                tree.quantize_into(p, &mut q);
                tree.query_point_at(level, &q, &mut stack, |rep, amb| tape.push((rep, amb)));
            }
            scalar_tapes.push(tape);
        }
        for t in &scalar_tapes[1..] {
            prop_assert_eq!(t, &scalar_tapes[0]);
        }

        // Block tape per level, and per-lane agreement with scalar.
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let mut block = QuantBlock::new();
        tree.fill_block(&refs, &mut block);
        let mut block_tapes: Vec<Vec<(u32, u8, u8)>> = Vec::new();
        for &level in &levels() {
            let mut tape = Vec::new();
            tree.query_point_block_at(level, &block, &mut bstack, |rep, lanes, amb| {
                tape.push((rep, lanes, amb));
            });
            block_tapes.push(tape);
        }
        for t in &block_tapes[1..] {
            prop_assert_eq!(t, &block_tapes[0]);
        }
        for (l, p) in points.iter().enumerate() {
            let mut from_block: Vec<(u32, bool)> = block_tapes[0]
                .iter()
                .filter(|&&(_, lanes, _)| lanes >> l & 1 == 1)
                .map(|&(rep, _, amb)| (rep, amb >> l & 1 == 1))
                .collect();
            let mut scalar = Vec::new();
            tree.quantize_into(p, &mut q);
            tree.query_point_with(&q, &mut stack, |rep, amb| scalar.push((rep, amb)));
            from_block.sort_unstable();
            scalar.sort_unstable();
            prop_assert_eq!(from_block, scalar, "lane {}", l);
        }
    }
}
