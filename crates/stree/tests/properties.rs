//! Property tests: every tree index must agree with the linear-scan oracle
//! and uphold its structural invariants on arbitrary inputs.

use proptest::prelude::*;
use pubsub_geom::{Point, Rect};
use pubsub_stree::{
    CountingIndex, CurveKind, DynamicIndex, Entry, EntryId, FlatSTree, LinearScan, PackedConfig,
    PackedRTree, STree, STreeConfig, SpatialIndex,
};

const DIMS: usize = 3;

fn entry_strategy() -> impl Strategy<Value = Rect> {
    prop::collection::vec((-50.0f64..50.0, 0.0f64..30.0), DIMS).prop_map(|sides| {
        let lo: Vec<f64> = sides.iter().map(|&(l, _)| l).collect();
        let hi: Vec<f64> = sides.iter().map(|&(l, len)| l + len).collect();
        Rect::from_corners(&lo, &hi).expect("ordered corners")
    })
}

fn entries_strategy() -> impl Strategy<Value = Vec<Entry>> {
    prop::collection::vec(entry_strategy(), 0..300).prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(i, r)| Entry::new(r, EntryId(i as u32)))
            .collect()
    })
}

fn points_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(-60.0f64..60.0, DIMS), 1..20)
        .prop_map(|ps| ps.into_iter().map(|c| Point::new(c).unwrap()).collect())
}

fn sorted(mut v: Vec<EntryId>) -> Vec<EntryId> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stree_matches_oracle(
        entries in entries_strategy(),
        points in points_strategy(),
        fanout in 2usize..20,
        skew in 0.05f64..0.5,
    ) {
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let tree = STree::build(entries, STreeConfig::new(fanout, skew).unwrap()).unwrap();
        prop_assert!(tree.validate().is_ok());
        for p in &points {
            prop_assert_eq!(sorted(tree.query_point(p)), sorted(oracle.query_point(p)));
        }
    }

    #[test]
    fn stree_region_matches_oracle(
        entries in entries_strategy(),
        query in entry_strategy(),
        fanout in 2usize..20,
    ) {
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let tree = STree::build(entries, STreeConfig::new(fanout, 0.3).unwrap()).unwrap();
        prop_assert_eq!(
            sorted(tree.query_region(&query)),
            sorted(oracle.query_region(&query))
        );
    }

    #[test]
    fn packed_trees_match_oracle(
        entries in entries_strategy(),
        points in points_strategy(),
        fanout in 2usize..20,
        hilbert in prop::bool::ANY,
    ) {
        let curve = if hilbert { CurveKind::Hilbert } else { CurveKind::Morton };
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let tree = PackedRTree::build(
            entries,
            PackedConfig::new(fanout, curve, 8).unwrap(),
        )
        .unwrap();
        prop_assert!(tree.validate().is_ok());
        for p in &points {
            prop_assert_eq!(sorted(tree.query_point(p)), sorted(oracle.query_point(p)));
        }
    }

    #[test]
    fn dynamic_index_matches_oracle_under_churn(
        initial in entries_strategy(),
        extra in prop::collection::vec(entry_strategy(), 0..50),
        remove_mask in prop::collection::vec(prop::bool::ANY, 0..50),
        points in points_strategy(),
    ) {
        let next_id = initial.len() as u32;
        let mut idx = DynamicIndex::new(
            initial.clone(),
            STreeConfig::new(8, 0.3).unwrap(),
            0.3,
        )
        .unwrap();
        let mut live: Vec<Entry> = initial;

        for (k, r) in extra.into_iter().enumerate() {
            let e = Entry::new(r, EntryId(next_id + k as u32));
            idx.insert(e.clone()).unwrap();
            live.push(e);
        }
        // Remove a prefix of live entries according to the mask.
        let mut removed_ids = Vec::new();
        for (k, &rm) in remove_mask.iter().enumerate() {
            if rm && k < live.len() {
                removed_ids.push(live[k].id);
            }
        }
        for id in &removed_ids {
            idx.remove(*id).unwrap();
        }
        live.retain(|e| !removed_ids.contains(&e.id));

        let oracle = LinearScan::new(live).unwrap();
        prop_assert_eq!(idx.len(), oracle.len());
        for p in &points {
            prop_assert_eq!(sorted(idx.query_point(p)), sorted(oracle.query_point(p)));
        }
    }

    #[test]
    fn counting_index_matches_oracle(
        entries in entries_strategy(),
        points in points_strategy(),
    ) {
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let idx = CountingIndex::new(entries).unwrap();
        for p in &points {
            prop_assert_eq!(sorted(idx.query_point(p)), sorted(oracle.query_point(p)));
        }
    }

    #[test]
    fn counting_index_handles_unbounded_sides(
        entries in entries_strategy(),
        points in points_strategy(),
        unbound_mask in prop::collection::vec((0usize..3, prop::bool::ANY), 0..20),
    ) {
        // Punch unbounded sides into some entries; the counting index must
        // still agree with brute force (geometric trees would reject these).
        let mut entries = entries;
        for (k, &(dim, high_side)) in unbound_mask.iter().enumerate() {
            if let Some(e) = entries.get_mut(k) {
                let mut sides: Vec<_> = e.rect.sides().to_vec();
                sides[dim] = if high_side {
                    pubsub_geom::Interval::greater_than(sides[dim].lo())
                } else {
                    pubsub_geom::Interval::at_most(sides[dim].hi())
                };
                e.rect = Rect::new(sides).unwrap();
            }
        }
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let idx = CountingIndex::new(entries).unwrap();
        for p in &points {
            prop_assert_eq!(sorted(idx.query_point(p)), sorted(oracle.query_point(p)));
        }
    }

    #[test]
    fn count_point_equals_result_len(
        entries in entries_strategy(),
        points in points_strategy(),
        hilbert in prop::bool::ANY,
    ) {
        // The specialized count_point overrides (STree, PackedRTree,
        // FlatSTree) must agree with materializing the ids.
        let curve = if hilbert { CurveKind::Hilbert } else { CurveKind::Morton };
        let tree = STree::build(entries.clone(), STreeConfig::default()).unwrap();
        let packed =
            PackedRTree::build(entries, PackedConfig::new(16, curve, 8).unwrap()).unwrap();
        let flat = FlatSTree::from_stree(&tree);
        for p in &points {
            prop_assert_eq!(tree.count_point(p), tree.query_point(p).len());
            prop_assert_eq!(packed.count_point(p), packed.query_point(p).len());
            prop_assert_eq!(flat.count_point(p), flat.query_point(p).len());
        }
    }

    #[test]
    fn flat_tree_matches_source_trees_and_oracle(
        entries in entries_strategy(),
        points in points_strategy(),
        fanout in 2usize..20,
        skew in 0.05f64..0.5,
        hilbert in prop::bool::ANY,
    ) {
        // The flat compilation of either source tree must answer point
        // queries exactly like the tree it was compiled from — and like
        // the linear-scan oracle.
        let curve = if hilbert { CurveKind::Hilbert } else { CurveKind::Morton };
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let tree =
            STree::build(entries.clone(), STreeConfig::new(fanout, skew).unwrap()).unwrap();
        let packed =
            PackedRTree::build(entries, PackedConfig::new(fanout, curve, 8).unwrap()).unwrap();
        let from_stree = FlatSTree::from_stree(&tree);
        let from_packed = FlatSTree::from_packed(&packed);
        prop_assert_eq!(from_stree.len(), tree.len());
        prop_assert_eq!(from_packed.len(), packed.len());
        for p in &points {
            let expect = sorted(oracle.query_point(p));
            prop_assert_eq!(sorted(from_stree.query_point(p)), expect.clone());
            prop_assert_eq!(sorted(from_packed.query_point(p)), expect.clone());
            prop_assert_eq!(from_stree.count_point(p), expect.len());
            prop_assert_eq!(from_packed.count_point(p), expect.len());
        }
    }

    #[test]
    fn flat_tree_region_matches_oracle(
        entries in entries_strategy(),
        query in entry_strategy(),
        fanout in 2usize..20,
    ) {
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let tree = STree::build(entries, STreeConfig::new(fanout, 0.3).unwrap()).unwrap();
        let flat = FlatSTree::from_stree(&tree);
        prop_assert_eq!(
            sorted(flat.query_region(&query)),
            sorted(oracle.query_region(&query))
        );
    }
}
