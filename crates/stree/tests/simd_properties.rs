//! Bit-identity properties for the SIMD block-mode queries: every kernel
//! level the host supports (scalar fallback, SSE2, AVX2) must produce
//! byte-for-byte identical results — including on NaN, ±∞, signed zero
//! and exact-boundary coordinates — and on finite coordinates the block
//! path must replay each lane's scalar [`FlatSTree::query_point_with`]
//! walk id for id, in order.

use proptest::prelude::*;
use pubsub_geom::{Point, Rect};
use pubsub_stree::simd::{EventBlock, SimdLevel, LANES};
use pubsub_stree::{Entry, EntryId, FlatSTree, STree, STreeConfig};

/// Every kernel level this host can actually run.
fn levels() -> Vec<SimdLevel> {
    let mut out = vec![SimdLevel::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            out.push(SimdLevel::Sse2);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push(SimdLevel::Avx2);
        }
    }
    out
}

/// Integer-cornered rects so event coordinates land exactly on bounds
/// often enough to exercise the `lo < x` / `x <= hi` edges.
fn rect(dims: usize) -> impl Strategy<Value = Rect> {
    prop::collection::vec((-15i32..15, 1u32..10), dims).prop_map(|sides| {
        let lo: Vec<f64> = sides.iter().map(|&(l, _)| f64::from(l)).collect();
        let hi: Vec<f64> = sides
            .iter()
            .map(|&(l, w)| f64::from(l) + f64::from(w))
            .collect();
        Rect::from_corners(&lo, &hi).expect("ordered corners")
    })
}

fn entries(dims: usize) -> impl Strategy<Value = Vec<Entry>> {
    prop::collection::vec(rect(dims), 0..120).prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(i, r)| Entry::new(r, EntryId(i as u32)))
            .collect()
    })
}

/// Coordinates the kernels must agree on. `hostile` mixes in exactly the
/// values `Point::new` rejects — NaN, ±∞ — plus signed zeros and exact
/// integer boundaries; they can only enter through the raw
/// [`EventBlock::fill`] path, which is exactly the hole these tests
/// cover. Finite mode keeps the boundary integers but drops the
/// non-finite values so the scalar `Point` walk can serve as an oracle.
fn coord(hostile: bool) -> impl Strategy<Value = f64> {
    (0u32..12, -20.0f64..20.0, -16i32..16).prop_map(move |(sel, real, int)| {
        if hostile {
            match sel {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                5..=7 => f64::from(int),
                _ => real,
            }
        } else if sel < 4 {
            f64::from(int)
        } else {
            real
        }
    })
}

type Case = (usize, Vec<Entry>, Vec<Vec<f64>>, usize);

/// Dims ∈ {1, 2, 3, 4, 7}: all monomorphized scalar paths plus the
/// dynamic fallback.
fn case(hostile: bool) -> impl Strategy<Value = Case> {
    (0usize..5).prop_flat_map(move |di| {
        let dims = [1usize, 2, 3, 4, 7][di];
        (
            Just(dims),
            entries(dims),
            prop::collection::vec(prop::collection::vec(coord(hostile), dims), 1..=LANES),
            2usize..10,
        )
    })
}

fn build_flat(entries: Vec<Entry>, fanout: usize) -> FlatSTree {
    let tree = STree::build(entries, STreeConfig::new(fanout, 0.3).unwrap()).unwrap();
    FlatSTree::from_stree(&tree)
}

/// Runs the block query at `level` and returns the emission tape plus
/// the per-lane counts.
fn run_block(
    flat: &FlatSTree,
    level: SimdLevel,
    block: &EventBlock,
) -> (Vec<(EntryId, u8)>, [usize; LANES]) {
    let mut stack = Vec::new();
    let mut tape = Vec::new();
    flat.query_point_block_at(level, block, &mut stack, |id, lanes| tape.push((id, lanes)));
    let counts = flat.count_point_block_at(level, block, &mut stack);
    (tape, counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every supported kernel level produces the identical emission tape
    /// and identical per-lane counts — NaN/±∞/boundary coordinates
    /// included — and counts always agree with the tape.
    #[test]
    fn all_levels_bit_identical_on_hostile_coords(case in case(true)) {
        let (_dims, entries, events, fanout) = case;
        let flat = build_flat(entries, fanout);
        let mut block = EventBlock::new();
        block.fill(&events);
        prop_assert_eq!(block.lanes(), events.len());

        let (scalar_tape, scalar_counts) = run_block(&flat, SimdLevel::Scalar, &block);

        // The tape must never mention a padded (inactive) lane.
        for &(_, lanes) in &scalar_tape {
            prop_assert_eq!(lanes & !block.full_mask(), 0);
            prop_assert!(lanes != 0);
        }
        // Counts are exactly the tape's per-lane popcounts.
        let mut from_tape = [0usize; LANES];
        for &(_, lanes) in &scalar_tape {
            for (l, slot) in from_tape.iter_mut().enumerate() {
                *slot += usize::from(lanes >> l & 1);
            }
        }
        prop_assert_eq!(from_tape, scalar_counts);

        for level in levels() {
            let (tape, counts) = run_block(&flat, level, &block);
            prop_assert_eq!(&tape, &scalar_tape, "tape diverged at {:?}", level);
            prop_assert_eq!(counts, scalar_counts, "counts diverged at {:?}", level);
        }
    }

    /// On finite coordinates the block query is lane-for-lane identical
    /// to the scalar one-point-at-a-time walk: same ids, same order,
    /// same counts — under every kernel level.
    #[test]
    fn block_replays_scalar_walk_per_lane(case in case(false)) {
        let (_dims, entries, events, fanout) = case;
        let flat = build_flat(entries, fanout);
        let mut block = EventBlock::new();
        block.fill(&events);

        let mut stack = Vec::new();
        let mut expected: Vec<Vec<EntryId>> = Vec::new();
        for coords in &events {
            let p = Point::new(coords.clone()).unwrap();
            let mut out = Vec::new();
            flat.query_point_with(&p, &mut stack, &mut out);
            prop_assert_eq!(flat.count_point_with(&p, &mut stack), out.len());
            expected.push(out);
        }

        for level in levels() {
            let (tape, counts) = run_block(&flat, level, &block);
            let mut per_lane: Vec<Vec<EntryId>> = vec![Vec::new(); events.len()];
            for &(id, lanes) in &tape {
                for (l, lane_hits) in per_lane.iter_mut().enumerate() {
                    if lanes >> l & 1 == 1 {
                        lane_hits.push(id);
                    }
                }
            }
            prop_assert_eq!(&per_lane, &expected, "per-lane walk diverged at {:?}", level);
            for (l, exp) in expected.iter().enumerate() {
                prop_assert_eq!(counts[l], exp.len());
            }
            for &padded in counts.iter().take(LANES).skip(events.len()) {
                prop_assert_eq!(padded, 0, "padded lane counted at {:?}", level);
            }
        }
    }
}
