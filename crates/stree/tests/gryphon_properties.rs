//! Property tests for the Gryphon-style matching tree: agreement with a
//! brute-force evaluator on arbitrary equality/wild-card workloads, and
//! agreement with the geometric indexes through the unit-interval
//! encoding.

use proptest::prelude::*;
use pubsub_geom::{Interval, Point, Rect};
use pubsub_stree::{
    CountingIndex, Entry, EntryId, EqualitySubscription, GryphonIndex, SpatialIndex,
};

const DIMS: usize = 3;
const CARDINALITY: u32 = 6;

fn subscription_strategy() -> impl Strategy<Value = EqualitySubscription> {
    prop::collection::vec(prop::option::of(0u32..CARDINALITY), DIMS)
        .prop_map(|v| v.into_iter().map(|o| o.map(f64::from)).collect())
}

fn event_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0u32..CARDINALITY + 1, DIMS)
        .prop_map(|v| v.into_iter().map(f64::from).collect())
}

fn brute(subs: &[EqualitySubscription], event: &[f64]) -> Vec<EntryId> {
    subs.iter()
        .enumerate()
        .filter(|(_, s)| {
            s.iter()
                .zip(event)
                .all(|(p, v)| p.is_none_or(|pv| pv == *v))
        })
        .map(|(i, _)| EntryId(i as u32))
        .collect()
}

fn to_unit_entries(subs: &[EqualitySubscription]) -> Vec<Entry> {
    subs.iter()
        .enumerate()
        .map(|(i, s)| {
            let sides: Vec<Interval> = s
                .iter()
                .map(|p| match p {
                    Some(v) => Interval::new(v - 1.0, *v).expect("unit"),
                    None => Interval::unbounded(),
                })
                .collect();
            Entry::new(Rect::new(sides).expect("dims"), EntryId(i as u32))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gryphon_matches_brute_force(
        subs in prop::collection::vec(subscription_strategy(), 0..80),
        events in prop::collection::vec(event_strategy(), 1..15),
    ) {
        let pairs: Vec<(EqualitySubscription, EntryId)> = subs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (s, EntryId(i as u32)))
            .collect();
        let idx = GryphonIndex::new(pairs).unwrap();
        for e in &events {
            let mut got = idx.query(e);
            got.sort();
            prop_assert_eq!(got, brute(&subs, e));
        }
    }

    #[test]
    fn gryphon_agrees_with_counting_index_via_unit_encoding(
        subs in prop::collection::vec(subscription_strategy(), 1..60),
        events in prop::collection::vec(event_strategy(), 1..10),
    ) {
        let entries = to_unit_entries(&subs);
        let gryphon = GryphonIndex::from_unit_entries(&entries).unwrap();
        let counting = CountingIndex::new(entries).unwrap();
        for e in &events {
            let point = Point::new(e.clone()).unwrap();
            let mut a = gryphon.query(e);
            a.sort();
            let mut b = counting.query_point(&point);
            b.sort();
            prop_assert_eq!(a, b, "event {:?}", e);
        }
    }

    #[test]
    fn roundtrip_through_unit_entries_preserves_semantics(
        subs in prop::collection::vec(subscription_strategy(), 1..40),
        events in prop::collection::vec(event_strategy(), 1..10),
    ) {
        let pairs: Vec<(EqualitySubscription, EntryId)> = subs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (s, EntryId(i as u32)))
            .collect();
        let direct = GryphonIndex::new(pairs).unwrap();
        let via_entries = GryphonIndex::from_unit_entries(&to_unit_entries(&subs)).unwrap();
        for e in &events {
            let mut a = direct.query(e);
            a.sort();
            let mut b = via_entries.query(e);
            b.sort();
            prop_assert_eq!(a, b);
        }
    }
}
