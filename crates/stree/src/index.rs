use pubsub_geom::{Point, Rect};

use crate::EntryId;

/// Common interface of the spatial indexes in this crate.
///
/// A *point query* returns the ids of all entries whose rectangle contains
/// the point (the pub-sub matching operation); a *region query* returns the
/// ids of all entries whose rectangle intersects the query rectangle.
///
/// The order of returned ids is unspecified; callers that need determinism
/// should sort. The trait is object-safe so heterogeneous benchmarking
/// harnesses can hold `Box<dyn SpatialIndex>`.
pub trait SpatialIndex {
    /// Number of entries in the index.
    fn len(&self) -> usize;

    /// `true` if the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed rectangles (`0` for an empty index).
    fn dims(&self) -> usize;

    /// Appends to `out` the ids of all entries containing `p`.
    ///
    /// `out` is *not* cleared first, so callers can accumulate.
    fn query_point_into(&self, p: &Point, out: &mut Vec<EntryId>);

    /// Appends to `out` the ids of all entries intersecting `r`.
    fn query_region_into(&self, r: &Rect, out: &mut Vec<EntryId>);

    /// Convenience wrapper allocating a fresh result vector for a point
    /// query.
    fn query_point(&self, p: &Point) -> Vec<EntryId> {
        let mut out = Vec::new();
        self.query_point_into(p, &mut out);
        out
    }

    /// Convenience wrapper allocating a fresh result vector for a region
    /// query.
    fn query_region(&self, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        self.query_region_into(r, &mut out);
        out
    }

    /// Number of entries containing `p`. The paper notes indexes can
    /// "efficiently compute or bound the number of subscribers" interested
    /// in a message; the default implementation materializes the result
    /// list, while indexes may override with a count-only traversal.
    fn count_point(&self, p: &Point) -> usize {
        self.query_point(p).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Entry, LinearScan};
    use pubsub_geom::Rect;

    #[test]
    fn trait_is_object_safe_and_defaults_work() {
        let entries = vec![
            Entry::new(Rect::from_corners(&[0.0], &[1.0]).unwrap(), EntryId(0)),
            Entry::new(Rect::from_corners(&[0.5], &[2.0]).unwrap(), EntryId(1)),
        ];
        let idx: Box<dyn SpatialIndex> = Box::new(LinearScan::new(entries).unwrap());
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
        assert_eq!(idx.dims(), 1);
        let p = Point::new(vec![0.75]).unwrap();
        assert_eq!(idx.count_point(&p), 2);
        let mut hits = idx.query_point(&p);
        hits.sort();
        assert_eq!(hits, vec![EntryId(0), EntryId(1)]);
    }
}
