//! Space-filling curves used by the packed R-tree baselines.
//!
//! The paper cites Hilbert-packed R-trees (Kamel & Faloutsos, VLDB 1994) as
//! the bottom-up packing alternative to the S-tree. The original work is
//! two-dimensional; for the paper's 4-dimensional event space we use the
//! standard N-dimensional generalization (Skilling's transform,
//! *"Programming the Hilbert curve"*, AIP 2004, equivalent to the Butz
//! algorithm), plus the simpler Morton / Z-order interleaving as a second
//! baseline.

use serde::{Deserialize, Serialize};

/// Which space-filling curve a [`crate::PackedRTree`] sorts by.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CurveKind {
    /// N-dimensional Hilbert curve — better locality, slightly costlier keys.
    Hilbert,
    /// Morton (Z-order) interleaving — cheaper keys, worse locality.
    Morton,
}

/// Maximum total key width supported (`dims * bits ≤ 128`).
const MAX_KEY_BITS: u32 = 128;

fn check_args(coords: &[u32], bits: u32) {
    assert!(!coords.is_empty(), "need at least one coordinate");
    assert!(bits >= 1, "need at least one bit per dimension");
    assert!(
        coords.len() as u32 * bits <= MAX_KEY_BITS,
        "dims * bits must be <= {MAX_KEY_BITS}"
    );
    debug_assert!(
        bits == 32 || coords.iter().all(|&c| c < (1u32 << bits)),
        "coordinate out of range for bit width"
    );
}

/// Computes the Hilbert index of a grid point.
///
/// `coords[d]` is the quantized coordinate along dimension `d`, each in
/// `[0, 2^bits)`. Returns the position of the point along the Hilbert curve
/// as a `dims*bits`-bit integer: points close on the curve are close in
/// space (the converse fails only at a bounded rate, which is exactly why
/// Hilbert packing clusters well).
///
/// # Panics
///
/// Panics if `coords` is empty, `bits == 0`, or `dims * bits > 128`.
///
/// # Example
///
/// ```
/// use pubsub_stree::hilbert_index;
///
/// // The order-1 2-D Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
/// assert_eq!(hilbert_index(&[0, 0], 1), 0);
/// assert_eq!(hilbert_index(&[0, 1], 1), 1);
/// assert_eq!(hilbert_index(&[1, 1], 1), 2);
/// assert_eq!(hilbert_index(&[1, 0], 1), 3);
/// ```
pub fn hilbert_index(coords: &[u32], bits: u32) -> u128 {
    check_args(coords, bits);
    let n = coords.len();
    let mut x: Vec<u32> = coords.to_vec();

    // Skilling's AxestoTranspose: convert coordinates into the "transposed"
    // Hilbert representation in place.
    let m = 1u32 << (bits - 1);
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray decode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }

    // Interleave the transposed bits, most significant plane first, into a
    // single index.
    let mut index: u128 = 0;
    for b in (0..bits).rev() {
        for xi in &x {
            index = (index << 1) | u128::from((xi >> b) & 1);
        }
    }
    index
}

/// Computes the Morton (Z-order) index of a grid point by bit interleaving.
///
/// Same argument conventions as [`hilbert_index`].
///
/// # Panics
///
/// Panics if `coords` is empty, `bits == 0`, or `dims * bits > 128`.
pub fn morton_index(coords: &[u32], bits: u32) -> u128 {
    check_args(coords, bits);
    let mut index: u128 = 0;
    for b in (0..bits).rev() {
        for &c in coords {
            index = (index << 1) | u128::from((c >> b) & 1);
        }
    }
    index
}

/// Computes the curve key selected by `kind`.
pub(crate) fn curve_index(kind: CurveKind, coords: &[u32], bits: u32) -> u128 {
    match kind {
        CurveKind::Hilbert => hilbert_index(coords, bits),
        CurveKind::Morton => morton_index(coords, bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hilbert_2d_order_1_matches_reference() {
        // Order-1 2-D Hilbert curve: U shape.
        assert_eq!(hilbert_index(&[0, 0], 1), 0);
        assert_eq!(hilbert_index(&[0, 1], 1), 1);
        assert_eq!(hilbert_index(&[1, 1], 1), 2);
        assert_eq!(hilbert_index(&[1, 0], 1), 3);
    }

    #[test]
    fn hilbert_is_a_bijection() {
        for (dims, bits) in [(2usize, 3u32), (3, 2), (4, 2)] {
            let side = 1u32 << bits;
            let total = (side as u128).pow(dims as u32);
            let mut seen = HashSet::new();
            let mut coords = vec![0u32; dims];
            'grid: loop {
                let idx = hilbert_index(&coords, bits);
                assert!(idx < total);
                assert!(seen.insert(idx), "duplicate index for {coords:?}");
                // Odometer.
                let mut d = 0;
                loop {
                    if d == dims {
                        break 'grid;
                    }
                    coords[d] += 1;
                    if coords[d] < side {
                        break;
                    }
                    coords[d] = 0;
                    d += 1;
                }
            }
            assert_eq!(seen.len() as u128, total);
        }
    }

    #[test]
    fn hilbert_consecutive_indexes_are_adjacent_cells() {
        // The defining property: walking the curve moves one grid step at a
        // time. Invert by brute force on a small grid.
        let bits = 3;
        let side = 1u32 << bits;
        let mut by_index = vec![None; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                by_index[hilbert_index(&[x, y], bits) as usize] = Some((x, y));
            }
        }
        for w in by_index.windows(2) {
            let (x0, y0) = w[0].unwrap();
            let (x1, y1) = w[1].unwrap();
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "curve jumped from {:?} to {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn morton_is_a_bijection_and_interleaves() {
        assert_eq!(morton_index(&[0b11, 0b00], 2), 0b1010);
        assert_eq!(morton_index(&[0b00, 0b11], 2), 0b0101);
        let mut seen = HashSet::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                assert!(seen.insert(morton_index(&[x, y], 3)));
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    #[should_panic(expected = "dims * bits")]
    fn too_many_bits_panics() {
        let coords = vec![0u32; 5];
        let _ = hilbert_index(&coords, 32);
    }

    #[test]
    fn four_dimensions_smoke() {
        // 4-D with 16 bits/dim = 64-bit keys: the paper's event space.
        let a = hilbert_index(&[1, 2, 3, 4], 16);
        let b = hilbert_index(&[1, 2, 3, 5], 16);
        assert_ne!(a, b);
    }
}
