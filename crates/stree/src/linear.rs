use pubsub_geom::{Point, Rect};

use crate::{Entry, EntryId, IndexError, SpatialIndex};

/// Brute-force index: scans every entry on each query.
///
/// `O(k)` per query, but trivially correct — it is the oracle against which
/// the tree indexes are property-tested, and the sensible choice for very
/// small subscription sets.
///
/// # Example
///
/// ```
/// use pubsub_geom::{Point, Rect};
/// use pubsub_stree::{Entry, EntryId, LinearScan, SpatialIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scan = LinearScan::new(vec![Entry::new(
///     Rect::from_corners(&[0.0], &[10.0])?,
///     EntryId(42),
/// )])?;
/// assert_eq!(scan.query_point(&Point::new(vec![5.0])?), vec![EntryId(42)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LinearScan {
    entries: Vec<Entry>,
    dims: usize,
}

impl LinearScan {
    /// Creates a scan index over the given entries.
    ///
    /// Unlike the tree indexes, unbounded rectangles are allowed (no volume
    /// computations take place).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::DimensionMismatch`] if the entries do not all
    /// share one dimensionality.
    pub fn new(entries: Vec<Entry>) -> Result<Self, IndexError> {
        let dims = entries.first().map_or(0, |e| e.rect.dims());
        for (index, e) in entries.iter().enumerate() {
            if e.rect.dims() != dims {
                return Err(IndexError::DimensionMismatch {
                    expected: dims,
                    got: e.rect.dims(),
                    index,
                });
            }
        }
        Ok(LinearScan { entries, dims })
    }

    /// The stored entries, in insertion order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }
}

impl SpatialIndex for LinearScan {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn query_point_into(&self, p: &Point, out: &mut Vec<EntryId>) {
        for e in &self.entries {
            if e.rect.contains_point(p) {
                out.push(e.id);
            }
        }
    }

    fn query_region_into(&self, r: &Rect, out: &mut Vec<EntryId>) {
        for e in &self.entries {
            if e.rect.intersects(r) {
                out.push(e.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Interval;

    fn entries() -> Vec<Entry> {
        vec![
            Entry::new(
                Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).unwrap(),
                EntryId(0),
            ),
            Entry::new(
                Rect::from_corners(&[3.0, 3.0], &[8.0, 8.0]).unwrap(),
                EntryId(1),
            ),
            Entry::new(
                Rect::new(vec![Interval::at_least(7.0), Interval::unbounded()]).unwrap(),
                EntryId(2),
            ),
        ]
    }

    #[test]
    fn point_queries() {
        let idx = LinearScan::new(entries()).unwrap();
        let q = |x: f64, y: f64| {
            let mut v = idx.query_point(&Point::new(vec![x, y]).unwrap());
            v.sort();
            v
        };
        assert_eq!(q(1.0, 1.0), vec![EntryId(0)]);
        assert_eq!(q(4.0, 4.0), vec![EntryId(0), EntryId(1)]);
        assert_eq!(q(7.5, -100.0), vec![EntryId(2)]);
        assert_eq!(q(9.0, 9.0), vec![EntryId(2)]);
    }

    #[test]
    fn region_queries() {
        let idx = LinearScan::new(entries()).unwrap();
        let mut v = idx.query_region(&Rect::from_corners(&[4.0, 4.0], &[7.5, 7.5]).unwrap());
        v.sort();
        assert_eq!(v, vec![EntryId(0), EntryId(1), EntryId(2)]);
    }

    #[test]
    fn mixed_dims_rejected() {
        let bad = vec![
            Entry::new(Rect::from_corners(&[0.0], &[1.0]).unwrap(), EntryId(0)),
            Entry::new(
                Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap(),
                EntryId(1),
            ),
        ];
        assert!(matches!(
            LinearScan::new(bad),
            Err(IndexError::DimensionMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn empty_index() {
        let idx = LinearScan::new(vec![]).unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.dims(), 0);
    }
}
