//! Flat, cache-friendly compilation of a built tree index.
//!
//! The node-based [`STree`]/[`PackedRTree`] walks chase pointers: every
//! node holds a heap-allocated [`Rect`] (itself a `Vec<Interval>`), and
//! S-tree internal nodes hold a `Vec<u32>` child list. A point query
//! therefore takes several dependent loads per visited node, which is what
//! dominates matching time once the tree is memory-resident.
//!
//! [`FlatSTree`] recompiles any built tree into four contiguous arrays:
//!
//! * per-node `lo`/`hi` bound arrays laid out **dimension-major**
//!   (`lo[d * node_count + v]`), so scanning a run of sibling nodes along
//!   one dimension is a sequential read;
//! * one `(u32, u32)` child span per node — nodes are renumbered
//!   breadth-first during compilation, which makes every node's children
//!   (and every leaf's entries) a contiguous range;
//! * per-entry `lo`/`hi` bound arrays in the same dimension-major layout,
//!   with leaf entry runs level-contiguous;
//! * the entry id array.
//!
//! Queries are iterative (explicit stack, no recursion) and the
//! containment loop is monomorphized per dimensionality for the common
//! cases, so the inner loop is branch-predictable straight-line code.
//! [`FlatSTree::count_point`] never materializes result ids.
//!
//! # Example
//!
//! ```
//! use pubsub_geom::{Point, Rect};
//! use pubsub_stree::{Entry, EntryId, FlatSTree, STree, STreeConfig, SpatialIndex};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let entries = vec![
//!     Entry::new(Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0])?, EntryId(0)),
//!     Entry::new(Rect::from_corners(&[3.0, 3.0], &[9.0, 9.0])?, EntryId(1)),
//! ];
//! let tree = STree::build(entries, STreeConfig::default())?;
//! let flat = FlatSTree::from_stree(&tree);
//! let p = Point::new(vec![4.0, 4.0])?;
//! let mut hits = flat.query_point(&p);
//! hits.sort();
//! assert_eq!(hits, vec![EntryId(0), EntryId(1)]);
//! assert_eq!(flat.count_point(&p), 2);
//! # Ok(())
//! # }
//! ```

use std::cell::RefCell;

use pubsub_geom::{Point, Rect};

use crate::packed::PackedRTree;
use crate::simd::{self, EventBlock, SimdLevel, LANES};
use crate::stree::{Children, STree};
use crate::{EntryId, SpatialIndex};

/// How one source node refers to its children during compilation.
enum Kids<'a> {
    /// Leaf: a contiguous range of the source entry array.
    Entries { start: u32, len: u32 },
    /// Internal node with an explicit child list (S-tree).
    List(&'a [u32]),
    /// Internal node with a contiguous child range (packed R-tree).
    Range { first: u32, len: u32 },
}

/// A flat, query-only compilation of a built [`STree`] or
/// [`PackedRTree`]: structure-of-arrays bounds, breadth-first node
/// numbering, span-encoded children. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct FlatSTree {
    dims: usize,
    /// Node bounds, dimension-major: `node_lo[d * node_count + v]`.
    node_lo: Vec<f64>,
    node_hi: Vec<f64>,
    /// Per node: child node span (internal) or entry span (leaf).
    spans: Vec<(u32, u32)>,
    leaf: Vec<bool>,
    /// Entry bounds, dimension-major: `entry_lo[d * entry_count + i]`.
    entry_lo: Vec<f64>,
    entry_hi: Vec<f64>,
    ids: Vec<EntryId>,
}

thread_local! {
    /// Traversal stack for the scratch-free [`SpatialIndex`] entry points;
    /// reused across queries so the trait path is allocation-free after
    /// warm-up.
    static TRAVERSAL_STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

impl FlatSTree {
    /// Compiles a built [`STree`] into the flat layout. Queries on the
    /// result return exactly the same id sets.
    pub fn from_stree(tree: &STree) -> Self {
        Self::compile(
            tree.dims(),
            tree.entries.len(),
            tree.root,
            |v| &tree.nodes[v as usize].mbr,
            |v| match &tree.nodes[v as usize].children {
                Children::Leaf { start, len } => Kids::Entries {
                    start: *start,
                    len: *len,
                },
                Children::Internal(children) => Kids::List(children),
            },
            |i| {
                let e = &tree.entries[i as usize];
                (&e.rect, e.id)
            },
        )
    }

    /// Compiles a built [`PackedRTree`] into the flat layout.
    pub fn from_packed(tree: &PackedRTree) -> Self {
        Self::compile(
            tree.dims(),
            tree.entries.len(),
            tree.root,
            |v| &tree.nodes[v as usize].mbr,
            |v| {
                let n = &tree.nodes[v as usize];
                if n.leaf {
                    Kids::Entries {
                        start: n.first,
                        len: n.len,
                    }
                } else {
                    Kids::Range {
                        first: n.first,
                        len: n.len,
                    }
                }
            },
            |i| {
                let e = &tree.entries[i as usize];
                (&e.rect, e.id)
            },
        )
    }

    fn compile<'a>(
        dims: usize,
        entry_total: usize,
        root: Option<u32>,
        mbr: impl Fn(u32) -> &'a Rect,
        kids: impl Fn(u32) -> Kids<'a>,
        entry: impl Fn(u32) -> (&'a Rect, EntryId),
    ) -> Self {
        let Some(root) = root else {
            return FlatSTree {
                dims,
                node_lo: Vec::new(),
                node_hi: Vec::new(),
                spans: Vec::new(),
                leaf: Vec::new(),
                entry_lo: Vec::new(),
                entry_hi: Vec::new(),
                ids: Vec::new(),
            };
        };

        // Pass 1: breadth-first renumbering. `order[new_id] = source_id`;
        // a node's children are appended together, so every internal node
        // owns a contiguous span of new ids, and leaf entry runs are
        // assigned in the same level order.
        let mut order: Vec<u32> = vec![root];
        let mut spans: Vec<(u32, u32)> = Vec::new();
        let mut leaf: Vec<bool> = Vec::new();
        // (source entry start, flat entry start, len) per leaf, for pass 2.
        let mut copies: Vec<(u32, u32, u32)> = Vec::new();
        let mut entry_cursor = 0u32;
        let mut head = 0usize;
        while head < order.len() {
            let sv = order[head];
            head += 1;
            match kids(sv) {
                Kids::Entries { start, len } => {
                    spans.push((entry_cursor, len));
                    leaf.push(true);
                    copies.push((start, entry_cursor, len));
                    entry_cursor += len;
                }
                Kids::List(children) => {
                    spans.push((order.len() as u32, children.len() as u32));
                    leaf.push(false);
                    order.extend_from_slice(children);
                }
                Kids::Range { first, len } => {
                    spans.push((order.len() as u32, len));
                    leaf.push(false);
                    order.extend(first..first + len);
                }
            }
        }
        debug_assert_eq!(entry_cursor as usize, entry_total);

        // Pass 2: fill the dimension-major bound arrays.
        let n = order.len();
        let mut node_lo = vec![0.0f64; dims * n];
        let mut node_hi = vec![0.0f64; dims * n];
        for (nv, &sv) in order.iter().enumerate() {
            let r = mbr(sv);
            for d in 0..dims {
                let side = r.side(d);
                node_lo[d * n + nv] = side.lo();
                node_hi[d * n + nv] = side.hi();
            }
        }
        let mut entry_lo = vec![0.0f64; dims * entry_total];
        let mut entry_hi = vec![0.0f64; dims * entry_total];
        let mut ids = vec![EntryId(0); entry_total];
        for &(src, dst, len) in &copies {
            for k in 0..len {
                let (r, id) = entry(src + k);
                let i = (dst + k) as usize;
                ids[i] = id;
                for d in 0..dims {
                    let side = r.side(d);
                    entry_lo[d * entry_total + i] = side.lo();
                    entry_hi[d * entry_total + i] = side.hi();
                }
            }
        }

        FlatSTree {
            dims,
            node_lo,
            node_hi,
            spans,
            leaf,
            entry_lo,
            entry_hi,
            ids,
        }
    }

    /// Number of nodes in the compiled tree.
    pub fn node_count(&self) -> usize {
        self.spans.len()
    }

    /// Point query with caller-provided traversal scratch: no allocation
    /// at all once `stack` and `out` have grown to their working sizes.
    /// Matching ids are appended to `out` (not cleared first).
    pub fn query_point_with(&self, p: &Point, stack: &mut Vec<u32>, out: &mut Vec<EntryId>) {
        if self.spans.is_empty() {
            return;
        }
        debug_assert_eq!(p.dims(), self.dims);
        match self.dims {
            1 => self.point_query::<1, false>(p.as_slice(), stack, Some(out)),
            2 => self.point_query::<2, false>(p.as_slice(), stack, Some(out)),
            3 => self.point_query::<3, false>(p.as_slice(), stack, Some(out)),
            4 => self.point_query::<4, false>(p.as_slice(), stack, Some(out)),
            _ => self.point_query::<0, false>(p.as_slice(), stack, Some(out)),
        };
    }

    /// Count-only point query with caller-provided scratch: traverses the
    /// same nodes as [`FlatSTree::query_point_with`] but never
    /// materializes ids.
    pub fn count_point_with(&self, p: &Point, stack: &mut Vec<u32>) -> usize {
        if self.spans.is_empty() {
            return 0;
        }
        debug_assert_eq!(p.dims(), self.dims);
        match self.dims {
            1 => self.point_query::<1, true>(p.as_slice(), stack, None),
            2 => self.point_query::<2, true>(p.as_slice(), stack, None),
            3 => self.point_query::<3, true>(p.as_slice(), stack, None),
            4 => self.point_query::<4, true>(p.as_slice(), stack, None),
            _ => self.point_query::<0, true>(p.as_slice(), stack, None),
        }
    }

    /// Block point query: answers up to [`LANES`] point queries in **one
    /// joint traversal**. Each stack element carries a node id plus the
    /// bitmask of lanes still alive at that node, so a subtree shared by
    /// several events is walked once: the root is pruned with one
    /// all-lanes containment test ([`simd::lanes_contain`]), every span
    /// below it is swept once per live lane with the vector sweep kernel
    /// ([`simd::sweep_mask`]), and nodes down to a single live lane
    /// drop the lane bookkeeping and replay that lane's scalar walk
    /// with vector sweeps.
    ///
    /// `emit(id, lane_mask)` is called for every matched entry with the
    /// set of lanes whose point it contains. Restricted to any
    /// single lane, the sequence of emitted entries is **identical**
    /// (same ids, same order) to what [`FlatSTree::query_point_with`]
    /// produces for that lane's point: both traversals push surviving
    /// children in ascending index order onto a LIFO stack, and a node
    /// survives for a lane here exactly when it contains that lane's
    /// point, so the joint walk restricted to one lane's bits replays
    /// that lane's scalar walk move for move.
    pub fn query_point_block(
        &self,
        block: &EventBlock,
        stack: &mut Vec<u64>,
        emit: impl FnMut(EntryId, u8),
    ) {
        self.query_point_block_at(simd::active_level(), block, stack, emit);
    }

    /// Explicit-level variant of [`FlatSTree::query_point_block`], used
    /// by the bit-identity property tests and benches to pin the kernel
    /// implementation instead of taking [`simd::active_level`].
    pub fn query_point_block_at(
        &self,
        level: SimdLevel,
        block: &EventBlock,
        stack: &mut Vec<u64>,
        mut emit: impl FnMut(EntryId, u8),
    ) {
        self.block_query::<false>(level, block, stack, &mut |id, lanes| emit(id, lanes));
    }

    /// Count-only form of [`FlatSTree::query_point_block`]: per-lane
    /// match counts, no id materialization. `counts[l]` equals
    /// [`FlatSTree::count_point_with`] on lane `l`'s point.
    pub fn count_point_block(&self, block: &EventBlock, stack: &mut Vec<u64>) -> [usize; LANES] {
        self.count_point_block_at(simd::active_level(), block, stack)
    }

    /// Explicit-level variant of [`FlatSTree::count_point_block`].
    pub fn count_point_block_at(
        &self,
        level: SimdLevel,
        block: &EventBlock,
        stack: &mut Vec<u64>,
    ) -> [usize; LANES] {
        self.block_query::<true>(level, block, stack, &mut |_, _| {})
    }

    /// The joint lane-masked block traversal behind
    /// [`FlatSTree::query_point_block`] /
    /// [`FlatSTree::count_point_block`]. Stack elements pack
    /// `(node << 8) | lane_mask`.
    ///
    /// Dims-monomorphized like [`FlatSTree::point_query`] (so the
    /// per-dimension sweep loop unrolls), then kernel-level-monomorphized
    /// through `#[target_feature]` wrappers: a dynamic kernel call per
    /// lane per dimension per chunk costs more than the compares it
    /// saves at typical fanouts, so the intrinsics must inline into the
    /// traversal loop to win.
    fn block_query<const COUNT: bool>(
        &self,
        level: SimdLevel,
        block: &EventBlock,
        stack: &mut Vec<u64>,
        emit: &mut impl FnMut(EntryId, u8),
    ) -> [usize; LANES] {
        match self.dims {
            1 => self.block_query_at::<1, COUNT>(level, block, stack, emit),
            2 => self.block_query_at::<2, COUNT>(level, block, stack, emit),
            3 => self.block_query_at::<3, COUNT>(level, block, stack, emit),
            4 => self.block_query_at::<4, COUNT>(level, block, stack, emit),
            _ => self.block_query_at::<0, COUNT>(level, block, stack, emit),
        }
    }

    fn block_query_at<const D: usize, const COUNT: bool>(
        &self,
        level: SimdLevel,
        block: &EventBlock,
        stack: &mut Vec<u64>,
        emit: &mut impl FnMut(EntryId, u8),
    ) -> [usize; LANES] {
        #[cfg(target_arch = "x86_64")]
        {
            match level {
                // SAFETY: dispatch only selects Avx2/Sse2 when the CPU
                // reports the feature.
                SimdLevel::Avx2 => {
                    return unsafe { self.block_query_avx2::<D, COUNT>(block, stack, emit) }
                }
                SimdLevel::Sse2 => {
                    return unsafe { self.block_query_sse2::<D, COUNT>(block, stack, emit) }
                }
                SimdLevel::Scalar => {}
            }
        }
        let _ = level;
        self.block_query_impl::<D, COUNT>(SimdLevel::Scalar, block, stack, emit)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn block_query_avx2<const D: usize, const COUNT: bool>(
        &self,
        block: &EventBlock,
        stack: &mut Vec<u64>,
        emit: &mut impl FnMut(EntryId, u8),
    ) -> [usize; LANES] {
        self.block_query_impl::<D, COUNT>(SimdLevel::Avx2, block, stack, emit)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn block_query_sse2<const D: usize, const COUNT: bool>(
        &self,
        block: &EventBlock,
        stack: &mut Vec<u64>,
        emit: &mut impl FnMut(EntryId, u8),
    ) -> [usize; LANES] {
        self.block_query_impl::<D, COUNT>(SimdLevel::Sse2, block, stack, emit)
    }

    #[inline(always)]
    fn block_query_impl<const D: usize, const COUNT: bool>(
        &self,
        level: SimdLevel,
        block: &EventBlock,
        stack: &mut Vec<u64>,
        emit: &mut impl FnMut(EntryId, u8),
    ) -> [usize; LANES] {
        let mut counts = [0usize; LANES];
        if self.spans.is_empty() {
            return counts;
        }
        debug_assert_eq!(block.dims(), self.dims);
        let dims = if D == 0 { self.dims } else { D };
        let n = self.node_count();
        let en = self.ids.len();
        stack.clear();
        let root = simd::lanes_contain(
            level,
            &self.node_lo,
            &self.node_hi,
            n,
            0,
            block,
            block.full_mask(),
        );
        if root != 0 {
            stack.push(u64::from(root));
        }
        while let Some(top) = stack.pop() {
            let v = (top >> 8) as usize;
            let active = top as u8;
            let (start, len) = self.spans[v];
            let (start, len) = (start as usize, len as usize);
            let is_leaf = self.leaf[v];
            let (lo, hi, stride) = if is_leaf {
                (&self.entry_lo, &self.entry_hi, en)
            } else {
                (&self.node_lo, &self.node_hi, n)
            };
            if active & (active - 1) == 0 {
                // Single live lane — the walk below this node is exactly
                // that lane's scalar walk, so sweep directly and skip
                // the per-lane mask array, union and lanes-byte gather.
                let l = active.trailing_zeros() as usize;
                let point = block.point(l);
                let mut k = 0usize;
                while k < len {
                    let chunk = (len - k).min(64);
                    let base = start + k;
                    let mut mask: u64 = if chunk == 64 { !0 } else { (1u64 << chunk) - 1 };
                    for (d, &x) in point.iter().enumerate().take(dims) {
                        let row = d * stride + base;
                        mask &= simd::sweep_mask(level, &lo[row..], &hi[row..], chunk, x);
                        if mask == 0 {
                            break;
                        }
                    }
                    if COUNT && is_leaf {
                        counts[l] += mask.count_ones() as usize;
                    } else {
                        while mask != 0 {
                            let j = mask.trailing_zeros() as usize;
                            mask &= mask - 1;
                            if is_leaf {
                                emit(self.ids[base + j], active);
                            } else {
                                stack.push((((base + j) as u64) << 8) | u64::from(active));
                            }
                        }
                    }
                    k += chunk;
                }
                continue;
            }
            let mut k = 0usize;
            while k < len {
                let chunk = (len - k).min(64);
                let base = start + k;
                let masks =
                    block_chunk_masks::<D>(level, lo, hi, stride, base, chunk, block, active, dims);
                if COUNT && is_leaf {
                    for (l, m) in masks.iter().enumerate() {
                        counts[l] += m.count_ones() as usize;
                    }
                } else {
                    let mut union = 0u64;
                    for m in &masks {
                        union |= m;
                    }
                    while union != 0 {
                        let j = union.trailing_zeros() as usize;
                        union &= union - 1;
                        let mut lanes = 0u8;
                        let mut rest = active;
                        while rest != 0 {
                            let l = rest.trailing_zeros() as usize;
                            rest &= rest - 1;
                            lanes |= (((masks[l] >> j) & 1) as u8) << l;
                        }
                        if is_leaf {
                            emit(self.ids[base + j], lanes);
                        } else {
                            stack.push((((base + j) as u64) << 8) | u64::from(lanes));
                        }
                    }
                }
                k += chunk;
            }
        }
        counts
    }

    /// Region query with caller-provided traversal scratch.
    pub fn query_region_with(&self, r: &Rect, stack: &mut Vec<u32>, out: &mut Vec<EntryId>) {
        if self.spans.is_empty() {
            return;
        }
        debug_assert_eq!(r.dims(), self.dims);
        let n = self.node_count();
        let en = self.ids.len();
        stack.clear();
        if self.node_intersects(0, r, n) {
            stack.push(0);
        }
        while let Some(v) = stack.pop() {
            let (start, len) = self.spans[v as usize];
            if self.leaf[v as usize] {
                for i in start as usize..(start + len) as usize {
                    let mut hit = true;
                    for d in 0..self.dims {
                        let lo = self.entry_lo[d * en + i].max(r.side(d).lo());
                        let hi = self.entry_hi[d * en + i].min(r.side(d).hi());
                        if lo >= hi {
                            hit = false;
                            break;
                        }
                    }
                    if hit {
                        out.push(self.ids[i]);
                    }
                }
            } else {
                for c in start..start + len {
                    if self.node_intersects(c as usize, r, n) {
                        stack.push(c);
                    }
                }
            }
        }
    }

    #[inline]
    fn node_intersects(&self, v: usize, r: &Rect, n: usize) -> bool {
        for d in 0..self.dims {
            let lo = self.node_lo[d * n + v].max(r.side(d).lo());
            let hi = self.node_hi[d * n + v].min(r.side(d).hi());
            if lo >= hi {
                return false;
            }
        }
        true
    }

    /// The shared point traversal, monomorphized per dimensionality
    /// (`D == 0` is the dynamic fallback) and per mode (`COUNT` skips id
    /// materialization). Returns the match count.
    ///
    /// Spans (a node's children, a leaf's entries) are tested in chunks
    /// of up to 64 with a survivor bitmask built one dimension at a time:
    /// each dimension is a sequential, branchless sweep over the
    /// dimension-major bound arrays, which is the access pattern the
    /// layout exists for.
    fn point_query<const D: usize, const COUNT: bool>(
        &self,
        coords: &[f64],
        stack: &mut Vec<u32>,
        mut out: Option<&mut Vec<EntryId>>,
    ) -> usize {
        if self.spans.is_empty() {
            return 0;
        }
        let n = self.node_count();
        let en = self.ids.len();
        let dims = if D == 0 { self.dims } else { D };
        let mut count = 0usize;
        stack.clear();
        if contains_one::<D>(&self.node_lo, &self.node_hi, n, 0, coords, dims) {
            stack.push(0);
        }
        while let Some(v) = stack.pop() {
            let span = self.spans[v as usize];
            if self.leaf[v as usize] {
                span_masks::<D>(
                    &self.entry_lo,
                    &self.entry_hi,
                    en,
                    span,
                    coords,
                    dims,
                    |base, mut mask| {
                        count += mask.count_ones() as usize;
                        if !COUNT {
                            let out = out.as_deref_mut().expect("query mode provides out");
                            while mask != 0 {
                                let j = mask.trailing_zeros() as usize;
                                out.push(self.ids[base + j]);
                                mask &= mask - 1;
                            }
                        }
                    },
                );
            } else {
                span_masks::<D>(
                    &self.node_lo,
                    &self.node_hi,
                    n,
                    span,
                    coords,
                    dims,
                    |base, mut mask| {
                        while mask != 0 {
                            let j = mask.trailing_zeros() as usize;
                            stack.push((base + j) as u32);
                            mask &= mask - 1;
                        }
                    },
                );
            }
        }
        count
    }
}

/// Half-open containment test (`lo < x ≤ hi` per dimension, matching
/// [`pubsub_geom::Interval::contains`]) for a single element of a
/// dimension-major bound array. Used for the root; spans go through
/// [`span_masks`].
#[inline(always)]
fn contains_one<const D: usize>(
    lo: &[f64],
    hi: &[f64],
    stride: usize,
    v: usize,
    coords: &[f64],
    dims: usize,
) -> bool {
    let dims = if D == 0 { dims } else { D };
    for (d, &x) in coords.iter().enumerate().take(dims) {
        let i = d * stride + v;
        if !(lo[i] < x && x <= hi[i]) {
            return false;
        }
    }
    true
}

/// Tests the elements `[start, start + len)` of a dimension-major bound
/// array against `coords` and hands the caller one survivor bitmask per
/// chunk of 64 (bit `j` set ⇔ element `base + j` contains the point).
/// Each dimension is one branchless sequential sweep; a chunk whose mask
/// empties skips its remaining dimensions.
#[inline(always)]
fn span_masks<const D: usize>(
    lo: &[f64],
    hi: &[f64],
    stride: usize,
    (start, len): (u32, u32),
    coords: &[f64],
    dims: usize,
    mut emit: impl FnMut(usize, u64),
) {
    let dims = if D == 0 { dims } else { D };
    let mut k = 0usize;
    let len = len as usize;
    let start = start as usize;
    while k < len {
        let chunk = (len - k).min(64);
        let base = start + k;
        let mut mask: u64 = if chunk == 64 { !0 } else { (1u64 << chunk) - 1 };
        for (d, &x) in coords.iter().enumerate().take(dims) {
            let row = d * stride + base;
            let lo_d = &lo[row..row + chunk];
            let hi_d = &hi[row..row + chunk];
            let mut m = 0u64;
            for j in 0..chunk {
                m |= u64::from((lo_d[j] < x) & (x <= hi_d[j])) << j;
            }
            mask &= m;
            if mask == 0 {
                break;
            }
        }
        if mask != 0 {
            emit(base, mask);
        }
        k += chunk;
    }
}

/// Per-lane survivor masks for the elements `[base, base + chunk)` of a
/// dimension-major bound array, the block-mode analogue of
/// [`span_masks`]: `result[l]` has bit `j` set ⇔ lane `l` is in `active`
/// and element `base + j` contains lane `l`'s point.
///
/// Always the **sweep orientation**: each live lane's coordinate is
/// swept over the chunk's bounds with [`simd::sweep_mask`], the vector
/// form of the scalar branchless sweep, with the same empty-mask
/// dimension short-circuit. The alternative lane orientation (one bound
/// pair vs all 8 event lanes with [`simd::lanes_contain`]) measured
/// slower at every live-lane count on the paper's testbed: it cannot
/// short-circuit per lane, so once the lanes' walks diverge it pays
/// `chunk × dims` vector compares that the sweeps skip.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn block_chunk_masks<const D: usize>(
    level: SimdLevel,
    lo: &[f64],
    hi: &[f64],
    stride: usize,
    base: usize,
    chunk: usize,
    block: &EventBlock,
    active: u8,
    dims: usize,
) -> [u64; LANES] {
    let dims = if D == 0 { dims } else { D };
    let mut lane_masks = [0u64; LANES];
    let full: u64 = if chunk == 64 { !0 } else { (1u64 << chunk) - 1 };
    let mut rest = active;
    while rest != 0 {
        let l = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let point = block.point(l);
        let mut mask = full;
        for (d, &x) in point.iter().enumerate().take(dims) {
            let row = d * stride + base;
            mask &= simd::sweep_mask(level, &lo[row..], &hi[row..], chunk, x);
            if mask == 0 {
                break;
            }
        }
        lane_masks[l] = mask;
    }
    lane_masks
}

impl SpatialIndex for FlatSTree {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn query_point_into(&self, p: &Point, out: &mut Vec<EntryId>) {
        TRAVERSAL_STACK.with_borrow_mut(|stack| self.query_point_with(p, stack, out));
    }

    fn query_region_into(&self, r: &Rect, out: &mut Vec<EntryId>) {
        TRAVERSAL_STACK.with_borrow_mut(|stack| self.query_region_with(r, stack, out));
    }

    fn count_point(&self, p: &Point) -> usize {
        TRAVERSAL_STACK.with_borrow_mut(|stack| self.count_point_with(p, stack))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Entry, PackedConfig, STreeConfig};

    fn entries_grid(n: u32) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let x = f64::from(i % 25) * 4.0;
                let y = f64::from(i / 25) * 4.0;
                Entry::new(
                    Rect::from_corners(&[x, y], &[x + 6.0, y + 6.0]).unwrap(),
                    EntryId(i),
                )
            })
            .collect()
    }

    fn sorted(mut v: Vec<EntryId>) -> Vec<EntryId> {
        v.sort();
        v
    }

    #[test]
    fn empty_tree_compiles_and_answers() {
        let tree = STree::build(vec![], STreeConfig::default()).unwrap();
        let flat = FlatSTree::from_stree(&tree);
        assert!(flat.is_empty());
        assert_eq!(flat.node_count(), 0);
        let p = Point::new(vec![1.0]).unwrap();
        assert!(flat.query_point(&p).is_empty());
        assert_eq!(flat.count_point(&p), 0);
    }

    #[test]
    fn matches_source_stree_on_grid() {
        let entries = entries_grid(400);
        let tree = STree::build(entries, STreeConfig::new(8, 0.3).unwrap()).unwrap();
        let flat = FlatSTree::from_stree(&tree);
        assert_eq!(flat.len(), tree.len());
        assert_eq!(flat.dims(), 2);
        for i in 0..60 {
            let p =
                Point::new(vec![f64::from(i) * 2.3 % 100.0, f64::from(i) * 3.7 % 64.0]).unwrap();
            assert_eq!(sorted(flat.query_point(&p)), sorted(tree.query_point(&p)));
            assert_eq!(flat.count_point(&p), tree.count_point(&p));
        }
        let r = Rect::from_corners(&[10.0, 10.0], &[30.0, 30.0]).unwrap();
        assert_eq!(sorted(flat.query_region(&r)), sorted(tree.query_region(&r)));
    }

    #[test]
    fn matches_source_packed_tree() {
        let entries = entries_grid(500);
        let tree = PackedRTree::build(entries, PackedConfig::hilbert()).unwrap();
        let flat = FlatSTree::from_packed(&tree);
        for i in 0..40 {
            let p =
                Point::new(vec![f64::from(i) * 3.1 % 100.0, f64::from(i) * 5.3 % 80.0]).unwrap();
            assert_eq!(sorted(flat.query_point(&p)), sorted(tree.query_point(&p)));
            assert_eq!(flat.count_point(&p), tree.count_point(&p));
        }
    }

    #[test]
    fn scratch_path_accumulates_without_clearing() {
        let entries = entries_grid(100);
        let tree = STree::build(entries, STreeConfig::new(4, 0.3).unwrap()).unwrap();
        let flat = FlatSTree::from_stree(&tree);
        let mut stack = Vec::new();
        let mut out = Vec::new();
        let p = Point::new(vec![12.0, 12.0]).unwrap();
        flat.query_point_with(&p, &mut stack, &mut out);
        let first = out.len();
        assert!(first > 0);
        flat.query_point_with(&p, &mut stack, &mut out);
        assert_eq!(out.len(), 2 * first, "out must accumulate, not clear");
        assert_eq!(flat.count_point_with(&p, &mut stack), first);
    }

    #[test]
    fn duplicate_rects_all_found() {
        let r = Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap();
        let entries: Vec<Entry> = (0..100)
            .map(|i| Entry::new(r.clone(), EntryId(i)))
            .collect();
        let tree = STree::build(entries, STreeConfig::new(4, 0.3).unwrap()).unwrap();
        let flat = FlatSTree::from_stree(&tree);
        let p = Point::new(vec![0.5, 0.5]).unwrap();
        assert_eq!(flat.query_point(&p).len(), 100);
        assert_eq!(flat.count_point(&p), 100);
    }

    #[test]
    fn high_dimensional_fallback_path() {
        // 6-D exercises the dynamic (`D == 0`) monomorphization.
        let entries: Vec<Entry> = (0..50)
            .map(|i| {
                let base = f64::from(i % 10);
                let lo = vec![base; 6];
                let hi = vec![base + 3.0; 6];
                Entry::new(Rect::from_corners(&lo, &hi).unwrap(), EntryId(i))
            })
            .collect();
        let tree = STree::build(entries, STreeConfig::new(4, 0.3).unwrap()).unwrap();
        let flat = FlatSTree::from_stree(&tree);
        let p = Point::new(vec![2.5; 6]).unwrap();
        assert_eq!(sorted(flat.query_point(&p)), sorted(tree.query_point(&p)));
        assert_eq!(flat.count_point(&p), tree.count_point(&p));
    }
}
