//! Spatial indexes for the matching problem of content-based pub-sub.
//!
//! The matching problem (paper §3): given a published event — a point `ω` in
//! the `N`-dimensional event space — find every subscription rectangle that
//! contains it (a spatial-database *point query*), and by extension every
//! subscription intersecting a query rectangle (a *region query*).
//!
//! This crate provides:
//!
//! * [`STree`] — the paper's index of choice: an unbalanced R-tree variant
//!   (Aggarwal, Wolf, Yu, Epelman, *Knowledge and Information Systems*
//!   1999) packed in two stages, top-down *binarization* controlled by a
//!   skew factor `p`, then *compression* to fanout `M`;
//! * [`PackedRTree`] — a bottom-up packed R-tree using either a generalized
//!   N-dimensional Hilbert curve ([`CurveKind::Hilbert`], the
//!   Kamel–Faloutsos baseline the paper cites) or a Morton/Z-order curve
//!   ([`CurveKind::Morton`]);
//! * [`CountingIndex`] — the counting matching algorithm the paper cites
//!   (per-dimension segment-tree stabbing + hit counting), which accepts
//!   unbounded predicates without clamping;
//! * [`GryphonIndex`] — a Gryphon-style parallel search tree for
//!   equality/wild-card subscriptions, the predicate class the paper says
//!   Gryphon's algorithms are optimized for (and which cannot express
//!   ranges);
//! * [`FlatSTree`] — a cache-friendly, query-only recompilation of a
//!   built [`STree`] or [`PackedRTree`] into contiguous dimension-major
//!   bound arrays with span-encoded children (the matching hot path);
//! * [`simd`] — explicit SIMD interval-containment kernels (AVX2/SSE2
//!   with runtime dispatch and a portable scalar fallback) over
//!   [`EventBlock`]s, the 8-event structure-of-arrays batches behind
//!   [`FlatSTree::query_point_block`], plus integer-lane variants over
//!   quantized [`QuantBlock`]s;
//! * [`CompactSTree`] — the scale-mode index: `u16`-quantized bounds
//!   with conservative outward rounding, Hilbert-packed and built
//!   streaming from a bounds accessor (no O(N) `f64` intermediate),
//!   reporting boundary-ambiguous hits for the caller's exact
//!   re-check;
//! * [`LinearScan`] — the brute-force correctness oracle;
//! * [`DynamicIndex`] — an extension: a rebuild-on-threshold wrapper that
//!   supports online subscription insertion and removal on top of any
//!   bulk-built index;
//! * [`DeltaOverlay`] / [`Tombstones`] — the churn primitives behind
//!   [`DynamicIndex`], also merged with [`FlatSTree`] by the core broker
//!   to absorb subscribe/unsubscribe between engine recompiles.
//!
//! All indexes implement the [`SpatialIndex`] trait.
//!
//! # Example
//!
//! ```
//! use pubsub_geom::{Point, Rect};
//! use pubsub_stree::{Entry, EntryId, STree, STreeConfig, SpatialIndex};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let entries = vec![
//!     Entry::new(Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0])?, EntryId(0)),
//!     Entry::new(Rect::from_corners(&[3.0, 3.0], &[9.0, 9.0])?, EntryId(1)),
//! ];
//! let tree = STree::build(entries, STreeConfig::default())?;
//! let mut hits = tree.query_point(&Point::new(vec![4.0, 4.0])?);
//! hits.sort();
//! assert_eq!(hits, vec![EntryId(0), EntryId(1)]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod compact;
mod counting;
mod dynamic;
mod entry;
mod error;
mod flat;
mod gryphon;
mod hilbert;
mod index;
mod linear;
mod overlay;
mod packed;
pub mod simd;
mod stree;

pub use compact::{CompactConfig, CompactSTree};
pub use counting::CountingIndex;
pub use dynamic::DynamicIndex;
pub use entry::{Entry, EntryId};
pub use error::{IndexError, InvariantViolation};
pub use flat::FlatSTree;
pub use gryphon::{EqualitySubscription, GryphonIndex};
pub use hilbert::{hilbert_index, morton_index, CurveKind};
pub use index::SpatialIndex;
pub use linear::LinearScan;
pub use overlay::{DeltaOverlay, Tombstones};
pub use packed::{PackedConfig, PackedRTree};
pub use simd::{EventBlock, QuantBlock, SimdLevel, LANES};
pub use stree::{STree, STreeConfig, STreeStats};
