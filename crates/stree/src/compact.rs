//! Compressed, quantized spatial index for the covering layer's
//! representative set.
//!
//! [`FlatSTree`](crate::FlatSTree) stores two `f64`s per dimension per
//! entry — 64 bytes of bounds for a 4-D subscription before ids. At the
//! ROADMAP's millions-of-subscriptions scale that blows the cache and
//! the build materializes an O(N) `Rect` intermediate. [`CompactSTree`]
//! is the scale-mode replacement, built by the core covering layer for
//! the deduplicated *representative* set:
//!
//! * per-dimension **affine quantization** to `u16` cells with
//!   conservative outward rounding — `lo` cells round down, `hi` cells
//!   round up — so the quantized closed-cell test
//!   `qlo <= qx && qx <= qhi` can only over-approximate the exact
//!   half-open `lo < x && x <= hi` (4 bytes of bounds per dimension,
//!   16× smaller than the flat layout);
//! * the same **dimension-major** bound layout and span-encoded
//!   breadth-first node numbering as `FlatSTree`, so the PR 6 block
//!   traversal carries over with the integer-lane kernels
//!   ([`simd::sweep_mask_q`], [`simd::lanes_contain_q`]);
//! * a **streaming build**: bounds are pulled through an accessor
//!   closure, so the builder never needs the caller to materialize an
//!   O(N) `f64` rectangle array — its own transients are one `u64`
//!   Hilbert key plus one `u32` permutation slot per representative;
//! * per-hit **certainty masks**: a hit whose cells sit strictly inside
//!   the quantized bounds is provably exact (DESIGN.md §15); only
//!   *boundary-ambiguous* hits are reported as such, and the caller
//!   (the covering layer, which keeps exact representative bounds)
//!   re-checks those few against `f64`.
//!
//! Queries therefore return a **superset-with-flags** of the exact
//! answer: every true hit is emitted, no certain hit is false, and
//! every possibly-false hit is flagged ambiguous. Property tests in
//! `crates/stree/tests/compact_properties.rs` pin all three claims
//! against [`LinearScan`](crate::LinearScan)-style exact oracles, plus
//! kernel-level bit-identity of the emitted tape.

use crate::hilbert::hilbert_index;
use crate::simd::{self, QuantBlock, SimdLevel, LANES};

/// Build parameters for [`CompactSTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactConfig {
    /// Entries per leaf (bounded by the 64-bit chunk mask sweet spot).
    pub leaf_size: usize,
    /// Children per internal node.
    pub fanout: usize,
}

impl Default for CompactConfig {
    fn default() -> Self {
        CompactConfig {
            leaf_size: 64,
            fanout: 16,
        }
    }
}

/// Number of the top cell: cells live in `[0, MAX_CELL]`.
const MAX_CELL: u16 = u16::MAX;

/// A quantized, Hilbert-packed, query-only spatial index over
/// representative rectangles, identified by dense `u32` ids
/// `0..len()`. See the module docs for layout and semantics.
#[derive(Debug, Clone, Default)]
pub struct CompactSTree {
    dims: usize,
    /// Per-dimension affine quantizer: `cell = (v - mins[d]) *
    /// inv_steps[d]`, floored (coordinates, lower bounds) or ceiled
    /// (upper bounds), saturated to `[0, MAX_CELL]`. `inv_steps[d] ==
    /// 0` marks a degenerate dimension (empty, infinite or zero-width
    /// range): everything lands in cell 0 and every hit is ambiguous.
    mins: Vec<f64>,
    inv_steps: Vec<f64>,
    /// Node bounds, dimension-major: `node_lo[d * node_count + v]`.
    node_lo: Vec<u16>,
    node_hi: Vec<u16>,
    /// Per node: child node span (internal) or entry span (leaf).
    spans: Vec<(u32, u32)>,
    leaf: Vec<bool>,
    /// Entry bounds, dimension-major: `entry_lo[d * entry_count + i]`.
    entry_lo: Vec<u16>,
    entry_hi: Vec<u16>,
    /// Representative id per entry slot.
    ids: Vec<u32>,
}

impl CompactSTree {
    /// Builds the index over `count` representatives of `dims`
    /// dimensions, pulling exact bounds through `bounds(rep, d) ->
    /// (lo, hi)`. The accessor is called a bounded number of times per
    /// representative and nothing `f64`-sized is retained per entry,
    /// which is what lets `compile_engine` stream a 10M-subscription
    /// build without an O(N) rectangle intermediate.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `count` exceeds `u32::MAX`.
    pub fn build(
        dims: usize,
        count: usize,
        bounds: impl Fn(usize, usize) -> (f64, f64),
        config: CompactConfig,
    ) -> Self {
        assert!(dims > 0, "need at least one dimension");
        assert!(count <= u32::MAX as usize, "representative ids are u32");
        let leaf_size = config.leaf_size.clamp(1, 64);
        let fanout = config.fanout.max(2);
        if count == 0 {
            return CompactSTree {
                dims,
                ..CompactSTree::default()
            };
        }

        // Pass 1: per-dimension range scan for the quantizer.
        let mut mins = vec![f64::INFINITY; dims];
        let mut maxs = vec![f64::NEG_INFINITY; dims];
        for i in 0..count {
            for (d, (min, max)) in mins.iter_mut().zip(maxs.iter_mut()).enumerate() {
                let (lo, hi) = bounds(i, d);
                if lo.is_finite() && lo < *min {
                    *min = lo;
                }
                if hi.is_finite() && hi > *max {
                    *max = hi;
                }
            }
        }
        let mut inv_steps = vec![0.0f64; dims];
        for d in 0..dims {
            let span = maxs[d] - mins[d];
            if span.is_finite() && span > 0.0 {
                // Top out at MAX_CELL - 2 so the `q + 2 <= qhi`
                // certainty test never saturates for in-range data.
                inv_steps[d] = f64::from(MAX_CELL - 2) / span;
            } else {
                mins[d] = 0.0; // degenerate: everything in cell 0
            }
        }
        let quant = |d: usize, v: f64, up: bool| -> u16 {
            let t = (v - mins[d]) * inv_steps[d];
            // `as` saturates to [0, MAX_CELL] and maps NaN to 0, which
            // keeps both roundings monotone over the whole f64 line.
            if up {
                t.ceil() as u16
            } else {
                t.floor() as u16
            }
        };

        // Pass 2: Hilbert keys over quantized centers, then the
        // packing permutation. Transients: one (u64 key, u32 id) pair
        // per representative.
        let bits = (64 / dims as u32).min(16);
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(count);
        let mut coords = vec![0u32; dims];
        for i in 0..count {
            let key = if bits >= 1 {
                let shift = 16 - bits;
                for (d, c) in coords.iter_mut().enumerate() {
                    let (lo, hi) = bounds(i, d);
                    *c = u32::from(quant(d, 0.5 * (lo + hi), false) >> shift);
                }
                hilbert_index(&coords, bits) as u64
            } else {
                0 // dims > 64: insertion order
            };
            keyed.push((key, i as u32));
        }
        keyed.sort_unstable();

        // Pass 3: quantized entry arrays in packed order.
        let mut entry_lo = vec![0u16; dims * count];
        let mut entry_hi = vec![0u16; dims * count];
        let mut ids = vec![0u32; count];
        for (slot, &(_, rep)) in keyed.iter().enumerate() {
            ids[slot] = rep;
            for d in 0..dims {
                let (lo, hi) = bounds(rep as usize, d);
                entry_lo[d * count + slot] = quant(d, lo, false);
                entry_hi[d * count + slot] = quant(d, hi, true);
            }
        }
        drop(keyed);

        // Pass 4: complete bottom-up packing — level sizes bottom to
        // top, then breadth-first node numbering top to bottom so every
        // node's children (and every leaf's entries) are a contiguous
        // ascending span, exactly like `FlatSTree`.
        let mut level_sizes = vec![count.div_ceil(leaf_size)];
        while *level_sizes.last().expect("non-empty") > 1 {
            level_sizes.push(level_sizes.last().expect("non-empty").div_ceil(fanout));
        }
        level_sizes.reverse(); // now top-down, root level first
        let node_count: usize = level_sizes.iter().sum();
        let mut spans = vec![(0u32, 0u32); node_count];
        let mut leaf = vec![false; node_count];
        let mut node_lo = vec![0u16; dims * node_count];
        let mut node_hi = vec![0u16; dims * node_count];

        let mut offsets = Vec::with_capacity(level_sizes.len());
        let mut acc = 0usize;
        for &s in &level_sizes {
            offsets.push(acc);
            acc += s;
        }
        for (li, &size) in level_sizes.iter().enumerate().rev() {
            let off = offsets[li];
            let bottom = li + 1 == level_sizes.len();
            for p in 0..size {
                let v = off + p;
                if bottom {
                    let start = p * leaf_size;
                    let len = leaf_size.min(count - start);
                    spans[v] = (start as u32, len as u32);
                    leaf[v] = true;
                    for d in 0..dims {
                        let (mut lo, mut hi) = (MAX_CELL, 0u16);
                        for i in start..start + len {
                            lo = lo.min(entry_lo[d * count + i]);
                            hi = hi.max(entry_hi[d * count + i]);
                        }
                        node_lo[d * node_count + v] = lo;
                        node_hi[d * node_count + v] = hi;
                    }
                } else {
                    let child_off = offsets[li + 1];
                    let child_size = level_sizes[li + 1];
                    let start = p * fanout;
                    let len = fanout.min(child_size - start);
                    spans[v] = ((child_off + start) as u32, len as u32);
                    for d in 0..dims {
                        let (mut lo, mut hi) = (MAX_CELL, 0u16);
                        for c in child_off + start..child_off + start + len {
                            lo = lo.min(node_lo[d * node_count + c]);
                            hi = hi.max(node_hi[d * node_count + c]);
                        }
                        node_lo[d * node_count + v] = lo;
                        node_hi[d * node_count + v] = hi;
                    }
                }
            }
        }

        CompactSTree {
            dims,
            mins,
            inv_steps,
            node_lo,
            node_hi,
            spans,
            leaf,
            entry_lo,
            entry_hi,
            ids,
        }
    }

    /// Number of indexed representatives.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of the indexed rectangles.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of nodes in the packed tree.
    pub fn node_count(&self) -> usize {
        self.spans.len()
    }

    /// Bytes of heap held by the index arrays — the numerator of the
    /// bench's `bytes_per_subscription`.
    pub fn heap_bytes(&self) -> usize {
        self.mins.capacity() * 8
            + self.inv_steps.capacity() * 8
            + (self.node_lo.capacity() + self.node_hi.capacity()) * 2
            + self.spans.capacity() * 8
            + self.leaf.capacity()
            + (self.entry_lo.capacity() + self.entry_hi.capacity()) * 2
            + self.ids.capacity() * 4
    }

    /// Quantizes one coordinate to its cell (round-down, the event and
    /// lower-bound rounding). Monotone non-decreasing over the whole
    /// `f64` line; NaN lands in cell 0 (and can therefore never
    /// produce a certain hit — see the module docs).
    #[inline]
    pub fn cell(&self, d: usize, v: f64) -> u16 {
        ((v - self.mins[d]) * self.inv_steps[d]).floor() as u16
    }

    /// Quantizes a full coordinate vector into `out` (cleared first).
    pub fn quantize_into(&self, coords: &[f64], out: &mut Vec<u16>) {
        debug_assert_eq!(coords.len(), self.dims);
        out.clear();
        out.extend(coords.iter().enumerate().map(|(d, &v)| self.cell(d, v)));
    }

    /// Fills a [`QuantBlock`] from up to [`LANES`] event coordinate
    /// slices, quantizing through this index's per-dimension scale.
    pub fn fill_block(&self, events: &[&[f64]], block: &mut QuantBlock) {
        debug_assert!(events.iter().all(|e| e.len() == self.dims));
        block.fill_with(self.dims, events.len(), |lane, d| {
            self.cell(d, events[lane][d])
        });
    }

    /// Fills a [`QuantBlock`] from dimension-major columns: lane `l`
    /// quantizes `cols[d][start + l]` along dimension `d`. Bit-identical
    /// to [`CompactSTree::fill_block`] over the same events — `cell` is
    /// applied to the same `f64`s in the same order, only the memory
    /// walk changes (contiguous column reads instead of a per-lane
    /// gather).
    pub fn fill_block_cols(&self, cols: &[&[f64]], start: usize, k: usize, block: &mut QuantBlock) {
        debug_assert_eq!(cols.len(), self.dims);
        block.fill_with(self.dims, k, |lane, d| self.cell(d, cols[d][start + lane]));
    }

    /// Point query with caller-provided scratch: `emit(rep, ambiguous)`
    /// is called once per hit representative; `ambiguous` is `true`
    /// when the hit needs the caller's exact `f64` re-check. Hits are
    /// a superset of the exact answer and non-ambiguous hits are
    /// guaranteed exact.
    pub fn query_point_with(
        &self,
        qpoint: &[u16],
        stack: &mut Vec<u32>,
        emit: impl FnMut(u32, bool),
    ) {
        self.query_point_at(simd::active_level(), qpoint, stack, emit);
    }

    /// Explicit-kernel-level variant of
    /// [`CompactSTree::query_point_with`], for the bit-identity tests.
    pub fn query_point_at(
        &self,
        level: SimdLevel,
        qpoint: &[u16],
        stack: &mut Vec<u32>,
        mut emit: impl FnMut(u32, bool),
    ) {
        if self.spans.is_empty() {
            return;
        }
        debug_assert_eq!(qpoint.len(), self.dims);
        let n = self.node_count();
        let en = self.ids.len();
        stack.clear();
        let mut root_in = true;
        for (d, &q) in qpoint.iter().enumerate() {
            root_in &= self.node_lo[d * n] <= q && q <= self.node_hi[d * n];
        }
        if root_in {
            stack.push(0);
        }
        while let Some(v) = stack.pop() {
            let (start, len) = self.spans[v as usize];
            let (start, len) = (start as usize, len as usize);
            let is_leaf = self.leaf[v as usize];
            let (lo, hi, stride) = if is_leaf {
                (&self.entry_lo, &self.entry_hi, en)
            } else {
                (&self.node_lo, &self.node_hi, n)
            };
            let mut k = 0usize;
            while k < len {
                let chunk = (len - k).min(64);
                let base = start + k;
                let mut hit: u64 = if chunk == 64 { !0 } else { (1u64 << chunk) - 1 };
                let mut certain = hit;
                for (d, &q) in qpoint.iter().enumerate() {
                    let row = d * stride + base;
                    let (h, c) = simd::sweep_mask_q(level, &lo[row..], &hi[row..], chunk, q);
                    hit &= h;
                    certain &= c;
                    if hit == 0 {
                        break;
                    }
                }
                while hit != 0 {
                    let j = hit.trailing_zeros() as usize;
                    hit &= hit - 1;
                    if is_leaf {
                        emit(self.ids[base + j], (certain >> j) & 1 == 0);
                    } else {
                        stack.push((base + j) as u32);
                    }
                }
                k += chunk;
            }
        }
    }

    /// Block point query: up to [`LANES`] quantized events in one
    /// joint lane-masked traversal, the integer-kernel analogue of
    /// [`FlatSTree::query_point_block`](crate::FlatSTree::query_point_block).
    /// `emit(rep, hit_lanes, ambiguous_lanes)` is called per matched
    /// representative; `ambiguous_lanes ⊆ hit_lanes` flags the lanes
    /// whose hit needs the exact re-check. The emitted tape is
    /// identical at every kernel level (the integer kernels are exact).
    pub fn query_point_block(
        &self,
        block: &QuantBlock,
        stack: &mut Vec<u64>,
        emit: impl FnMut(u32, u8, u8),
    ) {
        self.query_point_block_at(simd::active_level(), block, stack, emit);
    }

    /// Explicit-kernel-level variant of
    /// [`CompactSTree::query_point_block`].
    pub fn query_point_block_at(
        &self,
        level: SimdLevel,
        block: &QuantBlock,
        stack: &mut Vec<u64>,
        mut emit: impl FnMut(u32, u8, u8),
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            match level {
                // SAFETY: dispatch only selects Avx2/Sse2 when the CPU
                // reports the feature.
                SimdLevel::Avx2 => {
                    return unsafe { self.block_query_avx2(block, stack, &mut emit) }
                }
                SimdLevel::Sse2 => {
                    return unsafe { self.block_query_sse2(block, stack, &mut emit) }
                }
                SimdLevel::Scalar => {}
            }
        }
        let _ = level;
        self.block_query_impl(SimdLevel::Scalar, block, stack, &mut emit);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn block_query_avx2(
        &self,
        block: &QuantBlock,
        stack: &mut Vec<u64>,
        emit: &mut impl FnMut(u32, u8, u8),
    ) {
        self.block_query_impl(SimdLevel::Avx2, block, stack, emit);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn block_query_sse2(
        &self,
        block: &QuantBlock,
        stack: &mut Vec<u64>,
        emit: &mut impl FnMut(u32, u8, u8),
    ) {
        self.block_query_impl(SimdLevel::Sse2, block, stack, emit);
    }

    /// The joint lane-masked traversal, structured exactly like
    /// `FlatSTree::block_query_impl`: stack elements pack
    /// `(node << 8) | lane_mask`, spans sweep in ≤64 chunks per live
    /// lane, and a node down to one live lane skips the per-lane
    /// bookkeeping.
    #[inline(always)]
    fn block_query_impl(
        &self,
        level: SimdLevel,
        block: &QuantBlock,
        stack: &mut Vec<u64>,
        emit: &mut impl FnMut(u32, u8, u8),
    ) {
        if self.spans.is_empty() {
            return;
        }
        debug_assert_eq!(block.dims(), self.dims);
        let n = self.node_count();
        let en = self.ids.len();
        stack.clear();
        let root = simd::lanes_contain_q(
            level,
            &self.node_lo,
            &self.node_hi,
            n,
            0,
            block,
            block.full_mask(),
        );
        if root != 0 {
            stack.push(u64::from(root));
        }
        while let Some(top) = stack.pop() {
            let v = (top >> 8) as usize;
            let active = top as u8;
            let (start, len) = self.spans[v];
            let (start, len) = (start as usize, len as usize);
            let is_leaf = self.leaf[v];
            let (lo, hi, stride) = if is_leaf {
                (&self.entry_lo, &self.entry_hi, en)
            } else {
                (&self.node_lo, &self.node_hi, n)
            };
            if active & (active - 1) == 0 {
                // Single live lane: replay that lane's scalar walk.
                let l = active.trailing_zeros() as usize;
                let qpoint = block.point(l);
                let mut k = 0usize;
                while k < len {
                    let chunk = (len - k).min(64);
                    let base = start + k;
                    let mut hit: u64 = if chunk == 64 { !0 } else { (1u64 << chunk) - 1 };
                    let mut certain = hit;
                    for (d, &q) in qpoint.iter().enumerate() {
                        let row = d * stride + base;
                        let (h, c) = simd::sweep_mask_q(level, &lo[row..], &hi[row..], chunk, q);
                        hit &= h;
                        certain &= c;
                        if hit == 0 {
                            break;
                        }
                    }
                    while hit != 0 {
                        let j = hit.trailing_zeros() as usize;
                        hit &= hit - 1;
                        if is_leaf {
                            let amb = if (certain >> j) & 1 == 0 { active } else { 0 };
                            emit(self.ids[base + j], active, amb);
                        } else {
                            stack.push((((base + j) as u64) << 8) | u64::from(active));
                        }
                    }
                    k += chunk;
                }
                continue;
            }
            let mut k = 0usize;
            while k < len {
                let chunk = (len - k).min(64);
                let base = start + k;
                let full: u64 = if chunk == 64 { !0 } else { (1u64 << chunk) - 1 };
                let mut hits = [0u64; LANES];
                let mut certains = [0u64; LANES];
                let mut rest = active;
                while rest != 0 {
                    let l = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let qpoint = block.point(l);
                    let mut hit = full;
                    let mut certain = full;
                    for (d, &q) in qpoint.iter().enumerate() {
                        let row = d * stride + base;
                        let (h, c) = simd::sweep_mask_q(level, &lo[row..], &hi[row..], chunk, q);
                        hit &= h;
                        certain &= c;
                        if hit == 0 {
                            break;
                        }
                    }
                    hits[l] = hit;
                    certains[l] = certain;
                }
                let mut union = 0u64;
                for h in &hits {
                    union |= h;
                }
                while union != 0 {
                    let j = union.trailing_zeros() as usize;
                    union &= union - 1;
                    let mut lanes = 0u8;
                    let mut amb = 0u8;
                    let mut rest = active;
                    while rest != 0 {
                        let l = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        let h = ((hits[l] >> j) & 1) as u8;
                        lanes |= h << l;
                        amb |= (h & !((certains[l] >> j) as u8) & 1) << l;
                    }
                    if is_leaf {
                        emit(self.ids[base + j], lanes, amb);
                    } else {
                        stack.push((((base + j) as u64) << 8) | u64::from(lanes));
                    }
                }
                k += chunk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact oracle: half-open containment against the source bounds.
    fn exact_hits(rects: &[(Vec<f64>, Vec<f64>)], p: &[f64]) -> Vec<u32> {
        let mut out: Vec<u32> = rects
            .iter()
            .enumerate()
            .filter(|(_, (lo, hi))| p.iter().enumerate().all(|(d, &x)| lo[d] < x && x <= hi[d]))
            .map(|(i, _)| i as u32)
            .collect();
        out.sort_unstable();
        out
    }

    fn demo_rects(n: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
        (0..n)
            .map(|i| {
                let a = (i % 37) as f64 * 0.7 - 5.0;
                let b = (i % 23) as f64 * 1.3 - 9.0;
                (vec![a, b], vec![a + 1.0 + (i % 5) as f64, b + 2.0])
            })
            .collect()
    }

    /// Resolves a compact query to the exact hit set by re-checking
    /// ambiguous hits, the way the covering layer does.
    fn resolved(tree: &CompactSTree, rects: &[(Vec<f64>, Vec<f64>)], p: &[f64]) -> Vec<u32> {
        let mut q = Vec::new();
        tree.quantize_into(p, &mut q);
        let mut stack = Vec::new();
        let mut out = Vec::new();
        tree.query_point_with(&q, &mut stack, |rep, amb| {
            let (lo, hi) = &rects[rep as usize];
            if !amb || p.iter().enumerate().all(|(d, &x)| lo[d] < x && x <= hi[d]) {
                out.push(rep);
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_and_tiny_trees() {
        let t = CompactSTree::build(3, 0, |_, _| unreachable!(), CompactConfig::default());
        assert!(t.is_empty());
        let mut stack = Vec::new();
        t.query_point_with(&[0, 0, 0], &mut stack, |_, _| panic!("no hits"));

        let rects = demo_rects(1);
        let t = CompactSTree::build(
            2,
            1,
            |i, d| (rects[i].0[d], rects[i].1[d]),
            CompactConfig::default(),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.node_count(), 1);
        let inside = vec![rects[0].0[0] + 0.5, rects[0].0[1] + 0.5];
        assert_eq!(resolved(&t, &rects, &inside), vec![0]);
    }

    #[test]
    fn resolved_hits_match_exact_oracle() {
        let rects = demo_rects(500);
        let t = CompactSTree::build(
            2,
            rects.len(),
            |i, d| (rects[i].0[d], rects[i].1[d]),
            CompactConfig {
                leaf_size: 8,
                fanout: 4,
            },
        );
        for i in 0..200 {
            let p = vec![(i % 41) as f64 * 0.63 - 6.0, (i % 29) as f64 * 0.91 - 10.0];
            assert_eq!(resolved(&t, &rects, &p), exact_hits(&rects, &p), "p={p:?}");
        }
    }

    #[test]
    fn certain_hits_are_never_false() {
        let rects = demo_rects(300);
        let t = CompactSTree::build(
            2,
            rects.len(),
            |i, d| (rects[i].0[d], rects[i].1[d]),
            CompactConfig::default(),
        );
        let mut q = Vec::new();
        let mut stack = Vec::new();
        for i in 0..150 {
            let p = vec![(i % 31) as f64 * 0.83 - 6.0, (i % 19) as f64 * 1.17 - 10.0];
            t.quantize_into(&p, &mut q);
            t.query_point_with(&q, &mut stack, |rep, amb| {
                if !amb {
                    let (lo, hi) = &rects[rep as usize];
                    assert!(
                        p.iter().enumerate().all(|(d, &x)| lo[d] < x && x <= hi[d]),
                        "certain hit rep={rep} p={p:?} is false"
                    );
                }
            });
        }
    }

    #[test]
    fn nan_and_out_of_range_points_resolve_to_empty_or_exact() {
        let rects = demo_rects(100);
        let t = CompactSTree::build(
            2,
            rects.len(),
            |i, d| (rects[i].0[d], rects[i].1[d]),
            CompactConfig::default(),
        );
        for p in [
            vec![f64::NAN, 0.0],
            vec![0.0, f64::NAN],
            vec![f64::INFINITY, 0.0],
            vec![f64::NEG_INFINITY, -3.0],
            vec![1e300, -1e300],
        ] {
            assert_eq!(resolved(&t, &rects, &p), exact_hits(&rects, &p), "p={p:?}");
        }
    }

    #[test]
    fn block_tape_matches_scalar_walk_per_lane() {
        let rects = demo_rects(400);
        let t = CompactSTree::build(
            2,
            rects.len(),
            |i, d| (rects[i].0[d], rects[i].1[d]),
            CompactConfig {
                leaf_size: 16,
                fanout: 4,
            },
        );
        let points: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                vec![
                    (i * 7 % 41) as f64 * 0.63 - 6.0,
                    (i * 5 % 29) as f64 * 0.91 - 10.0,
                ]
            })
            .collect();
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let mut block = QuantBlock::new();
        t.fill_block(&refs, &mut block);
        let mut bstack = Vec::new();
        let mut per_lane: Vec<Vec<(u32, bool)>> = vec![Vec::new(); 8];
        t.query_point_block(&block, &mut bstack, |rep, lanes, amb| {
            for (l, hits) in per_lane.iter_mut().enumerate() {
                if lanes >> l & 1 == 1 {
                    hits.push((rep, amb >> l & 1 == 1));
                }
            }
        });
        let mut q = Vec::new();
        let mut stack = Vec::new();
        for (l, p) in points.iter().enumerate() {
            let mut scalar = Vec::new();
            t.quantize_into(p, &mut q);
            t.query_point_with(&q, &mut stack, |rep, amb| scalar.push((rep, amb)));
            let mut a = per_lane[l].clone();
            a.sort_unstable();
            scalar.sort_unstable();
            assert_eq!(a, scalar, "lane {l}");
        }
    }

    #[test]
    fn heap_bytes_is_small_per_entry() {
        let rects = demo_rects(4096);
        let t = CompactSTree::build(
            2,
            rects.len(),
            |i, d| (rects[i].0[d], rects[i].1[d]),
            CompactConfig::default(),
        );
        // 2 dims × 2 bounds × 2 bytes + 4 id bytes = 12 bytes/entry,
        // plus node overhead — far under the flat layout's ~40.
        assert!(
            t.heap_bytes() < rects.len() * 20,
            "heap_bytes = {} for {} entries",
            t.heap_bytes(),
            rects.len()
        );
    }
}
