//! Explicit SIMD interval-containment kernels over structure-of-arrays
//! **event blocks**.
//!
//! [`FlatSTree`](crate::FlatSTree)'s dimension-major bound arrays were
//! laid out for vectorization, but the scalar scan tests one event
//! against one bound pair at a time. This module adds the two kernel
//! orientations the block-mode queries are built from:
//!
//! * the **lane kernel** ([`lanes_contain`]) — one bound pair (a tree
//!   node's or an entry's interval along one dimension) tested against
//!   all [`LANES`] event coordinates of an [`EventBlock`] at once; this
//!   is what lets a whole block of events share a single tree
//!   traversal, and
//! * the **sweep kernel** ([`sweep_mask`]) — one event coordinate
//!   broadcast against a contiguous run of up to 64 bound pairs from a
//!   dimension-major array, producing the same survivor bitmask the
//!   scalar branchless sweep builds, four (AVX2) or two (SSE2) bounds
//!   per instruction.
//!
//! Both kernels exist in three implementations — AVX2, SSE2 and a
//! portable scalar fallback — selected once per process by
//! [`active_level`]: runtime `is_x86_feature_detected!` dispatch on
//! x86-64 (the toolchain is stable, so `std::simd` is unavailable and
//! the kernels use `core::arch::x86_64` intrinsics directly), the
//! scalar fallback everywhere else. Setting `PUBSUB_NO_SIMD=1` in the
//! environment forces the scalar fallback, which CI uses to keep that
//! path exercised.
//!
//! # Semantics
//!
//! Containment is the half-open `lo < x && x <= hi` of
//! [`pubsub_geom::Interval::contains`]. All comparisons are *ordered*
//! (quiet on NaN): a NaN coordinate or bound makes the comparison
//! false, exactly as the scalar operators do, so every implementation
//! is bit-identical on NaN, ±∞ and boundary coordinates — property
//! tests in `crates/stree/tests/simd_properties.rs` pin this across
//! every level the host supports.

use std::sync::atomic::{AtomicU8, Ordering};

/// Number of events per [`EventBlock`]: 8 × `f64` lanes (two AVX2
/// registers, four SSE2 registers).
pub const LANES: usize = 8;

/// Which kernel implementation is in use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdLevel {
    /// Portable scalar fallback (also forced by `PUBSUB_NO_SIMD=1`).
    Scalar,
    /// 128-bit SSE2 kernels (baseline on x86-64).
    Sse2,
    /// 256-bit AVX2 kernels.
    Avx2,
}

impl SimdLevel {
    /// Short stable name for logs and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Cached dispatch decision: 0 = undetected, 1 = scalar, 2 = sse2,
/// 3 = avx2.
static LEVEL: AtomicU8 = AtomicU8::new(0);

fn encode(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Scalar => 1,
        SimdLevel::Sse2 => 2,
        SimdLevel::Avx2 => 3,
    }
}

fn decode(raw: u8) -> Option<SimdLevel> {
    match raw {
        1 => Some(SimdLevel::Scalar),
        2 => Some(SimdLevel::Sse2),
        3 => Some(SimdLevel::Avx2),
        _ => None,
    }
}

/// Detects the best level the host supports, honoring the
/// `PUBSUB_NO_SIMD` kill switch (any non-empty value other than `0`
/// forces scalar).
fn detect() -> SimdLevel {
    if std::env::var("PUBSUB_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0") {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return SimdLevel::Sse2;
        }
    }
    SimdLevel::Scalar
}

/// The kernel level every block query dispatches to, decided once per
/// process (first call wins) from CPU feature detection and the
/// `PUBSUB_NO_SIMD` environment kill switch.
pub fn active_level() -> SimdLevel {
    if let Some(level) = decode(LEVEL.load(Ordering::Relaxed)) {
        return level;
    }
    let detected = detect();
    // Racing first calls agree (detection is deterministic), so a plain
    // store is fine.
    LEVEL.store(encode(detected), Ordering::Relaxed);
    detected
}

/// Test hook: forces the dispatch level for the whole process (`None`
/// reverts to detection on the next [`active_level`] call). The
/// bit-identity property tests use this to run the same queries under
/// every implementation the host supports.
#[doc(hidden)]
pub fn force_level(level: Option<SimdLevel>) {
    LEVEL.store(level.map_or(0, encode), Ordering::Relaxed);
}

/// A block of up to [`LANES`] events transposed into dimension-major
/// structure-of-arrays form: `coords[d * LANES + lane]` is event
/// `lane`'s coordinate along dimension `d`. Unused lanes (when fewer
/// than [`LANES`] events remain) are padded with the first active
/// lane's coordinates and masked out of [`EventBlock::full_mask`], so
/// the kernels never read uninitialized or stale values.
#[derive(Debug, Default, Clone)]
pub struct EventBlock {
    /// Dimension-major: `coords[d * LANES + lane]`.
    coords: Vec<f64>,
    /// Lane-major mirror: `points[lane * dims + d]` — the contiguous
    /// per-event view [`EventBlock::point`] hands to the sweep kernels.
    points: Vec<f64>,
    dims: usize,
    lanes: usize,
}

impl EventBlock {
    /// Creates an empty block; [`EventBlock::fill`] sizes it.
    pub fn new() -> Self {
        EventBlock::default()
    }

    /// Fills the block from per-event coordinate slices (at most
    /// [`LANES`] of them, all of the same dimensionality), transposing
    /// into the dimension-major layout. The block's buffer is reused
    /// across fills — no allocation once warm.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty, holds more than [`LANES`] slices,
    /// or the slices disagree on dimensionality.
    pub fn fill<S: AsRef<[f64]>>(&mut self, events: &[S]) {
        assert!(!events.is_empty() && events.len() <= LANES);
        let dims = events[0].as_ref().len();
        self.dims = dims;
        self.lanes = events.len();
        self.coords.clear();
        self.coords.resize(dims * LANES, 0.0);
        self.points.clear();
        self.points.resize(dims * LANES, 0.0);
        for (lane, event) in events.iter().enumerate() {
            let event = event.as_ref();
            assert_eq!(event.len(), dims, "event lanes must agree on dims");
            for (d, &x) in event.iter().enumerate() {
                self.coords[d * LANES + lane] = x;
                self.points[lane * dims + d] = x;
            }
        }
        // Pad idle lanes with lane 0 so vector loads read defined,
        // harmless values (their results are masked off).
        for lane in self.lanes..LANES {
            for d in 0..dims {
                self.coords[d * LANES + lane] = self.coords[d * LANES];
                self.points[lane * dims + d] = self.points[d];
            }
        }
    }

    /// Fills the block from dimension-major columns: lane `l` takes
    /// coordinate `cols[d][start + l]` along dimension `d`. Because the
    /// columns already match the block's dimension-major layout, each
    /// dimension is a straight contiguous copy — no per-lane transpose,
    /// which is the point of assembling structure-of-arrays batches at
    /// ingest. Produces exactly the block [`EventBlock::fill`] would for
    /// the same events.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is empty, `k` is 0 or exceeds [`LANES`], or a
    /// column is shorter than `start + k`.
    pub fn fill_cols(&mut self, cols: &[&[f64]], start: usize, k: usize) {
        assert!(!cols.is_empty() && k > 0 && k <= LANES);
        let dims = cols.len();
        self.dims = dims;
        self.lanes = k;
        self.coords.clear();
        self.coords.resize(dims * LANES, 0.0);
        self.points.clear();
        self.points.resize(dims * LANES, 0.0);
        for (d, col) in cols.iter().enumerate() {
            let src = &col[start..start + k];
            self.coords[d * LANES..d * LANES + k].copy_from_slice(src);
            for (lane, &x) in src.iter().enumerate() {
                self.points[lane * dims + d] = x;
            }
        }
        for lane in k..LANES {
            for d in 0..dims {
                self.coords[d * LANES + lane] = self.coords[d * LANES];
                self.points[lane * dims + d] = self.points[d];
            }
        }
    }

    /// Number of active lanes (events) in the block.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Dimensionality of the block's events.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bitmask of the active lanes: bit `l` set ⇔ lane `l` holds a real
    /// event.
    pub fn full_mask(&self) -> u8 {
        if self.lanes == LANES {
            u8::MAX
        } else {
            (1u8 << self.lanes) - 1
        }
    }

    /// The [`LANES`] coordinates of dimension `d` (padded lanes
    /// included).
    #[inline]
    pub fn dim(&self, d: usize) -> &[f64] {
        &self.coords[d * LANES..(d + 1) * LANES]
    }

    /// One lane's coordinate along dimension `d`.
    #[inline]
    pub fn coord(&self, d: usize, lane: usize) -> f64 {
        self.coords[d * LANES + lane]
    }

    /// One lane's full coordinate vector, contiguous (padded lanes
    /// mirror lane 0). This is the per-lane view the block traversal
    /// feeds to [`sweep_mask`], one dimension at a time.
    #[inline]
    pub fn point(&self, lane: usize) -> &[f64] {
        &self.points[lane * self.dims..(lane + 1) * self.dims]
    }
}

// ---------------------------------------------------------------------
// Lane kernel: one bound pair vs all lanes of a block.
// ---------------------------------------------------------------------

/// Tests one bound pair per dimension — `lo[d * stride + v]`,
/// `hi[d * stride + v]` — against every lane of `block` and returns the
/// surviving subset of `mask` (bit `l` set ⇔ lane `l`'s point is
/// contained in the box of element `v`). Dimensions short-circuit once
/// the mask empties.
#[inline(always)]
pub fn lanes_contain(
    level: SimdLevel,
    lo: &[f64],
    hi: &[f64],
    stride: usize,
    v: usize,
    block: &EventBlock,
    mut mask: u8,
) -> u8 {
    for d in 0..block.dims() {
        if mask == 0 {
            return 0;
        }
        let i = d * stride + v;
        mask &= lanes_in_interval(level, lo[i], hi[i], block.dim(d));
    }
    mask
}

/// One dimension of the lane kernel: which of the [`LANES`] coordinates
/// `x` satisfy `lo < x && x <= hi`.
#[inline(always)]
fn lanes_in_interval(level: SimdLevel, lo: f64, hi: f64, xs: &[f64]) -> u8 {
    debug_assert_eq!(xs.len(), LANES);
    #[cfg(target_arch = "x86_64")]
    {
        match level {
            // SAFETY: dispatch only selects Avx2/Sse2 when the CPU
            // reports the feature.
            SimdLevel::Avx2 => return unsafe { lanes_in_interval_avx2(lo, hi, xs) },
            SimdLevel::Sse2 => return unsafe { lanes_in_interval_sse2(lo, hi, xs) },
            SimdLevel::Scalar => {}
        }
    }
    let _ = level;
    lanes_in_interval_scalar(lo, hi, xs)
}

#[inline]
fn lanes_in_interval_scalar(lo: f64, hi: f64, xs: &[f64]) -> u8 {
    let mut m = 0u8;
    for (l, &x) in xs.iter().enumerate() {
        m |= u8::from((lo < x) & (x <= hi)) << l;
    }
    m
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lanes_in_interval_avx2(lo: f64, hi: f64, xs: &[f64]) -> u8 {
    use core::arch::x86_64::*;
    // SAFETY: xs has LANES = 8 elements; two unaligned 4-lane loads.
    unsafe {
        let vlo = _mm256_set1_pd(lo);
        let vhi = _mm256_set1_pd(hi);
        let a = _mm256_loadu_pd(xs.as_ptr());
        let b = _mm256_loadu_pd(xs.as_ptr().add(4));
        // Ordered-quiet compares: false on NaN, like the scalar `<`/`<=`.
        let in_a = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_LT_OQ>(vlo, a),
            _mm256_cmp_pd::<_CMP_LE_OQ>(a, vhi),
        );
        let in_b = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_LT_OQ>(vlo, b),
            _mm256_cmp_pd::<_CMP_LE_OQ>(b, vhi),
        );
        (_mm256_movemask_pd(in_a) as u8) | ((_mm256_movemask_pd(in_b) as u8) << 4)
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn lanes_in_interval_sse2(lo: f64, hi: f64, xs: &[f64]) -> u8 {
    use core::arch::x86_64::*;
    // SAFETY: xs has LANES = 8 elements; four unaligned 2-lane loads.
    unsafe {
        let vlo = _mm_set1_pd(lo);
        let vhi = _mm_set1_pd(hi);
        let mut m = 0u8;
        for half in 0..4 {
            let x = _mm_loadu_pd(xs.as_ptr().add(2 * half));
            let hit = _mm_and_pd(_mm_cmplt_pd(vlo, x), _mm_cmple_pd(x, vhi));
            m |= (_mm_movemask_pd(hit) as u8) << (2 * half);
        }
        m
    }
}

// ---------------------------------------------------------------------
// Sweep kernel: one coordinate vs a run of bounds.
// ---------------------------------------------------------------------

/// Tests `x` against the bound pairs `lo[..chunk]` / `hi[..chunk]`
/// (`chunk <= 64`) and returns the survivor bitmask: bit `j` set ⇔
/// `lo[j] < x && x <= hi[j]`. This is the vector form of the scalar
/// branchless sweep in `FlatSTree`'s span scan.
#[inline(always)]
pub fn sweep_mask(level: SimdLevel, lo: &[f64], hi: &[f64], chunk: usize, x: f64) -> u64 {
    debug_assert!(chunk <= 64 && lo.len() >= chunk && hi.len() >= chunk);
    #[cfg(target_arch = "x86_64")]
    {
        match level {
            // SAFETY: dispatch only selects Avx2/Sse2 when the CPU
            // reports the feature.
            SimdLevel::Avx2 => return unsafe { sweep_mask_avx2(lo, hi, chunk, x) },
            SimdLevel::Sse2 => return unsafe { sweep_mask_sse2(lo, hi, chunk, x) },
            SimdLevel::Scalar => {}
        }
    }
    let _ = level;
    sweep_mask_scalar(lo, hi, chunk, x)
}

#[inline]
fn sweep_mask_scalar(lo: &[f64], hi: &[f64], chunk: usize, x: f64) -> u64 {
    let mut m = 0u64;
    for j in 0..chunk {
        m |= u64::from((lo[j] < x) & (x <= hi[j])) << j;
    }
    m
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_mask_avx2(lo: &[f64], hi: &[f64], chunk: usize, x: f64) -> u64 {
    use core::arch::x86_64::*;
    // SAFETY: every load reads 4 elements at offset j with j + 4 <=
    // chunk <= lo.len(), hi.len().
    unsafe {
        let vx = _mm256_set1_pd(x);
        let mut m = 0u64;
        let mut j = 0usize;
        while j + 4 <= chunk {
            let vlo = _mm256_loadu_pd(lo.as_ptr().add(j));
            let vhi = _mm256_loadu_pd(hi.as_ptr().add(j));
            let hit = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LT_OQ>(vlo, vx),
                _mm256_cmp_pd::<_CMP_LE_OQ>(vx, vhi),
            );
            m |= (_mm256_movemask_pd(hit) as u64) << j;
            j += 4;
        }
        while j < chunk {
            m |= u64::from((lo[j] < x) & (x <= hi[j])) << j;
            j += 1;
        }
        m
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sweep_mask_sse2(lo: &[f64], hi: &[f64], chunk: usize, x: f64) -> u64 {
    use core::arch::x86_64::*;
    // SAFETY: every load reads 2 elements at offset j with j + 2 <=
    // chunk <= lo.len(), hi.len().
    unsafe {
        let vx = _mm_set1_pd(x);
        let mut m = 0u64;
        let mut j = 0usize;
        while j + 2 <= chunk {
            let vlo = _mm_loadu_pd(lo.as_ptr().add(j));
            let vhi = _mm_loadu_pd(hi.as_ptr().add(j));
            let hit = _mm_and_pd(_mm_cmplt_pd(vlo, vx), _mm_cmple_pd(vx, vhi));
            m |= (_mm_movemask_pd(hit) as u64) << j;
            j += 2;
        }
        if j < chunk {
            m |= u64::from((lo[j] < x) & (x <= hi[j])) << j;
        }
        m
    }
}

// ---------------------------------------------------------------------
// Quantized (u16) kernels for the compressed representative index.
// ---------------------------------------------------------------------

/// A block of up to [`LANES`] events quantized to `u16` cells, in the
/// same dimension-major structure-of-arrays layout as [`EventBlock`].
/// Built by `CompactSTree::fill_block`, which owns the per-dimension
/// affine quantizer; the kernels here only see cells.
#[derive(Debug, Default, Clone)]
pub struct QuantBlock {
    /// Dimension-major: `coords[d * LANES + lane]`.
    coords: Vec<u16>,
    /// Lane-major mirror: `points[lane * dims + d]`.
    points: Vec<u16>,
    dims: usize,
    lanes: usize,
}

impl QuantBlock {
    /// Creates an empty block; [`QuantBlock::fill_with`] sizes it.
    pub fn new() -> Self {
        QuantBlock::default()
    }

    /// Fills the block with `lanes` quantized events of `dims`
    /// dimensions, reading cell `quantize(lane, d)` for each slot. Idle
    /// lanes are padded with lane 0 so vector loads read defined values
    /// (their results are masked off by the caller).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`LANES`].
    pub fn fill_with(
        &mut self,
        dims: usize,
        lanes: usize,
        mut quantize: impl FnMut(usize, usize) -> u16,
    ) {
        assert!(lanes > 0 && lanes <= LANES);
        self.dims = dims;
        self.lanes = lanes;
        self.coords.clear();
        self.coords.resize(dims * LANES, 0);
        self.points.clear();
        self.points.resize(dims * LANES, 0);
        for lane in 0..lanes {
            for d in 0..dims {
                let q = quantize(lane, d);
                self.coords[d * LANES + lane] = q;
                self.points[lane * dims + d] = q;
            }
        }
        for lane in lanes..LANES {
            for d in 0..dims {
                self.coords[d * LANES + lane] = self.coords[d * LANES];
                self.points[lane * dims + d] = self.points[d];
            }
        }
    }

    /// Number of active lanes (events) in the block.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Dimensionality of the block's events.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bitmask of the active lanes.
    pub fn full_mask(&self) -> u8 {
        if self.lanes == LANES {
            u8::MAX
        } else {
            (1u8 << self.lanes) - 1
        }
    }

    /// The [`LANES`] cells of dimension `d` (padded lanes included).
    #[inline]
    pub fn dim(&self, d: usize) -> &[u16] {
        &self.coords[d * LANES..(d + 1) * LANES]
    }

    /// One lane's full quantized coordinate vector, contiguous.
    #[inline]
    pub fn point(&self, lane: usize) -> &[u16] {
        &self.points[lane * self.dims..(lane + 1) * self.dims]
    }
}

/// Quantized lane kernel: tests one quantized bound pair per dimension
/// — `lo[d * stride + v]`, `hi[d * stride + v]` — against every lane of
/// `block` and returns the surviving subset of `mask` under the
/// conservative closed-cell test `lo <= q && q <= hi`. Used for tree
/// *nodes*, where a superset mask only costs descent, never
/// correctness.
#[inline(always)]
pub fn lanes_contain_q(
    level: SimdLevel,
    lo: &[u16],
    hi: &[u16],
    stride: usize,
    v: usize,
    block: &QuantBlock,
    mut mask: u8,
) -> u8 {
    for d in 0..block.dims() {
        if mask == 0 {
            return 0;
        }
        let i = d * stride + v;
        mask &= lanes_in_interval_q(level, lo[i], hi[i], block.dim(d));
    }
    mask
}

/// One dimension of the quantized lane kernel: which of the [`LANES`]
/// cells `q` satisfy `lo <= q && q <= hi` (unsigned).
#[inline(always)]
fn lanes_in_interval_q(level: SimdLevel, lo: u16, hi: u16, qs: &[u16]) -> u8 {
    debug_assert_eq!(qs.len(), LANES);
    #[cfg(target_arch = "x86_64")]
    {
        match level {
            // SAFETY: dispatch only selects Avx2/Sse2 when the CPU
            // reports the feature (AVX2 implies SSE2; 8 u16 lanes fit
            // one 128-bit register, so both use the SSE2 body).
            SimdLevel::Avx2 | SimdLevel::Sse2 => {
                return unsafe { lanes_in_interval_q_sse2(lo, hi, qs) }
            }
            SimdLevel::Scalar => {}
        }
    }
    let _ = level;
    lanes_in_interval_q_scalar(lo, hi, qs)
}

#[inline]
fn lanes_in_interval_q_scalar(lo: u16, hi: u16, qs: &[u16]) -> u8 {
    let mut m = 0u8;
    for (l, &q) in qs.iter().enumerate() {
        m |= u8::from((lo <= q) & (q <= hi)) << l;
    }
    m
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn lanes_in_interval_q_sse2(lo: u16, hi: u16, qs: &[u16]) -> u8 {
    use core::arch::x86_64::*;
    // SAFETY: qs has LANES = 8 u16 elements — one unaligned 128-bit
    // load. Unsigned compares via the 0x8000 sign-bias trick:
    // a <=u b  ⇔  (a ^ 0x8000) <=s (b ^ 0x8000).
    unsafe {
        let bias = _mm_set1_epi16(i16::MIN);
        let q = _mm_xor_si128(_mm_loadu_si128(qs.as_ptr().cast()), bias);
        let vlo = _mm_xor_si128(_mm_set1_epi16(lo as i16), bias);
        let vhi = _mm_xor_si128(_mm_set1_epi16(hi as i16), bias);
        // lo <= q && q <= hi  ⇔  !(lo > q) && !(q > hi).
        let out = _mm_or_si128(_mm_cmpgt_epi16(vlo, q), _mm_cmpgt_epi16(q, vhi));
        let hit = _mm_xor_si128(out, _mm_set1_epi16(-1));
        let packed = _mm_packs_epi16(hit, _mm_setzero_si128());
        (_mm_movemask_epi8(packed) & 0xff) as u8
    }
}

/// Quantized sweep kernel: tests cell `q` against the quantized bound
/// pairs `lo[..chunk]` / `hi[..chunk]` (`chunk <= 64`) and returns
/// **two** bitmasks `(hit, certain)`:
///
/// * bit `j` of `hit` ⇔ `lo[j] <= q && q <= hi[j]` — a conservative
///   superset of the exact half-open f64 test (outward rounding
///   guarantees no true hit is lost);
/// * bit `j` of `certain` ⇔ `lo[j] < q && q + 2 <= hi[j]` — hits whose
///   exactness is provable from cells alone (see DESIGN.md §15); hits
///   with the bit clear are *boundary-ambiguous* and need the f64
///   re-check.
///
/// `certain` is always a subset of `hit`.
#[inline(always)]
pub fn sweep_mask_q(level: SimdLevel, lo: &[u16], hi: &[u16], chunk: usize, q: u16) -> (u64, u64) {
    debug_assert!(chunk <= 64 && lo.len() >= chunk && hi.len() >= chunk);
    #[cfg(target_arch = "x86_64")]
    {
        match level {
            // SAFETY: dispatch only selects Avx2/Sse2 when the CPU
            // reports the feature.
            SimdLevel::Avx2 => return unsafe { sweep_mask_q_avx2(lo, hi, chunk, q) },
            SimdLevel::Sse2 => return unsafe { sweep_mask_q_sse2(lo, hi, chunk, q) },
            SimdLevel::Scalar => {}
        }
    }
    let _ = level;
    sweep_mask_q_scalar(lo, hi, chunk, q)
}

#[inline]
fn sweep_mask_q_scalar(lo: &[u16], hi: &[u16], chunk: usize, q: u16) -> (u64, u64) {
    let mut hit = 0u64;
    let mut certain = 0u64;
    for j in 0..chunk {
        hit |= u64::from((lo[j] <= q) & (q <= hi[j])) << j;
        certain |= u64::from((lo[j] < q) & (u32::from(q) + 2 <= u32::from(hi[j]))) << j;
    }
    (hit, certain)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sweep_mask_q_sse2(lo: &[u16], hi: &[u16], chunk: usize, q: u16) -> (u64, u64) {
    use core::arch::x86_64::*;
    // SAFETY: every load reads 8 u16 elements at offset j with
    // j + 8 <= chunk <= lo.len(), hi.len().
    unsafe {
        let bias = _mm_set1_epi16(i16::MIN);
        let ones = _mm_set1_epi16(-1);
        let vq = _mm_xor_si128(_mm_set1_epi16(q as i16), bias);
        // q + 2 <= hi  ⇔  hi > q + 1; saturating add keeps q = 65535
        // correct (certain must be false there, and 65535 > anything
        // biased never holds).
        let vq1 = _mm_xor_si128(_mm_set1_epi16(q.saturating_add(1) as i16), bias);
        let mut hit = 0u64;
        let mut certain = 0u64;
        let mut j = 0usize;
        while j + 8 <= chunk {
            let vlo = _mm_xor_si128(_mm_loadu_si128(lo.as_ptr().add(j).cast()), bias);
            let vhi = _mm_xor_si128(_mm_loadu_si128(hi.as_ptr().add(j).cast()), bias);
            let out = _mm_or_si128(_mm_cmpgt_epi16(vlo, vq), _mm_cmpgt_epi16(vq, vhi));
            let hitv = _mm_xor_si128(out, ones);
            let certv = _mm_and_si128(_mm_cmpgt_epi16(vq, vlo), _mm_cmpgt_epi16(vhi, vq1));
            // Pack hit bytes into the low 8 mask bits, certain into the
            // high 8, with a single movemask.
            let packed = _mm_packs_epi16(hitv, certv);
            let m = _mm_movemask_epi8(packed) as u32;
            hit |= u64::from(m & 0xff) << j;
            certain |= u64::from((m >> 8) & 0xff) << j;
            j += 8;
        }
        while j < chunk {
            hit |= u64::from((lo[j] <= q) & (q <= hi[j])) << j;
            certain |= u64::from((lo[j] < q) & (u32::from(q) + 2 <= u32::from(hi[j]))) << j;
            j += 1;
        }
        (hit, certain)
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_mask_q_avx2(lo: &[u16], hi: &[u16], chunk: usize, q: u16) -> (u64, u64) {
    use core::arch::x86_64::*;
    // SAFETY: every load reads 16 u16 elements at offset j with
    // j + 16 <= chunk <= lo.len(), hi.len().
    unsafe {
        let bias = _mm256_set1_epi16(i16::MIN);
        let ones = _mm256_set1_epi16(-1);
        let vq = _mm256_xor_si256(_mm256_set1_epi16(q as i16), bias);
        let vq1 = _mm256_xor_si256(_mm256_set1_epi16(q.saturating_add(1) as i16), bias);
        let mut hit = 0u64;
        let mut certain = 0u64;
        let mut j = 0usize;
        while j + 16 <= chunk {
            let vlo = _mm256_xor_si256(_mm256_loadu_si256(lo.as_ptr().add(j).cast()), bias);
            let vhi = _mm256_xor_si256(_mm256_loadu_si256(hi.as_ptr().add(j).cast()), bias);
            let out = _mm256_or_si256(_mm256_cmpgt_epi16(vlo, vq), _mm256_cmpgt_epi16(vq, vhi));
            let hitv = _mm256_xor_si256(out, ones);
            let certv = _mm256_and_si256(_mm256_cmpgt_epi16(vq, vlo), _mm256_cmpgt_epi16(vhi, vq1));
            // packs interleaves 128-bit halves: [hit0-7, cert0-7,
            // hit8-15, cert8-15]; the 64-bit-quad permute 0b11011000
            // restores [hit0-15, cert0-15] so one movemask yields both.
            let packed = _mm256_permute4x64_epi64::<0b11011000>(_mm256_packs_epi16(hitv, certv));
            let m = _mm256_movemask_epi8(packed) as u32;
            hit |= u64::from(m & 0xffff) << j;
            certain |= u64::from(m >> 16) << j;
            j += 16;
        }
        if j < chunk {
            let (h, c) = sweep_mask_q_sse2(&lo[j..], &hi[j..], chunk - j, q);
            hit |= h << j;
            certain |= c << j;
        }
        (hit, certain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<SimdLevel> {
        let mut out = vec![SimdLevel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                out.push(SimdLevel::Sse2);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                out.push(SimdLevel::Avx2);
            }
        }
        out
    }

    #[test]
    fn block_transposes_and_pads() {
        let mut block = EventBlock::new();
        block.fill(&[[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]]);
        assert_eq!(block.lanes(), 3);
        assert_eq!(block.dims(), 2);
        assert_eq!(block.full_mask(), 0b111);
        assert_eq!(&block.dim(0)[..3], &[1.0, 2.0, 3.0]);
        assert_eq!(&block.dim(1)[..3], &[10.0, 20.0, 30.0]);
        // Idle lanes are padded with lane 0.
        assert_eq!(block.dim(0)[7], 1.0);
        assert_eq!(block.coord(1, 5), 10.0);
    }

    #[test]
    fn lane_kernel_levels_agree_on_tricky_values() {
        let xs = [
            0.5,
            1.0,
            1.0 + f64::EPSILON,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
        ];
        let bounds = [
            (0.0, 1.0),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NAN, 1.0),
            (0.0, f64::NAN),
            (-0.0, 0.0),
            (1.0, 1.0),
        ];
        for &(lo, hi) in &bounds {
            let want = lanes_in_interval_scalar(lo, hi, &xs);
            for level in levels() {
                assert_eq!(
                    lanes_in_interval(level, lo, hi, &xs),
                    want,
                    "lo={lo} hi={hi} level={level:?}"
                );
            }
        }
    }

    #[test]
    fn sweep_kernel_levels_agree_for_every_chunk_size() {
        let lo: Vec<f64> = (0..64)
            .map(|j| match j % 5 {
                0 => f64::NAN,
                1 => f64::NEG_INFINITY,
                _ => (j as f64) * 0.25 - 4.0,
            })
            .collect();
        let hi: Vec<f64> = (0..64)
            .map(|j| match j % 7 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => (j as f64) * 0.5,
            })
            .collect();
        for x in [0.0, -0.0, 1.0, 7.25, f64::NAN, f64::INFINITY] {
            for chunk in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 33, 64] {
                let want = sweep_mask_scalar(&lo, &hi, chunk, x);
                for level in levels() {
                    assert_eq!(
                        sweep_mask(level, &lo, &hi, chunk, x),
                        want,
                        "x={x} chunk={chunk} level={level:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn quant_lane_kernel_levels_agree() {
        let qs = [0u16, 1, 2, 7, 255, 256, 32767, 65535];
        let bounds = [
            (0u16, 0u16),
            (0, 65535),
            (1, 1),
            (7, 255),
            (256, 256),
            (32767, 65535),
            (65535, 65535),
            (5, 4), // inverted: empty
        ];
        for &(lo, hi) in &bounds {
            let want = lanes_in_interval_q_scalar(lo, hi, &qs);
            for level in levels() {
                assert_eq!(
                    lanes_in_interval_q(level, lo, hi, &qs),
                    want,
                    "lo={lo} hi={hi} level={level:?}"
                );
            }
        }
    }

    #[test]
    fn quant_sweep_kernel_levels_agree_for_every_chunk_size() {
        let lo: Vec<u16> = (0..64)
            .map(|j| match j % 5 {
                0 => 0,
                1 => 65535,
                _ => (j as u16) * 701,
            })
            .collect();
        let hi: Vec<u16> = (0..64)
            .map(|j| match j % 7 {
                0 => 65535,
                1 => 0,
                _ => (j as u16).wrapping_mul(907).wrapping_add(500),
            })
            .collect();
        for q in [0u16, 1, 2, 499, 500, 501, 32768, 65533, 65534, 65535] {
            for chunk in [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 33, 63, 64] {
                let want = sweep_mask_q_scalar(&lo, &hi, chunk, q);
                for level in levels() {
                    assert_eq!(
                        sweep_mask_q(level, &lo, &hi, chunk, q),
                        want,
                        "q={q} chunk={chunk} level={level:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn quant_certain_is_subset_of_hit_and_matches_definition() {
        let lo: Vec<u16> = (0..64).map(|j| (j as u16).wrapping_mul(1031)).collect();
        let hi: Vec<u16> = lo.iter().map(|&l| l.saturating_add(3)).collect();
        for q in 0..=700u16 {
            let (hit, certain) = sweep_mask_q_scalar(&lo, &hi, 64, q);
            assert_eq!(certain & !hit, 0, "certain must imply hit (q={q})");
            for j in 0..64 {
                let h = (lo[j] <= q) && (q <= hi[j]);
                let c = (lo[j] < q) && (u32::from(q) + 2 <= u32::from(hi[j]));
                assert_eq!(hit >> j & 1 == 1, h);
                assert_eq!(certain >> j & 1 == 1, c);
            }
        }
    }

    #[test]
    fn quant_block_transposes_and_pads() {
        let mut block = QuantBlock::new();
        let cells = [[10u16, 100], [20, 200], [30, 300]];
        block.fill_with(2, 3, |lane, d| cells[lane][d]);
        assert_eq!(block.lanes(), 3);
        assert_eq!(block.dims(), 2);
        assert_eq!(block.full_mask(), 0b111);
        assert_eq!(&block.dim(0)[..3], &[10, 20, 30]);
        assert_eq!(&block.dim(1)[..3], &[100, 200, 300]);
        assert_eq!(block.dim(0)[7], 10);
        assert_eq!(block.point(1), &[20, 200]);
    }

    #[test]
    fn forced_level_round_trips() {
        force_level(Some(SimdLevel::Scalar));
        assert_eq!(active_level(), SimdLevel::Scalar);
        force_level(None);
        let _ = active_level(); // re-detects without panicking
        force_level(None);
    }

    #[test]
    fn fill_cols_matches_fill() {
        // 3 dims, 5 active lanes (padding exercised), offset start.
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|d| (0..20).map(|i| (d * 100 + i) as f64 * 0.5).collect())
            .collect();
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let start = 7;
        let k = 5;
        let rows: Vec<Vec<f64>> = (0..k)
            .map(|l| (0..3).map(|d| cols[d][start + l]).collect())
            .collect();
        let mut aos = EventBlock::new();
        aos.fill(&rows);
        let mut soa = EventBlock::new();
        soa.fill_cols(&col_refs, start, k);
        assert_eq!(soa.lanes(), aos.lanes());
        assert_eq!(soa.dims(), aos.dims());
        assert_eq!(soa.full_mask(), aos.full_mask());
        for d in 0..3 {
            assert_eq!(soa.dim(d), aos.dim(d), "dimension {d}");
        }
        for lane in 0..LANES {
            assert_eq!(soa.point(lane), aos.point(lane), "lane {lane}");
        }
    }
}
