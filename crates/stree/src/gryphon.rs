//! A Gryphon-style matching tree for equality/wild-card subscriptions.
//!
//! The paper positions itself against Gryphon's matching work (Aguilera
//! et al., PODC 1999), whose algorithms it describes as "optimized for
//! their motivating predicate types" — subscriptions whose predicates are
//! *equality tests or wild-cards*, not ranges. This module implements
//! that baseline: the parallel search tree. Level `d` of the tree
//! branches on attribute `d`: one edge per subscription value plus a `*`
//! edge; matching an event walks the value edge *and* the `*` edge at
//! every level, reaching the leaves of exactly the matching
//! subscriptions.
//!
//! The index exists to reproduce the paper's framing experimentally: on
//! equality/wild-card workloads the Gryphon tree is extremely fast, but
//! it simply cannot express the range subscriptions the paper targets —
//! the geometric indexes can (see the `ablation_discrete_matching`
//! harness).

use std::collections::HashMap;

use pubsub_geom::Interval;

use crate::{Entry, EntryId, IndexError};

/// A subscription over discrete attributes: per dimension either an exact
/// value or a wild-card (`None`).
pub type EqualitySubscription = Vec<Option<f64>>;

#[derive(Debug, Clone)]
enum GNode {
    /// Branch on attribute `depth`; `values` keys are the exact bit
    /// patterns of the subscription values.
    Internal {
        values: HashMap<u64, GNode>,
        wildcard: Option<Box<GNode>>,
    },
    /// All attributes consumed: these subscriptions match.
    Leaf(Vec<EntryId>),
}

/// The Gryphon-style parallel search tree.
///
/// # Example
///
/// ```
/// use pubsub_stree::{EntryId, GryphonIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // (name, bst): "IBM buys", "IBM anything", "anything sells".
/// let idx = GryphonIndex::new(vec![
///     (vec![Some(42.0), Some(0.0)], EntryId(0)),
///     (vec![Some(42.0), None], EntryId(1)),
///     (vec![None, Some(1.0)], EntryId(2)),
/// ])?;
/// let mut hits = idx.query(&[42.0, 0.0]);
/// hits.sort();
/// assert_eq!(hits, vec![EntryId(0), EntryId(1)]);
/// assert_eq!(idx.query(&[7.0, 1.0]), vec![EntryId(2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GryphonIndex {
    dims: usize,
    len: usize,
    root: GNode,
}

impl GryphonIndex {
    /// Builds the matching tree.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::DimensionMismatch`] if subscriptions disagree
    /// on dimensionality and [`IndexError::UnboundedRect`] (reused for
    /// "invalid value") if an equality value is NaN.
    pub fn new(subscriptions: Vec<(EqualitySubscription, EntryId)>) -> Result<Self, IndexError> {
        let dims = subscriptions.first().map_or(0, |(s, _)| s.len());
        for (index, (s, _)) in subscriptions.iter().enumerate() {
            if s.len() != dims {
                return Err(IndexError::DimensionMismatch {
                    expected: dims,
                    got: s.len(),
                    index,
                });
            }
            if s.iter().any(|v| v.is_some_and(f64::is_nan)) {
                return Err(IndexError::UnboundedRect { index });
            }
        }
        let len = subscriptions.len();
        let ids: Vec<(EqualitySubscription, EntryId)> = subscriptions;
        let root = Self::build_node(&ids.iter().collect::<Vec<_>>(), 0, dims);
        Ok(GryphonIndex { dims, len, root })
    }

    /// Converts geometric entries whose sides are all either fully
    /// unbounded (wild-card) or *unit-width equality intervals* `(v-1, v]`
    /// (the paper's convention for discretized equality predicates).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::InvalidConfig`] if any side is a genuine
    /// range — the Gryphon tree cannot express it (which is the paper's
    /// point).
    pub fn from_unit_entries(entries: &[Entry]) -> Result<Self, IndexError> {
        let mut subs = Vec::with_capacity(entries.len());
        for e in entries {
            let mut s = Vec::with_capacity(e.rect.dims());
            for side in e.rect.sides() {
                s.push(Self::side_to_predicate(side)?);
            }
            subs.push((s, e.id));
        }
        GryphonIndex::new(subs)
    }

    fn side_to_predicate(side: &Interval) -> Result<Option<f64>, IndexError> {
        if !side.is_finite() && side.lo() == f64::NEG_INFINITY && side.hi() == f64::INFINITY {
            return Ok(None);
        }
        if side.is_finite() && (side.length() - 1.0).abs() < 1e-12 {
            return Ok(Some(side.hi()));
        }
        Err(IndexError::InvalidConfig {
            parameter: "subscription",
            constraint: "sides must be wild-cards or unit equality intervals",
        })
    }

    fn build_node(subs: &[&(EqualitySubscription, EntryId)], depth: usize, dims: usize) -> GNode {
        if depth == dims {
            return GNode::Leaf(subs.iter().map(|(_, id)| *id).collect());
        }
        let mut by_value: HashMap<u64, Vec<&(EqualitySubscription, EntryId)>> = HashMap::new();
        let mut wild: Vec<&(EqualitySubscription, EntryId)> = Vec::new();
        for s in subs {
            match s.0[depth] {
                Some(v) => by_value.entry(v.to_bits()).or_default().push(s),
                None => wild.push(s),
            }
        }
        GNode::Internal {
            values: by_value
                .into_iter()
                .map(|(k, group)| (k, Self::build_node(&group, depth + 1, dims)))
                .collect(),
            wildcard: if wild.is_empty() {
                None
            } else {
                Some(Box::new(Self::build_node(&wild, depth + 1, dims)))
            },
        }
    }

    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Matches an event: every subscription whose per-attribute predicate
    /// is the event's value or `*`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on a dimensionality mismatch.
    pub fn query(&self, event: &[f64]) -> Vec<EntryId> {
        let mut out = Vec::new();
        self.query_into(event, &mut out);
        out
    }

    /// Appends matches to `out`; also returns the number of tree nodes
    /// visited (the work metric).
    pub fn query_counting(&self, event: &[f64], out: &mut Vec<EntryId>) -> usize {
        if self.len == 0 {
            return 0;
        }
        debug_assert_eq!(event.len(), self.dims);
        let mut visited = 0usize;
        let mut stack: Vec<(&GNode, usize)> = vec![(&self.root, 0)];
        while let Some((node, depth)) = stack.pop() {
            visited += 1;
            match node {
                GNode::Leaf(ids) => out.extend_from_slice(ids),
                GNode::Internal { values, wildcard } => {
                    if let Some(child) = values.get(&event[depth].to_bits()) {
                        stack.push((child, depth + 1));
                    }
                    if let Some(child) = wildcard {
                        stack.push((child, depth + 1));
                    }
                }
            }
        }
        visited
    }

    /// Appends matches to `out`.
    pub fn query_into(&self, event: &[f64], out: &mut Vec<EntryId>) {
        self.query_counting(event, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Rect;

    fn brute(subs: &[(EqualitySubscription, EntryId)], event: &[f64]) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = subs
            .iter()
            .filter(|(s, _)| {
                s.iter()
                    .zip(event)
                    .all(|(p, v)| p.is_none_or(|pv| pv == *v))
            })
            .map(|(_, id)| *id)
            .collect();
        out.sort();
        out
    }

    fn workload() -> Vec<(EqualitySubscription, EntryId)> {
        let mut subs = Vec::new();
        let mut id = 0u32;
        for a in 0..4 {
            for b in 0..3 {
                for wild_a in [false, true] {
                    for wild_b in [false, true] {
                        subs.push((
                            vec![
                                (!wild_a).then_some(f64::from(a)),
                                (!wild_b).then_some(f64::from(b)),
                                Some(f64::from((a + b) % 2)),
                            ],
                            EntryId(id),
                        ));
                        id += 1;
                    }
                }
            }
        }
        subs
    }

    #[test]
    fn matches_brute_force() {
        let subs = workload();
        let idx = GryphonIndex::new(subs.clone()).unwrap();
        assert_eq!(idx.len(), subs.len());
        assert_eq!(idx.dims(), 3);
        for a in 0..5 {
            for b in 0..4 {
                for c in 0..2 {
                    let event = [f64::from(a), f64::from(b), f64::from(c)];
                    let mut got = idx.query(&event);
                    got.sort();
                    assert_eq!(got, brute(&subs, &event), "event {event:?}");
                }
            }
        }
    }

    #[test]
    fn all_wildcards_match_everything() {
        let idx = GryphonIndex::new(vec![
            (vec![None, None], EntryId(0)),
            (vec![Some(1.0), None], EntryId(1)),
        ])
        .unwrap();
        let mut hits = idx.query(&[1.0, 99.0]);
        hits.sort();
        assert_eq!(hits, vec![EntryId(0), EntryId(1)]);
        assert_eq!(idx.query(&[2.0, 99.0]), vec![EntryId(0)]);
    }

    #[test]
    fn empty_index() {
        let idx = GryphonIndex::new(vec![]).unwrap();
        assert!(idx.is_empty());
        assert!(idx.query(&[]).is_empty());
    }

    #[test]
    fn validation() {
        assert!(matches!(
            GryphonIndex::new(vec![
                (vec![Some(1.0)], EntryId(0)),
                (vec![Some(1.0), None], EntryId(1)),
            ]),
            Err(IndexError::DimensionMismatch { index: 1, .. })
        ));
        assert!(GryphonIndex::new(vec![(vec![Some(f64::NAN)], EntryId(0))]).is_err());
    }

    #[test]
    fn unit_entry_conversion() {
        // (v-1, v] sides become equality; unbounded sides become *.
        let entries = vec![
            Entry::new(
                Rect::new(vec![
                    Interval::new(41.0, 42.0).unwrap(),
                    Interval::unbounded(),
                ])
                .unwrap(),
                EntryId(0),
            ),
            Entry::new(
                Rect::new(vec![
                    Interval::unbounded(),
                    Interval::new(0.0, 1.0).unwrap(),
                ])
                .unwrap(),
                EntryId(1),
            ),
        ];
        let idx = GryphonIndex::from_unit_entries(&entries).unwrap();
        let mut hits = idx.query(&[42.0, 1.0]);
        hits.sort();
        assert_eq!(hits, vec![EntryId(0), EntryId(1)]);
        assert_eq!(idx.query(&[42.0, 2.0]), vec![EntryId(0)]);

        // A genuine range cannot be expressed.
        let ranged = vec![Entry::new(
            Rect::new(vec![
                Interval::new(10.0, 20.0).unwrap(),
                Interval::unbounded(),
            ])
            .unwrap(),
            EntryId(2),
        )];
        assert!(matches!(
            GryphonIndex::from_unit_entries(&ranged),
            Err(IndexError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn counting_reports_visits() {
        let idx = GryphonIndex::new(workload()).unwrap();
        let mut out = Vec::new();
        let visited = idx.query_counting(&[1.0, 1.0, 0.0], &mut out);
        assert!(visited >= out.len());
        assert!(!out.is_empty());
    }
}
