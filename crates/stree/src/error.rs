use std::error::Error;
use std::fmt;

/// Errors produced while building or mutating a spatial index.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IndexError {
    /// The entry at `index` has a different dimensionality than the first.
    DimensionMismatch {
        /// Dimensionality of the first entry.
        expected: usize,
        /// Dimensionality of the offending entry.
        got: usize,
        /// Position of the offending entry in the input.
        index: usize,
    },
    /// The entry at `index` has an unbounded side. Spatial indexes need
    /// finite geometry for volume computations; clamp subscriptions with
    /// [`pubsub_geom::Space::clamp`] before indexing.
    UnboundedRect {
        /// Position of the offending entry in the input.
        index: usize,
    },
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the parameter.
        parameter: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A query or mutation used a point/rect of the wrong dimensionality.
    QueryDimensionMismatch {
        /// Dimensionality of the index.
        expected: usize,
        /// Dimensionality of the query object.
        got: usize,
    },
    /// An id passed to `remove` is not present in the index.
    UnknownEntry {
        /// The missing id (raw value).
        id: u32,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DimensionMismatch {
                expected,
                got,
                index,
            } => write!(
                f,
                "entry {index} has {got} dimensions, expected {expected}"
            ),
            IndexError::UnboundedRect { index } => write!(
                f,
                "entry {index} has an unbounded side; clamp subscriptions to a finite space before indexing"
            ),
            IndexError::InvalidConfig {
                parameter,
                constraint,
            } => write!(f, "invalid configuration: {parameter} must satisfy {constraint}"),
            IndexError::QueryDimensionMismatch { expected, got } => {
                write!(f, "query has {got} dimensions, index has {expected}")
            }
            IndexError::UnknownEntry { id } => write!(f, "entry id {id} is not in the index"),
        }
    }
}

impl Error for IndexError {}

/// A violated structural invariant, reported by the `validate` methods used
/// in tests and debugging.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InvariantViolation {
    /// A node's MBR does not contain one of its children.
    MbrNotCovering {
        /// Arena index of the offending node.
        node: usize,
    },
    /// A node's branch factor exceeds the configured maximum `M`.
    FanoutExceeded {
        /// Arena index of the offending node.
        node: usize,
        /// Observed branch factor.
        got: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The leaves do not partition the entry set (an entry is missing or
    /// appears more than once).
    EntriesNotPartitioned {
        /// Number of entries reachable from the root.
        reachable: usize,
        /// Number of entries stored.
        stored: usize,
    },
    /// A binarization skew bound was violated (`q < ⌈p·N_A⌉` for an
    /// internal binary split).
    SkewBoundViolated {
        /// Arena index of the offending node.
        node: usize,
    },
    /// The arena contains an unreachable or dangling node reference.
    DanglingNode {
        /// Arena index of the offending reference.
        node: usize,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::MbrNotCovering { node } => {
                write!(f, "node {node} MBR does not cover a child")
            }
            InvariantViolation::FanoutExceeded { node, got, max } => {
                write!(f, "node {node} has fanout {got}, exceeding M={max}")
            }
            InvariantViolation::EntriesNotPartitioned { reachable, stored } => write!(
                f,
                "leaves reach {reachable} entries but the index stores {stored}"
            ),
            InvariantViolation::SkewBoundViolated { node } => {
                write!(f, "node {node} violates the skew bound")
            }
            InvariantViolation::DanglingNode { node } => {
                write!(f, "node reference {node} is dangling or unreachable")
            }
        }
    }
}

impl Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = IndexError::DimensionMismatch {
            expected: 4,
            got: 3,
            index: 17,
        };
        assert!(e.to_string().contains("entry 17"));
        let v = InvariantViolation::FanoutExceeded {
            node: 2,
            got: 50,
            max: 40,
        };
        assert!(v.to_string().contains("M=40"));
    }
}
