//! Churn primitives for compiled indexes: a linear-scan delta overlay and
//! a tombstone bitset.
//!
//! A compiled index ([`crate::FlatSTree`], [`crate::STree`]) is immutable:
//! its excellent bulk packing is exactly what makes in-place updates
//! impractical. Live systems absorb churn *beside* the compiled structure
//! instead:
//!
//! * inserts land in a [`DeltaOverlay`] — a small entry list scanned
//!   linearly per query (a handful of rectangle tests, cheap until the
//!   overlay grows past a few hundred entries);
//! * removals of compiled entries are masked by [`Tombstones`] — one bit
//!   per entry id, filtered out of every hit list.
//!
//! Periodically the owner recompiles the index over the surviving entries
//! and clears both structures. [`crate::DynamicIndex`] wires the pair to a
//! self-rebuilding [`crate::STree`]; `pubsub_core::Broker` merges them
//! with its flat matcher between engine-snapshot recompiles.

use pubsub_geom::{Point, Rect};

use crate::{Entry, EntryId, IndexError};

/// A mask over compiled entry ids: removed entries stay in the compiled
/// arrays but are filtered out of query results.
///
/// Storage is one bit per id up to the largest tombstoned id, so this is
/// intended for the dense, small ids a compiled index assigns — not for
/// sparse ids drawn from the whole `u32` range.
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    words: Vec<u64>,
    dead: usize,
}

impl Tombstones {
    /// Creates an empty mask.
    pub fn new() -> Self {
        Tombstones::default()
    }

    /// Marks an entry id dead. Returns `false` if it was already dead.
    pub fn insert(&mut self, id: EntryId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        if self.words[word] & (1 << bit) != 0 {
            return false;
        }
        self.words[word] |= 1 << bit;
        self.dead += 1;
        true
    }

    /// `true` if the id has been tombstoned.
    pub fn contains(&self, id: EntryId) -> bool {
        self.words
            .get(id.0 as usize / 64)
            .is_some_and(|w| w & (1 << (id.0 % 64)) != 0)
    }

    /// Number of tombstoned ids.
    pub fn len(&self) -> usize {
        self.dead
    }

    /// `true` if nothing is tombstoned.
    pub fn is_empty(&self) -> bool {
        self.dead == 0
    }

    /// Clears every tombstone (after a recompile).
    pub fn clear(&mut self) {
        self.words.clear();
        self.dead = 0;
    }

    /// Removes tombstoned ids from a hit list, preserving the order of
    /// the survivors.
    pub fn retain_live(&self, ids: &mut Vec<EntryId>) {
        if self.dead > 0 {
            ids.retain(|&id| !self.contains(id));
        }
    }
}

/// The insert-side churn buffer: entries added since the last recompile,
/// scanned linearly per query.
///
/// Entry ids are the caller's; they are *not* required to be dense (the
/// broker hands out ids past the compiled range), only unique among live
/// entries.
#[derive(Debug, Clone, Default)]
pub struct DeltaOverlay {
    entries: Vec<Entry>,
}

impl DeltaOverlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        DeltaOverlay::default()
    }

    /// Adds one entry.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::QueryDimensionMismatch`] if the rectangle
    /// disagrees with the entries already buffered.
    pub fn insert(&mut self, entry: Entry) -> Result<(), IndexError> {
        if let Some(first) = self.entries.first() {
            if first.rect.dims() != entry.rect.dims() {
                return Err(IndexError::QueryDimensionMismatch {
                    expected: first.rect.dims(),
                    got: entry.rect.dims(),
                });
            }
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Removes the entry with the given id. Returns `false` if it is not
    /// buffered here.
    pub fn remove(&mut self, id: EntryId) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(pos) => {
                self.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the overlay is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The buffered entries (arbitrary order after removals).
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Drains the buffered entries (for a recompile).
    pub fn drain(&mut self) -> Vec<Entry> {
        std::mem::take(&mut self.entries)
    }

    /// Clears the overlay without returning the entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends the ids of every buffered entry containing `p` (half-open
    /// per-dimension containment, matching the compiled indexes).
    pub fn query_point_into(&self, p: &Point, out: &mut Vec<EntryId>) {
        for e in &self.entries {
            if e.rect.contains_point(p) {
                out.push(e.id);
            }
        }
    }

    /// Appends the ids of every buffered entry intersecting `r`.
    pub fn query_region_into(&self, r: &Rect, out: &mut Vec<EntryId>) {
        for e in &self.entries {
            if e.rect.intersects(r) {
                out.push(e.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u32, lo: f64, hi: f64) -> Entry {
        Entry::new(Rect::from_corners(&[lo], &[hi]).unwrap(), EntryId(i))
    }

    #[test]
    fn tombstones_mask_and_filter() {
        let mut t = Tombstones::new();
        assert!(t.is_empty());
        assert!(t.insert(EntryId(3)));
        assert!(t.insert(EntryId(130)));
        assert!(!t.insert(EntryId(3)), "double-kill is idempotent");
        assert_eq!(t.len(), 2);
        assert!(t.contains(EntryId(3)));
        assert!(!t.contains(EntryId(4)));
        assert!(!t.contains(EntryId(9999)), "beyond storage is live");

        let mut hits = vec![EntryId(1), EntryId(3), EntryId(130), EntryId(7)];
        t.retain_live(&mut hits);
        assert_eq!(hits, vec![EntryId(1), EntryId(7)]);

        t.clear();
        assert!(t.is_empty());
        assert!(!t.contains(EntryId(3)));
    }

    #[test]
    fn overlay_scan_and_removal() {
        let mut o = DeltaOverlay::new();
        o.insert(entry(10, 0.0, 5.0)).unwrap();
        o.insert(entry(11, 3.0, 8.0)).unwrap();
        o.insert(entry(12, 7.0, 9.0)).unwrap();
        assert_eq!(o.len(), 3);

        let mut out = Vec::new();
        o.query_point_into(&Point::new(vec![4.0]).unwrap(), &mut out);
        out.sort();
        assert_eq!(out, vec![EntryId(10), EntryId(11)]);

        assert!(o.remove(EntryId(10)));
        assert!(!o.remove(EntryId(10)));
        out.clear();
        o.query_point_into(&Point::new(vec![4.0]).unwrap(), &mut out);
        assert_eq!(out, vec![EntryId(11)]);

        out.clear();
        o.query_region_into(&Rect::from_corners(&[6.0], &[10.0]).unwrap(), &mut out);
        out.sort();
        assert_eq!(out, vec![EntryId(11), EntryId(12)]);

        let drained = o.drain();
        assert_eq!(drained.len(), 2);
        assert!(o.is_empty());
    }

    #[test]
    fn overlay_rejects_dimension_mixes() {
        let mut o = DeltaOverlay::new();
        o.insert(entry(0, 0.0, 1.0)).unwrap();
        let e2 = Entry::new(
            Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap(),
            EntryId(1),
        );
        assert!(matches!(
            o.insert(e2),
            Err(IndexError::QueryDimensionMismatch { .. })
        ));
    }

    #[test]
    fn overlay_containment_is_half_open() {
        let mut o = DeltaOverlay::new();
        o.insert(entry(0, 0.0, 5.0)).unwrap();
        let mut out = Vec::new();
        // `(lo, hi]`: the lower edge is out, the upper edge is in.
        o.query_point_into(&Point::new(vec![0.0]).unwrap(), &mut out);
        assert!(out.is_empty());
        o.query_point_into(&Point::new(vec![5.0]).unwrap(), &mut out);
        assert_eq!(out, vec![EntryId(0)]);
    }
}
