//! Stage 1 of S-tree construction: top-down binarization (paper §3.1).
//!
//! Starting from the full entry set, each node is split into two children by
//! sweeping along the dimension in which its minimum bounding rectangle is
//! longest. Entries are ordered by the center of their projection on that
//! dimension; candidate split positions `q` satisfy the *skew bound*
//! `p·N_A ≤ q ≤ (1−p)·N_A` and are examined in increments of `M`; the
//! position minimizing the sum of the two children's MBR volumes wins, with
//! ties broken by total perimeter (margin).

use pubsub_geom::Rect;

use crate::Entry;

/// A node of the intermediate binary tree. Entry ranges index into the
/// entry array, which is permuted in place as splits are chosen, so every
/// node's entries are contiguous.
#[derive(Debug, Clone)]
pub(crate) struct BinNode {
    pub mbr: Rect,
    pub start: usize,
    pub end: usize,
    /// `None` for leaves (nodes with at most `M` entries).
    pub children: Option<(usize, usize)>,
}

impl BinNode {
    /// `N_A`: the number of data objects below this node.
    pub fn object_count(&self) -> usize {
        self.end - self.start
    }
}

/// Builds the binary tree over `entries`, permuting them so that every
/// node's entries are contiguous. Returns the node arena; index 0 is the
/// root. `entries` must be non-empty.
pub(crate) fn binarize(entries: &mut [Entry], fanout: usize, skew: f64) -> Vec<BinNode> {
    debug_assert!(!entries.is_empty());
    let mut arena: Vec<BinNode> = Vec::new();
    // (node index, start, end) tasks; children are allocated when the task
    // is processed so parent links are implicit in allocation order.
    let mut stack: Vec<usize> = Vec::new();

    let root_mbr = mbr_of(&entries[..]);
    arena.push(BinNode {
        mbr: root_mbr,
        start: 0,
        end: entries.len(),
        children: None,
    });
    stack.push(0);

    while let Some(node_idx) = stack.pop() {
        let (start, end) = (arena[node_idx].start, arena[node_idx].end);
        let n = end - start;
        if n <= fanout {
            continue; // leaf
        }
        let dim = arena[node_idx].mbr.longest_dim();
        let slice = &mut entries[start..end];
        slice.sort_unstable_by(|a, b| {
            a.rect
                .side(dim)
                .center()
                .total_cmp(&b.rect.side(dim).center())
        });

        let q = best_split(slice, fanout, skew);

        let left_mbr = mbr_of(&slice[..q]);
        let right_mbr = mbr_of(&slice[q..]);
        let left_idx = arena.len();
        arena.push(BinNode {
            mbr: left_mbr,
            start,
            end: start + q,
            children: None,
        });
        let right_idx = arena.len();
        arena.push(BinNode {
            mbr: right_mbr,
            start: start + q,
            end,
            children: None,
        });
        arena[node_idx].children = Some((left_idx, right_idx));
        stack.push(left_idx);
        stack.push(right_idx);
    }
    arena
}

/// The sweep: given entries already sorted along the split dimension,
/// returns the split position `q` (left child gets `entries[..q]`).
fn best_split(sorted: &[Entry], fanout: usize, skew: f64) -> usize {
    let n = sorted.len();
    debug_assert!(n >= 2);
    // Skew bound, clamped so at least one valid split always exists.
    let q_min = ((skew * n as f64).ceil() as usize).clamp(1, n - 1);
    let q_max = ((1.0 - skew) * n as f64).floor() as usize;
    let q_max = q_max.clamp(q_min, n - 1);

    // Candidate positions. The paper sweeps in increments of M, which is
    // the right granularity when N_A >> M (leaves hold M entries, so finer
    // steps barely change leaf composition) but degenerates to a single
    // candidate on small nodes. We therefore refine the step for small
    // nodes: increments of M once the node is large, down to every
    // position when it is not (see DESIGN.md interpretation choices).
    let step = fanout.min((n / 16).max(1));
    let candidates: Vec<usize> = (q_min..=q_max).step_by(step).collect();
    debug_assert!(!candidates.is_empty());

    // Forward pass: prefix MBRs at candidate positions.
    let mut prefix: Vec<Rect> = Vec::with_capacity(candidates.len());
    {
        let mut run = sorted[0].rect.clone();
        let mut ci = 0;
        for (i, e) in sorted.iter().enumerate() {
            if i > 0 {
                run = run.mbr_with(&e.rect);
            }
            while ci < candidates.len() && candidates[ci] == i + 1 {
                prefix.push(run.clone());
                ci += 1;
            }
        }
        debug_assert_eq!(prefix.len(), candidates.len());
    }
    // Backward pass: suffix MBRs at candidate positions (suffix covering
    // `sorted[q..]`), visited in descending order.
    let mut suffix: Vec<Option<Rect>> = vec![None; candidates.len()];
    {
        let mut run = sorted[n - 1].rect.clone();
        let mut ci = candidates.len();
        for i in (0..n).rev() {
            if i < n - 1 {
                run = run.mbr_with(&sorted[i].rect);
            }
            while ci > 0 && candidates[ci - 1] == i {
                suffix[ci - 1] = Some(run.clone());
                ci -= 1;
            }
        }
    }

    let mut best_q = candidates[0];
    let mut best_vol = f64::INFINITY;
    let mut best_margin = f64::INFINITY;
    for (k, &q) in candidates.iter().enumerate() {
        let left = &prefix[k];
        let right = suffix[k].as_ref().expect("suffix computed per candidate");
        let vol = left.volume() + right.volume();
        let margin = left.margin() + right.margin();
        if vol < best_vol || (vol == best_vol && margin < best_margin) {
            best_vol = vol;
            best_margin = margin;
            best_q = q;
        }
    }
    best_q
}

fn mbr_of(entries: &[Entry]) -> Rect {
    Rect::bounding(entries.iter().map(|e| &e.rect)).expect("non-empty entry slice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntryId;
    use pubsub_geom::Rect;

    fn unit_rects(centers: &[(f64, f64)]) -> Vec<Entry> {
        centers
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                Entry::new(
                    Rect::from_corners(&[x - 0.5, y - 0.5], &[x + 0.5, y + 0.5]).unwrap(),
                    EntryId(i as u32),
                )
            })
            .collect()
    }

    #[test]
    fn single_leaf_when_small() {
        let mut entries = unit_rects(&[(0.0, 0.0), (1.0, 1.0)]);
        let arena = binarize(&mut entries, 4, 0.3);
        assert_eq!(arena.len(), 1);
        assert!(arena[0].children.is_none());
        assert_eq!(arena[0].object_count(), 2);
    }

    #[test]
    fn splits_two_obvious_clusters_apart() {
        // Two clusters far apart along x; fanout 2 forces splits.
        let mut entries = unit_rects(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (100.0, 0.0),
            (101.0, 0.0),
            (100.0, 1.0),
        ]);
        let arena = binarize(&mut entries, 3, 0.3);
        let (l, r) = arena[0].children.unwrap();
        // The root split must separate the clusters: each child MBR stays
        // within one cluster's x-range.
        let (left, right) = (&arena[l], &arena[r]);
        let max_x = |node: &BinNode| node.mbr.side(0).hi();
        let min_x = |node: &BinNode| node.mbr.side(0).lo();
        let (a, b) = if max_x(left) < min_x(right) {
            (left, right)
        } else {
            (right, left)
        };
        assert!(max_x(a) < 50.0);
        assert!(min_x(b) > 50.0);
    }

    #[test]
    fn skew_bound_holds_at_every_split() {
        let mut entries: Vec<Entry> = (0..200)
            .map(|i| {
                let x = (i as f64 * 37.0) % 100.0;
                let y = (i as f64 * 61.0) % 100.0;
                Entry::new(
                    Rect::from_corners(&[x, y], &[x + 2.0, y + 2.0]).unwrap(),
                    EntryId(i),
                )
            })
            .collect();
        let fanout = 5;
        let skew = 0.3;
        let arena = binarize(&mut entries, fanout, skew);
        for node in &arena {
            if let Some((l, r)) = node.children {
                let n = node.object_count();
                let q = arena[l].object_count();
                assert_eq!(q + arena[r].object_count(), n);
                let q_min = ((skew * n as f64).ceil() as usize).clamp(1, n - 1);
                assert!(q >= q_min, "split {q} of {n} below skew bound {q_min}");
                assert!(
                    n - q >= q_min.min(n - q_min),
                    "right side {} of {n} below skew bound",
                    n - q
                );
            }
        }
    }

    #[test]
    fn node_ranges_are_contiguous_and_nested() {
        let mut entries = unit_rects(&[
            (0.0, 0.0),
            (5.0, 5.0),
            (10.0, 0.0),
            (15.0, 5.0),
            (20.0, 0.0),
            (25.0, 5.0),
            (30.0, 0.0),
        ]);
        let arena = binarize(&mut entries, 2, 0.25);
        for node in &arena {
            if let Some((l, r)) = node.children {
                assert_eq!(arena[l].start, node.start);
                assert_eq!(arena[l].end, arena[r].start);
                assert_eq!(arena[r].end, node.end);
            } else {
                assert!(node.object_count() <= 2);
            }
        }
    }

    #[test]
    fn mbrs_cover_entries() {
        let mut entries = unit_rects(&[(0.0, 0.0), (3.0, 9.0), (8.0, 2.0), (4.0, 4.0), (7.0, 7.0)]);
        let arena = binarize(&mut entries, 2, 0.3);
        for node in &arena {
            for e in &entries[node.start..node.end] {
                assert!(node.mbr.contains_rect(&e.rect));
            }
        }
    }
}
