//! Stage 2 of S-tree construction: compression (paper §3.2).
//!
//! The binary tree is converted into a tree in which all but the leaf and
//! penultimate nodes have branch factor `M`:
//!
//! 1. *Penultimate pass* — every highest node whose number of leaf
//!    descendants is at most `M` becomes a penultimate node: all internal
//!    nodes beneath it are collapsed away so its children are exactly its
//!    leaf descendants.
//! 2. *Top-down collapse* — walking the remaining internal nodes in BFS
//!    order, each node repeatedly collapses with a non-leaf child of branch
//!    factor 2 (choosing the child with the highest leaf number), raising
//!    its own branch factor by one each time, until it reaches `M` or runs
//!    out of candidates.

use super::binarize::BinNode;

/// Mutable node used during compression. Indices refer to the shared arena
/// (same indices as the binarization arena).
#[derive(Debug, Clone)]
pub(crate) struct CNode {
    /// Child arena indices; empty for leaves.
    pub children: Vec<usize>,
    /// Entry range for leaves (`start..end`); `None` for internal nodes.
    pub entry_range: Option<(usize, usize)>,
    /// `N_A`: data objects below this node (the paper's *leaf number*).
    pub leaf_objects: usize,
    /// Number of leaf *nodes* below this node (1 for a leaf).
    pub leaf_nodes: usize,
    pub alive: bool,
}

impl CNode {
    pub fn is_leaf(&self) -> bool {
        self.entry_range.is_some()
    }
}

/// Runs both compression passes over the binary arena. Returns the `CNode`
/// arena; node 0 is the root, dead nodes are flagged `alive = false`.
pub(crate) fn compress(bin: &[BinNode], fanout: usize) -> Vec<CNode> {
    let mut nodes: Vec<CNode> = bin
        .iter()
        .map(|b| CNode {
            children: b.children.map(|(l, r)| vec![l, r]).unwrap_or_default(),
            entry_range: if b.children.is_none() {
                Some((b.start, b.end))
            } else {
                None
            },
            leaf_objects: b.object_count(),
            leaf_nodes: 0,
            alive: true,
        })
        .collect();

    compute_leaf_node_counts(&mut nodes);
    penultimate_pass(&mut nodes, fanout);
    collapse_pass(&mut nodes, fanout);
    nodes
}

/// Fills `leaf_nodes` bottom-up. The binarization arena is allocated
/// top-down, so children always have larger indices than their parent and a
/// reverse sweep suffices.
fn compute_leaf_node_counts(nodes: &mut [CNode]) {
    for i in (0..nodes.len()).rev() {
        if nodes[i].is_leaf() {
            nodes[i].leaf_nodes = 1;
        } else {
            nodes[i].leaf_nodes = nodes[i]
                .children
                .clone()
                .iter()
                .map(|&c| nodes[c].leaf_nodes)
                .sum();
        }
    }
}

/// Pass 1: identify penultimate nodes and flatten the subtrees below them.
fn penultimate_pass(nodes: &mut [CNode], fanout: usize) {
    // BFS from the root; a node with `leaf_nodes <= M` is penultimate
    // (its parent, if any, had `leaf_nodes > M`, otherwise we would not
    // have descended into it).
    let mut queue: Vec<usize> = vec![0];
    while let Some(v) = queue.pop() {
        if nodes[v].is_leaf() {
            continue;
        }
        if nodes[v].leaf_nodes <= fanout {
            flatten_to_leaves(nodes, v);
        } else {
            queue.extend(nodes[v].children.iter().copied());
        }
    }
}

/// Replaces `v`'s children with its leaf descendants, killing the internal
/// nodes in between.
fn flatten_to_leaves(nodes: &mut [CNode], v: usize) {
    let mut leaves = Vec::new();
    let mut stack = nodes[v].children.clone();
    while let Some(c) = stack.pop() {
        if nodes[c].is_leaf() {
            leaves.push(c);
        } else {
            stack.extend(nodes[c].children.iter().copied());
            nodes[c].alive = false;
        }
    }
    // Keep entry order stable (ascending range) for readable debugging.
    leaves.sort_by_key(|&c| nodes[c].entry_range.map(|(s, _)| s));
    nodes[v].children = leaves;
}

/// Pass 2: top-down collapse of binary nodes into their parents.
fn collapse_pass(nodes: &mut [CNode], fanout: usize) {
    // BFS order over the current (post-pass-1) tree.
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(v) = queue.pop_front() {
        if nodes[v].is_leaf() {
            continue;
        }
        order.push(v);
        for &c in &nodes[v].children {
            queue.push_back(c);
        }
    }

    for v in order {
        if !nodes[v].alive || nodes[v].is_leaf() {
            continue; // collapsed into its parent earlier in the walk
        }
        loop {
            if nodes[v].children.len() >= fanout {
                break;
            }
            // Candidates: non-leaf children with branch factor exactly 2,
            // so each collapse raises the parent's branch factor by 1.
            let candidate = nodes[v]
                .children
                .iter()
                .copied()
                .filter(|&c| !nodes[c].is_leaf() && nodes[c].children.len() == 2)
                .max_by_key(|&c| nodes[c].leaf_objects);
            let Some(c) = candidate else { break };
            let grandchildren = std::mem::take(&mut nodes[c].children);
            nodes[c].alive = false;
            let pos = nodes[v]
                .children
                .iter()
                .position(|&x| x == c)
                .expect("candidate is a child");
            nodes[v].children.remove(pos);
            nodes[v].children.extend(grandchildren);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::binarize::binarize;
    use super::*;
    use crate::{Entry, EntryId};
    use pubsub_geom::Rect;

    fn grid_entries(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let x = (i % 17) as f64 * 3.0;
                let y = (i / 17) as f64 * 3.0;
                Entry::new(
                    Rect::from_corners(&[x, y], &[x + 1.0, y + 1.0]).unwrap(),
                    EntryId(i as u32),
                )
            })
            .collect()
    }

    fn build(n: usize, fanout: usize) -> Vec<CNode> {
        let mut entries = grid_entries(n);
        let bin = binarize(&mut entries, fanout, 0.3);
        compress(&bin, fanout)
    }

    fn alive_internal(nodes: &[CNode]) -> Vec<usize> {
        (0..nodes.len())
            .filter(|&i| nodes[i].alive && !nodes[i].is_leaf())
            .collect()
    }

    #[test]
    fn small_set_becomes_single_leaf() {
        let nodes = build(5, 8);
        assert!(nodes[0].is_leaf());
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    fn medium_set_becomes_penultimate_root() {
        // 30 entries, fanout 8: between M and M^2 leaf capacity, the root
        // must be penultimate (all children are leaves).
        let nodes = build(30, 8);
        assert!(!nodes[0].is_leaf());
        assert!(nodes[0].children.iter().all(|&c| nodes[c].is_leaf()));
        assert!(nodes[0].children.len() <= 8);
    }

    #[test]
    fn branch_factors_never_exceed_fanout() {
        for (n, m) in [(100, 4), (300, 5), (500, 8), (1000, 16)] {
            let nodes = build(n, m);
            for &i in &alive_internal(&nodes) {
                assert!(
                    nodes[i].children.len() <= m,
                    "node {i} has bf {} > {m} (n={n})",
                    nodes[i].children.len()
                );
            }
        }
    }

    #[test]
    fn non_penultimate_internal_nodes_are_full() {
        // Paper: at the end, only penultimate and leaf nodes may have branch
        // factors below M.
        for (n, m) in [(200, 4), (600, 6)] {
            let nodes = build(n, m);
            for &i in &alive_internal(&nodes) {
                let penultimate = nodes[i].children.iter().all(|&c| nodes[c].is_leaf());
                let has_binary_child = nodes[i]
                    .children
                    .iter()
                    .any(|&c| !nodes[c].is_leaf() && nodes[c].children.len() == 2);
                if !penultimate && nodes[i].children.len() < m {
                    // Below M is allowed only when no collapse candidate
                    // remains.
                    assert!(
                        !has_binary_child,
                        "node {i} (bf {}) still has a binary child (n={n}, m={m})",
                        nodes[i].children.len()
                    );
                }
            }
        }
    }

    #[test]
    fn every_entry_reachable_exactly_once() {
        for (n, m) in [(1, 4), (7, 4), (64, 4), (97, 4), (256, 7)] {
            let nodes = build(n, m);
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            while let Some(v) = stack.pop() {
                assert!(nodes[v].alive, "dead node {v} reachable");
                if let Some((s, e)) = nodes[v].entry_range {
                    for (i, flag) in seen.iter_mut().enumerate().take(e).skip(s) {
                        assert!(!*flag, "entry {i} reached twice");
                        *flag = true;
                    }
                } else {
                    stack.extend(nodes[v].children.iter().copied());
                }
            }
            assert!(seen.iter().all(|&b| b), "not all entries reachable");
        }
    }

    #[test]
    fn leaf_object_counts_consistent() {
        let nodes = build(321, 6);
        for (i, node) in nodes.iter().enumerate() {
            if node.alive && !node.is_leaf() {
                let sum: usize = node.children.iter().map(|&c| nodes[c].leaf_objects).sum();
                assert_eq!(sum, node.leaf_objects, "node {i}");
            }
        }
    }
}
