//! The S-tree index (paper §3).

mod binarize;
mod compress;

use pubsub_geom::{Point, Rect};
use serde::{Deserialize, Serialize};

use crate::{Entry, EntryId, IndexError, InvariantViolation, SpatialIndex};

/// Construction parameters of an [`STree`].
///
/// * `fanout` — the branch factor `M`; "typically chosen to be about 40"
///   so that a node fits on a page.
/// * `skew` — the skew factor `p ∈ (0, 1/2]`; low values allow greater
///   imbalance but more design flexibility; "typically p is chosen to be
///   about 0.3".
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct STreeConfig {
    fanout: usize,
    skew: f64,
}

impl STreeConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::InvalidConfig`] unless `fanout ≥ 2` and
    /// `0 < skew ≤ 0.5`.
    pub fn new(fanout: usize, skew: f64) -> Result<Self, IndexError> {
        if fanout < 2 {
            return Err(IndexError::InvalidConfig {
                parameter: "fanout",
                constraint: "fanout >= 2",
            });
        }
        if !(skew > 0.0 && skew <= 0.5) {
            return Err(IndexError::InvalidConfig {
                parameter: "skew",
                constraint: "0 < skew <= 0.5",
            });
        }
        Ok(STreeConfig { fanout, skew })
    }

    /// The branch factor `M`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The skew factor `p`.
    pub fn skew(&self) -> f64 {
        self.skew
    }
}

impl Default for STreeConfig {
    /// The paper's typical values: `M = 40`, `p = 0.3`.
    fn default() -> Self {
        STreeConfig {
            fanout: 40,
            skew: 0.3,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Children {
    /// Leaf: a contiguous range of the (permuted) entry array.
    Leaf { start: u32, len: u32 },
    /// Internal node: arena indices of the children.
    Internal(Vec<u32>),
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) mbr: Rect,
    pub(crate) children: Children,
}

/// The S-tree: an unbalanced packed spatial index for point and region
/// queries over subscription rectangles.
///
/// Built bulk-style in two stages (binarization, then compression); see the
/// module documentation of the build stages for details. Query cost is
/// output-sensitive: subtrees whose bounding rectangle misses the query are
/// pruned.
///
/// # Example
///
/// ```
/// use pubsub_geom::{Point, Rect};
/// use pubsub_stree::{Entry, EntryId, STree, STreeConfig, SpatialIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let entries: Vec<Entry> = (0..100)
///     .map(|i| {
///         let x = f64::from(i % 10) * 10.0;
///         let y = f64::from(i / 10) * 10.0;
///         Ok(Entry::new(
///             Rect::from_corners(&[x, y], &[x + 15.0, y + 15.0])?,
///             EntryId(i),
///         ))
///     })
///     .collect::<Result<_, pubsub_geom::GeomError>>()?;
/// let tree = STree::build(entries, STreeConfig::new(8, 0.3)?)?;
/// let hits = tree.query_point(&Point::new(vec![12.0, 12.0])?);
/// assert!(!hits.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct STree {
    config: STreeConfig,
    dims: usize,
    pub(crate) entries: Vec<Entry>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<u32>,
}

impl STree {
    /// Builds an S-tree over the given entries.
    ///
    /// # Errors
    ///
    /// * [`IndexError::DimensionMismatch`] if entries disagree on
    ///   dimensionality;
    /// * [`IndexError::UnboundedRect`] if any rectangle has an infinite
    ///   side — clamp subscriptions to a finite [`pubsub_geom::Space`]
    ///   first, because the packing sweep compares MBR volumes.
    pub fn build(mut entries: Vec<Entry>, config: STreeConfig) -> Result<Self, IndexError> {
        let dims = entries.first().map_or(0, |e| e.rect.dims());
        for (index, e) in entries.iter().enumerate() {
            if e.rect.dims() != dims {
                return Err(IndexError::DimensionMismatch {
                    expected: dims,
                    got: e.rect.dims(),
                    index,
                });
            }
            if !e.rect.is_finite() {
                return Err(IndexError::UnboundedRect { index });
            }
        }
        if entries.is_empty() {
            return Ok(STree {
                config,
                dims,
                entries,
                nodes: Vec::new(),
                root: None,
            });
        }

        let bin = binarize::binarize(&mut entries, config.fanout, config.skew);
        let cnodes = compress::compress(&bin, config.fanout);

        // Renumber the surviving nodes into the final arena.
        let mut remap: Vec<Option<u32>> = vec![None; cnodes.len()];
        let mut nodes: Vec<Node> = Vec::new();
        // DFS so children are allocated after their parent; resolve child
        // indices in a second pass.
        let mut dfs = vec![0usize];
        let mut order = Vec::new();
        while let Some(v) = dfs.pop() {
            remap[v] = Some(order.len() as u32);
            order.push(v);
            if !cnodes[v].is_leaf() {
                dfs.extend(cnodes[v].children.iter().copied());
            }
        }
        for &v in &order {
            let c = &cnodes[v];
            let children = match c.entry_range {
                Some((s, e)) => Children::Leaf {
                    start: s as u32,
                    len: (e - s) as u32,
                },
                None => Children::Internal(
                    c.children
                        .iter()
                        .map(|&ch| remap[ch].expect("child visited in DFS"))
                        .collect(),
                ),
            };
            nodes.push(Node {
                mbr: bin[v].mbr.clone(),
                children,
            });
        }

        Ok(STree {
            config,
            dims,
            entries,
            nodes,
            root: Some(0),
        })
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> &STreeConfig {
        &self.config
    }

    /// The entries in leaf order (permuted relative to the build input).
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Point query that also reports how many tree nodes were visited — the
    /// in-memory analogue of the spatial-database "page accesses" metric.
    pub fn query_point_counting(&self, p: &Point) -> (Vec<EntryId>, usize) {
        let mut out = Vec::new();
        let mut visited = 0usize;
        let Some(root) = self.root else {
            return (out, 0);
        };
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            visited += 1;
            let node = &self.nodes[v as usize];
            if !node.mbr.contains_point(p) {
                continue;
            }
            match &node.children {
                Children::Leaf { start, len } => {
                    for e in &self.entries[*start as usize..(*start + *len) as usize] {
                        if e.rect.contains_point(p) {
                            out.push(e.id);
                        }
                    }
                }
                Children::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
        (out, visited)
    }

    /// Computes structural statistics (see [`STreeStats`]).
    pub fn stats(&self) -> STreeStats {
        let mut stats = STreeStats {
            entry_count: self.entries.len(),
            node_count: self.nodes.len(),
            ..STreeStats::default()
        };
        let Some(root) = self.root else {
            return stats;
        };
        let mut min_depth = usize::MAX;
        let mut max_depth = 0usize;
        let mut depth_sum = 0usize;
        let mut fanout_sum = 0usize;
        let mut stack = vec![(root, 0usize)];
        while let Some((v, depth)) = stack.pop() {
            match &self.nodes[v as usize].children {
                Children::Leaf { .. } => {
                    stats.leaf_count += 1;
                    min_depth = min_depth.min(depth);
                    max_depth = max_depth.max(depth);
                    depth_sum += depth;
                }
                Children::Internal(children) => {
                    stats.internal_count += 1;
                    fanout_sum += children.len();
                    for &c in children {
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        stats.min_leaf_depth = min_depth;
        stats.max_leaf_depth = max_depth;
        stats.avg_leaf_depth = depth_sum as f64 / stats.leaf_count.max(1) as f64;
        stats.avg_internal_fanout = fanout_sum as f64 / stats.internal_count.max(1) as f64;
        // Packing quality: how much sibling MBRs overlap (a point query
        // must descend into every overlapping sibling, so lower is
        // better — the classic R-tree quality metric).
        let mut overlap = 0.0;
        let mut child_volume = 0.0;
        for node in &self.nodes {
            if let Children::Internal(children) = &node.children {
                for (i, &a) in children.iter().enumerate() {
                    let mbr_a = &self.nodes[a as usize].mbr;
                    child_volume += mbr_a.volume();
                    for &b in &children[i + 1..] {
                        if let Some(common) = mbr_a.intersection(&self.nodes[b as usize].mbr) {
                            overlap += common.volume();
                        }
                    }
                }
            }
        }
        stats.sibling_overlap_volume = overlap;
        stats.sibling_overlap_fraction = if child_volume > 0.0 {
            overlap / child_volume
        } else {
            0.0
        };
        stats
    }

    /// Verifies the structural invariants of the tree. Used by tests; a
    /// correctly built tree always passes.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        let Some(root) = self.root else {
            return if self.entries.is_empty() && self.nodes.is_empty() {
                Ok(())
            } else {
                Err(InvariantViolation::DanglingNode { node: 0 })
            };
        };
        let mut covered = vec![false; self.entries.len()];
        let mut reachable = 0usize;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = self
                .nodes
                .get(v as usize)
                .ok_or(InvariantViolation::DanglingNode { node: v as usize })?;
            match &node.children {
                Children::Leaf { start, len } => {
                    if *len as usize > self.config.fanout {
                        return Err(InvariantViolation::FanoutExceeded {
                            node: v as usize,
                            got: *len as usize,
                            max: self.config.fanout,
                        });
                    }
                    // Indexes entries and covered in lockstep.
                    #[allow(clippy::needless_range_loop)]
                    for i in *start as usize..(*start + *len) as usize {
                        let e = self
                            .entries
                            .get(i)
                            .ok_or(InvariantViolation::DanglingNode { node: v as usize })?;
                        if !node.mbr.contains_rect(&e.rect) {
                            return Err(InvariantViolation::MbrNotCovering { node: v as usize });
                        }
                        if covered[i] {
                            return Err(InvariantViolation::EntriesNotPartitioned {
                                reachable: reachable + 1,
                                stored: self.entries.len(),
                            });
                        }
                        covered[i] = true;
                        reachable += 1;
                    }
                }
                Children::Internal(children) => {
                    if children.len() > self.config.fanout {
                        return Err(InvariantViolation::FanoutExceeded {
                            node: v as usize,
                            got: children.len(),
                            max: self.config.fanout,
                        });
                    }
                    for &c in children {
                        let child = self
                            .nodes
                            .get(c as usize)
                            .ok_or(InvariantViolation::DanglingNode { node: c as usize })?;
                        if !node.mbr.contains_rect(&child.mbr) {
                            return Err(InvariantViolation::MbrNotCovering { node: v as usize });
                        }
                        stack.push(c);
                    }
                }
            }
        }
        if reachable != self.entries.len() {
            return Err(InvariantViolation::EntriesNotPartitioned {
                reachable,
                stored: self.entries.len(),
            });
        }
        Ok(())
    }
}

impl SpatialIndex for STree {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn query_point_into(&self, p: &Point, out: &mut Vec<EntryId>) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = &self.nodes[v as usize];
            if !node.mbr.contains_point(p) {
                continue;
            }
            match &node.children {
                Children::Leaf { start, len } => {
                    for e in &self.entries[*start as usize..(*start + *len) as usize] {
                        if e.rect.contains_point(p) {
                            out.push(e.id);
                        }
                    }
                }
                Children::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
    }

    fn query_region_into(&self, r: &Rect, out: &mut Vec<EntryId>) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = &self.nodes[v as usize];
            if !node.mbr.intersects(r) {
                continue;
            }
            match &node.children {
                Children::Leaf { start, len } => {
                    for e in &self.entries[*start as usize..(*start + *len) as usize] {
                        if e.rect.intersects(r) {
                            out.push(e.id);
                        }
                    }
                }
                Children::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
    }

    fn count_point(&self, p: &Point) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut count = 0usize;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = &self.nodes[v as usize];
            if !node.mbr.contains_point(p) {
                continue;
            }
            match &node.children {
                Children::Leaf { start, len } => {
                    count += self.entries[*start as usize..(*start + *len) as usize]
                        .iter()
                        .filter(|e| e.rect.contains_point(p))
                        .count();
                }
                Children::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
        count
    }
}

/// Structural statistics of a built [`STree`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct STreeStats {
    /// Total entries indexed.
    pub entry_count: usize,
    /// Total nodes in the arena.
    pub node_count: usize,
    /// Number of leaf nodes.
    pub leaf_count: usize,
    /// Number of internal nodes.
    pub internal_count: usize,
    /// Depth of the shallowest leaf (root = depth 0).
    pub min_leaf_depth: usize,
    /// Depth of the deepest leaf. S-trees are deliberately unbalanced, so
    /// this may exceed `min_leaf_depth`.
    pub max_leaf_depth: usize,
    /// Mean leaf depth.
    pub avg_leaf_depth: f64,
    /// Mean branch factor over internal nodes.
    pub avg_internal_fanout: f64,
    /// Total pairwise overlap volume among sibling MBRs — the packing
    /// quality metric the binarization sweep implicitly minimizes.
    pub sibling_overlap_volume: f64,
    /// `sibling_overlap_volume` normalized by the summed child-MBR
    /// volumes (`0` = perfectly disjoint siblings).
    pub sibling_overlap_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Interval;

    fn entries_grid(n: u32) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let x = f64::from(i % 25) * 4.0;
                let y = f64::from(i / 25) * 4.0;
                Entry::new(
                    Rect::from_corners(&[x, y], &[x + 6.0, y + 6.0]).unwrap(),
                    EntryId(i),
                )
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(STreeConfig::new(1, 0.3).is_err());
        assert!(STreeConfig::new(4, 0.0).is_err());
        assert!(STreeConfig::new(4, 0.6).is_err());
        let c = STreeConfig::new(4, 0.5).unwrap();
        assert_eq!(c.fanout(), 4);
        assert_eq!(c.skew(), 0.5);
        assert_eq!(STreeConfig::default().fanout(), 40);
    }

    #[test]
    fn empty_tree() {
        let t = STree::build(vec![], STreeConfig::default()).unwrap();
        assert!(t.is_empty());
        assert!(t.validate().is_ok());
        assert!(t.query_point(&Point::new(vec![1.0]).unwrap()).is_empty());
        let (hits, visited) = t.query_point_counting(&Point::new(vec![1.0]).unwrap());
        assert!(hits.is_empty());
        assert_eq!(visited, 0);
    }

    #[test]
    fn rejects_unbounded_rects() {
        let e = vec![Entry::new(
            Rect::new(vec![Interval::at_least(0.0)]).unwrap(),
            EntryId(0),
        )];
        assert!(matches!(
            STree::build(e, STreeConfig::default()),
            Err(IndexError::UnboundedRect { index: 0 })
        ));
    }

    #[test]
    fn rejects_mixed_dimensions() {
        let e = vec![
            Entry::new(Rect::from_corners(&[0.0], &[1.0]).unwrap(), EntryId(0)),
            Entry::new(
                Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap(),
                EntryId(1),
            ),
        ];
        assert!(matches!(
            STree::build(e, STreeConfig::default()),
            Err(IndexError::DimensionMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn queries_match_linear_scan() {
        let entries = entries_grid(400);
        let oracle = crate::LinearScan::new(entries.clone()).unwrap();
        let tree = STree::build(entries, STreeConfig::new(8, 0.3).unwrap()).unwrap();
        tree.validate().unwrap();
        for i in 0..50 {
            let p =
                Point::new(vec![f64::from(i) * 2.3 % 100.0, f64::from(i) * 3.7 % 64.0]).unwrap();
            let mut a = tree.query_point(&p);
            let mut b = oracle.query_point(&p);
            a.sort();
            b.sort();
            assert_eq!(a, b, "point {p:?}");
        }
        let r = Rect::from_corners(&[10.0, 10.0], &[30.0, 30.0]).unwrap();
        let mut a = tree.query_region(&r);
        let mut b = oracle.query_region(&r);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn counting_query_matches_plain_query_and_prunes() {
        let entries = entries_grid(625);
        let tree = STree::build(entries, STreeConfig::new(8, 0.3).unwrap()).unwrap();
        let p = Point::new(vec![50.0, 50.0]).unwrap();
        let (hits, visited) = tree.query_point_counting(&p);
        let mut hits2 = tree.query_point(&p);
        let mut hits = hits;
        hits.sort();
        hits2.sort();
        assert_eq!(hits, hits2);
        assert!(visited > 0);
        assert!(
            visited < tree.stats().node_count,
            "a point query should prune some of the tree"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let entries = entries_grid(500);
        let tree = STree::build(entries, STreeConfig::new(10, 0.3).unwrap()).unwrap();
        let s = tree.stats();
        assert_eq!(s.entry_count, 500);
        assert_eq!(s.leaf_count + s.internal_count, s.node_count);
        assert!(s.min_leaf_depth <= s.max_leaf_depth);
        assert!(s.avg_leaf_depth >= s.min_leaf_depth as f64);
        assert!(s.avg_leaf_depth <= s.max_leaf_depth as f64);
        assert!(s.avg_internal_fanout <= 10.0);
    }

    #[test]
    fn overlap_stats_detect_packing_quality() {
        // Disjoint unit squares on a coarse grid: siblings can overlap
        // only marginally.
        let disjoint: Vec<Entry> = (0..100u32)
            .map(|i| {
                let x = f64::from(i % 10) * 10.0;
                let y = f64::from(i / 10) * 10.0;
                Entry::new(
                    Rect::from_corners(&[x, y], &[x + 1.0, y + 1.0]).unwrap(),
                    EntryId(i),
                )
            })
            .collect();
        let t1 = STree::build(disjoint, STreeConfig::new(4, 0.3).unwrap()).unwrap();
        let s1 = t1.stats();
        assert!(s1.sibling_overlap_fraction < 0.05, "{s1:?}");

        // Heavily overlapping rects: siblings must overlap a lot.
        let overlapping: Vec<Entry> = (0..100u32)
            .map(|i| {
                let x = f64::from(i % 10);
                let y = f64::from(i / 10);
                Entry::new(
                    Rect::from_corners(&[x, y], &[x + 50.0, y + 50.0]).unwrap(),
                    EntryId(i),
                )
            })
            .collect();
        let t2 = STree::build(overlapping, STreeConfig::new(4, 0.3).unwrap()).unwrap();
        let s2 = t2.stats();
        assert!(s2.sibling_overlap_fraction > s1.sibling_overlap_fraction);
        assert!(s2.sibling_overlap_volume > 0.0);
    }

    #[test]
    fn validate_passes_across_configs() {
        for &(m, p) in &[(2usize, 0.5f64), (4, 0.25), (8, 0.3), (40, 0.3), (3, 0.1)] {
            for n in [1u32, 2, 3, 7, 39, 40, 41, 160, 643] {
                let tree = STree::build(entries_grid(n), STreeConfig::new(m, p).unwrap()).unwrap();
                tree.validate()
                    .unwrap_or_else(|e| panic!("n={n} m={m} p={p}: {e}"));
            }
        }
    }

    #[test]
    fn duplicate_rects_are_all_found() {
        let r = Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap();
        let entries: Vec<Entry> = (0..100)
            .map(|i| Entry::new(r.clone(), EntryId(i)))
            .collect();
        let tree = STree::build(entries, STreeConfig::new(4, 0.3).unwrap()).unwrap();
        tree.validate().unwrap();
        let hits = tree.query_point(&Point::new(vec![0.5, 0.5]).unwrap());
        assert_eq!(hits.len(), 100);
    }
}
