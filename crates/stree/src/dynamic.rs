//! Dynamic subscription support (extension beyond the paper).
//!
//! The paper treats the subscription set as static: the S-tree is packed
//! once from the full set. Real brokers see churn. `DynamicIndex` layers
//! insertion and removal on top of the bulk-built [`STree`] using the
//! churn primitives from [`crate::overlay`]: new entries go to a
//! [`DeltaOverlay`] scanned linearly, removals are masked by
//! [`Tombstones`], and when churn exceeds a configurable fraction of the
//! index size the tree is rebuilt from scratch — amortizing the excellent
//! bulk packing against update cost. `pubsub_core::Broker` applies the
//! same two primitives to its flat matcher between engine-snapshot
//! recompiles; this wrapper is the standalone, single-index deployment.

use pubsub_geom::{Point, Rect};

use crate::{
    DeltaOverlay, Entry, EntryId, IndexError, STree, STreeConfig, SpatialIndex, Tombstones,
};

/// A churn-tolerant wrapper around the bulk-built [`STree`].
///
/// # Example
///
/// ```
/// use pubsub_geom::{Point, Rect};
/// use pubsub_stree::{DynamicIndex, Entry, EntryId, STreeConfig, SpatialIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut idx = DynamicIndex::new(vec![], STreeConfig::default(), 0.25)?;
/// idx.insert(Entry::new(Rect::from_corners(&[0.0], &[10.0])?, EntryId(1)))?;
/// assert_eq!(idx.query_point(&Point::new(vec![5.0])?), vec![EntryId(1)]);
/// idx.remove(EntryId(1))?;
/// assert!(idx.query_point(&Point::new(vec![5.0])?).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicIndex {
    base: STree,
    config: STreeConfig,
    pending: DeltaOverlay,
    removed: Tombstones,
    /// Rebuild when `(pending + removed) > rebuild_fraction * live_len`.
    rebuild_fraction: f64,
    rebuilds: usize,
}

impl DynamicIndex {
    /// Creates a dynamic index seeded with `entries`.
    ///
    /// `rebuild_fraction` is the churn ratio that triggers a rebuild; `0.25`
    /// is a reasonable default (rebuild when churn reaches a quarter of the
    /// live size).
    ///
    /// # Errors
    ///
    /// Propagates [`STree::build`] errors and rejects a non-positive or
    /// non-finite `rebuild_fraction` via [`IndexError::InvalidConfig`].
    pub fn new(
        entries: Vec<Entry>,
        config: STreeConfig,
        rebuild_fraction: f64,
    ) -> Result<Self, IndexError> {
        if !(rebuild_fraction > 0.0 && rebuild_fraction.is_finite()) {
            return Err(IndexError::InvalidConfig {
                parameter: "rebuild_fraction",
                constraint: "0 < rebuild_fraction < inf",
            });
        }
        Ok(DynamicIndex {
            base: STree::build(entries, config)?,
            config,
            pending: DeltaOverlay::new(),
            removed: Tombstones::new(),
            rebuild_fraction,
            rebuilds: 0,
        })
    }

    /// Inserts a subscription. Ids must be unique across live entries.
    ///
    /// # Errors
    ///
    /// * [`IndexError::QueryDimensionMismatch`] on dimensionality mismatch
    ///   with a non-empty index;
    /// * [`IndexError::UnboundedRect`] for unbounded rectangles;
    /// * [`IndexError::InvalidConfig`] if the id is already live.
    pub fn insert(&mut self, entry: Entry) -> Result<(), IndexError> {
        let dims = self.dims();
        if dims != 0 && entry.rect.dims() != dims {
            return Err(IndexError::QueryDimensionMismatch {
                expected: dims,
                got: entry.rect.dims(),
            });
        }
        if !entry.rect.is_finite() {
            return Err(IndexError::UnboundedRect { index: 0 });
        }
        if self.contains_id(entry.id) {
            return Err(IndexError::InvalidConfig {
                parameter: "entry.id",
                constraint: "ids must be unique among live entries",
            });
        }
        // Re-using a previously removed id: purge the masked base entry
        // first so the mask cannot hide the new entry's id.
        if self.removed.contains(entry.id) {
            self.rebuild();
        }
        self.pending.insert(entry)?;
        self.maybe_rebuild();
        Ok(())
    }

    /// Removes a live subscription by id.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownEntry`] if the id is not live.
    pub fn remove(&mut self, id: EntryId) -> Result<(), IndexError> {
        if self.pending.remove(id) {
            return Ok(());
        }
        if self.removed.contains(id) || !self.base.entries().iter().any(|e| e.id == id) {
            return Err(IndexError::UnknownEntry { id: id.0 });
        }
        self.removed.insert(id);
        self.maybe_rebuild();
        Ok(())
    }

    /// `true` if the id refers to a live entry.
    pub fn contains_id(&self, id: EntryId) -> bool {
        self.pending.entries().iter().any(|e| e.id == id)
            || (!self.removed.contains(id) && self.base.entries().iter().any(|e| e.id == id))
    }

    /// How many times the base tree has been rebuilt.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Forces an immediate rebuild, folding pending and removed entries
    /// into a fresh S-tree.
    pub fn rebuild(&mut self) {
        let mut live: Vec<Entry> = self
            .base
            .entries()
            .iter()
            .filter(|e| !self.removed.contains(e.id))
            .cloned()
            .collect();
        live.append(&mut self.pending.drain());
        self.removed.clear();
        self.base =
            STree::build(live, self.config).expect("live entries were validated on insertion");
        self.rebuilds += 1;
    }

    fn maybe_rebuild(&mut self) {
        let churn = self.pending.len() + self.removed.len();
        let live = self.len().max(1);
        if churn as f64 > self.rebuild_fraction * live as f64 {
            self.rebuild();
        }
    }
}

impl SpatialIndex for DynamicIndex {
    fn len(&self) -> usize {
        self.base.len() - self.removed.len() + self.pending.len()
    }

    fn dims(&self) -> usize {
        if self.base.dims() != 0 {
            self.base.dims()
        } else {
            self.pending.entries().first().map_or(0, |e| e.rect.dims())
        }
    }

    fn query_point_into(&self, p: &Point, out: &mut Vec<EntryId>) {
        let before = out.len();
        self.base.query_point_into(p, out);
        if !self.removed.is_empty() {
            let removed = &self.removed;
            let mut i = before;
            while i < out.len() {
                if removed.contains(out[i]) {
                    out.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        self.pending.query_point_into(p, out);
    }

    fn query_region_into(&self, r: &Rect, out: &mut Vec<EntryId>) {
        let before = out.len();
        self.base.query_region_into(r, out);
        if !self.removed.is_empty() {
            let removed = &self.removed;
            let mut i = before;
            while i < out.len() {
                if removed.contains(out[i]) {
                    out.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        self.pending.query_region_into(r, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u32, lo: f64, hi: f64) -> Entry {
        Entry::new(Rect::from_corners(&[lo], &[hi]).unwrap(), EntryId(i))
    }

    fn cfg() -> STreeConfig {
        STreeConfig::new(4, 0.3).unwrap()
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut idx = DynamicIndex::new(vec![entry(0, 0.0, 10.0)], cfg(), 10.0).unwrap();
        idx.insert(entry(1, 5.0, 15.0)).unwrap();
        let p = Point::new(vec![7.0]).unwrap();
        let mut hits = idx.query_point(&p);
        hits.sort();
        assert_eq!(hits, vec![EntryId(0), EntryId(1)]);
        assert_eq!(idx.len(), 2);

        idx.remove(EntryId(0)).unwrap();
        assert_eq!(idx.query_point(&p), vec![EntryId(1)]);
        assert_eq!(idx.len(), 1);
        assert!(!idx.contains_id(EntryId(0)));
        assert!(idx.contains_id(EntryId(1)));
    }

    #[test]
    fn duplicate_id_rejected_and_unknown_remove_rejected() {
        let mut idx = DynamicIndex::new(vec![entry(0, 0.0, 1.0)], cfg(), 10.0).unwrap();
        assert!(matches!(
            idx.insert(entry(0, 2.0, 3.0)),
            Err(IndexError::InvalidConfig { .. })
        ));
        assert!(matches!(
            idx.remove(EntryId(9)),
            Err(IndexError::UnknownEntry { id: 9 })
        ));
        // Removing twice fails the second time.
        idx.remove(EntryId(0)).unwrap();
        assert!(idx.remove(EntryId(0)).is_err());
    }

    #[test]
    fn rebuild_triggers_on_churn() {
        let base: Vec<Entry> = (0..20)
            .map(|i| entry(i, f64::from(i), f64::from(i) + 2.0))
            .collect();
        let mut idx = DynamicIndex::new(base, cfg(), 0.25).unwrap();
        assert_eq!(idx.rebuild_count(), 0);
        for i in 20..30 {
            idx.insert(entry(i, f64::from(i), f64::from(i) + 2.0))
                .unwrap();
        }
        assert!(idx.rebuild_count() >= 1, "churn must trigger a rebuild");
        // All 30 entries still queryable after rebuilds.
        let mut total = 0;
        for i in 0..30 {
            let p = Point::new(vec![f64::from(i) + 1.0]).unwrap();
            total += idx.query_point(&p).len();
        }
        assert!(total > 0);
        assert_eq!(idx.len(), 30);
    }

    #[test]
    fn reinsert_after_remove() {
        let mut idx = DynamicIndex::new(vec![entry(0, 0.0, 10.0)], cfg(), 100.0).unwrap();
        idx.remove(EntryId(0)).unwrap();
        idx.insert(entry(0, 20.0, 30.0)).unwrap();
        assert!(idx.contains_id(EntryId(0)));
        assert_eq!(
            idx.query_point(&Point::new(vec![25.0]).unwrap()),
            vec![EntryId(0)]
        );
        assert!(idx.query_point(&Point::new(vec![5.0]).unwrap()).is_empty());
    }

    #[test]
    fn dimension_checks() {
        let mut idx = DynamicIndex::new(vec![entry(0, 0.0, 1.0)], cfg(), 10.0).unwrap();
        let e2 = Entry::new(
            Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap(),
            EntryId(5),
        );
        assert!(matches!(
            idx.insert(e2),
            Err(IndexError::QueryDimensionMismatch { .. })
        ));
    }

    #[test]
    fn invalid_rebuild_fraction() {
        assert!(DynamicIndex::new(vec![], cfg(), 0.0).is_err());
        assert!(DynamicIndex::new(vec![], cfg(), f64::NAN).is_err());
    }
}
