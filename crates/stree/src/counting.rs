//! The counting matching algorithm — the predicate-indexing baseline the
//! paper cites (Fabret–Llirbat–Pereira–Shasha, INRIA 2000; also the style
//! of Gryphon's matching work).
//!
//! Instead of indexing subscriptions as geometric objects, the counting
//! algorithm indexes each *dimension* separately: for an event `ω`, a
//! per-dimension stabbing query yields the subscriptions whose predicate
//! on that attribute is satisfied; a subscription matches when its
//! per-dimension hit count reaches its dimensionality.
//!
//! Stabbing is answered with a segment tree over the elementary intervals
//! of each dimension's endpoints (±∞ sentinels make unbounded predicates
//! first-class, so — unlike the geometric trees — this index accepts
//! unclamped subscriptions). A point query costs
//! `O(N·log k + matches·N)` in the worst case.

use pubsub_geom::{Point, Rect};

use crate::{Entry, EntryId, IndexError, SpatialIndex};

/// One dimension's stabbing structure: a segment tree over the elementary
/// intervals between sorted predicate endpoints.
#[derive(Debug, Clone)]
struct DimSegmentTree {
    /// Sorted distinct finite endpoints; elementary interval `j` covers
    /// `(xs[j-1], xs[j]]` with `xs[-1] = -∞` and `xs[len] = +∞`
    /// implicitly, giving `xs.len() + 1` elementary intervals.
    xs: Vec<f64>,
    /// Number of elementary intervals (`xs.len() + 1`).
    leaves: usize,
    /// Iterative segment tree: `nodes[leaves + j]` is elementary interval
    /// `j`; each node lists the entries whose interval covers the node's
    /// whole span.
    nodes: Vec<Vec<u32>>,
}

impl DimSegmentTree {
    fn build(intervals: impl Iterator<Item = (f64, f64)> + Clone) -> Self {
        let mut xs: Vec<f64> = intervals
            .clone()
            .flat_map(|(lo, hi)| [lo, hi])
            .filter(|v| v.is_finite())
            .collect();
        xs.sort_unstable_by(f64::total_cmp);
        xs.dedup();
        let leaves = xs.len() + 1;
        let mut tree = DimSegmentTree {
            xs,
            leaves,
            nodes: vec![Vec::new(); 2 * leaves],
        };
        for (i, (lo, hi)) in intervals.enumerate() {
            tree.insert(lo, hi, i as u32);
        }
        tree
    }

    /// Index of the elementary interval containing `x`: the number of
    /// endpoints strictly below `x` (elementary interval `j` is
    /// `(xs[j-1], xs[j]]`).
    fn elementary_of(&self, x: f64) -> usize {
        self.xs.partition_point(|&e| e < x)
    }

    /// Elementary index range `[l, r)` covered by the half-open predicate
    /// `(lo, hi]`: all elementary intervals lying strictly inside it.
    fn elementary_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        // First elementary interval whose span is inside (lo, hi]: the one
        // starting at endpoint `lo` (or -inf). Since lo and hi are
        // endpoints (or infinite), spans never straddle the bounds.
        let l = if lo == f64::NEG_INFINITY {
            0
        } else {
            self.xs.partition_point(|&e| e < lo) + 1
        };
        let r = if hi == f64::INFINITY {
            self.leaves
        } else {
            self.xs.partition_point(|&e| e < hi) + 1
        };
        (l, r.min(self.leaves))
    }

    fn insert(&mut self, lo: f64, hi: f64, id: u32) {
        let (mut l, mut r) = self.elementary_range(lo, hi);
        if l >= r {
            return; // empty predicate interval matches nothing
        }
        l += self.leaves;
        r += self.leaves;
        while l < r {
            if l & 1 == 1 {
                self.nodes[l].push(id);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                self.nodes[r].push(id);
            }
            l /= 2;
            r /= 2;
        }
    }

    /// Visits every entry whose predicate interval contains `x`.
    fn stab<F: FnMut(u32)>(&self, x: f64, mut visit: F) {
        let mut node = self.leaves + self.elementary_of(x);
        while node >= 1 {
            for &id in &self.nodes[node] {
                visit(id);
            }
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }
}

/// The counting matcher: per-dimension segment trees plus a hit counter.
///
/// # Example
///
/// ```
/// use pubsub_geom::{Interval, Point, Rect};
/// use pubsub_stree::{CountingIndex, Entry, EntryId, SpatialIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Unbounded predicates are fine here - no clamping needed.
/// let idx = CountingIndex::new(vec![Entry::new(
///     Rect::new(vec![Interval::new(75.0, 80.0)?, Interval::at_least(999.0)])?,
///     EntryId(0),
/// )])?;
/// assert_eq!(idx.query_point(&Point::new(vec![78.0, 1500.0])?), vec![EntryId(0)]);
/// assert!(idx.query_point(&Point::new(vec![74.0, 1500.0])?).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CountingIndex {
    entries: Vec<Entry>,
    dims: usize,
    per_dim: Vec<DimSegmentTree>,
    /// Scratch hit counters with epoch stamping so queries avoid an O(k)
    /// clear (interior mutability keeps the trait's `&self` signature).
    scratch: std::cell::RefCell<Scratch>,
}

#[derive(Debug, Clone, Default)]
struct Scratch {
    epoch: u64,
    stamp: Vec<u64>,
    count: Vec<u32>,
}

impl CountingIndex {
    /// Builds the counting index.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::DimensionMismatch`] if entries disagree on
    /// dimensionality. Unbounded rectangles are accepted.
    pub fn new(entries: Vec<Entry>) -> Result<Self, IndexError> {
        let dims = entries.first().map_or(0, |e| e.rect.dims());
        for (index, e) in entries.iter().enumerate() {
            if e.rect.dims() != dims {
                return Err(IndexError::DimensionMismatch {
                    expected: dims,
                    got: e.rect.dims(),
                    index,
                });
            }
        }
        let per_dim = (0..dims)
            .map(|d| {
                DimSegmentTree::build(
                    entries
                        .iter()
                        .map(move |e| (e.rect.side(d).lo(), e.rect.side(d).hi())),
                )
            })
            .collect();
        let k = entries.len();
        Ok(CountingIndex {
            entries,
            dims,
            per_dim,
            scratch: std::cell::RefCell::new(Scratch {
                epoch: 0,
                stamp: vec![0; k],
                count: vec![0; k],
            }),
        })
    }

    /// Point query that also reports how many candidate increments the
    /// counting pass performed — the counting algorithm's analogue of
    /// "nodes visited".
    pub fn query_point_counting(&self, p: &Point) -> (Vec<EntryId>, usize) {
        let mut out = Vec::new();
        let increments = self.count_into(p, &mut out);
        (out, increments)
    }

    fn count_into(&self, p: &Point, out: &mut Vec<EntryId>) -> usize {
        if self.entries.is_empty() {
            return 0;
        }
        debug_assert_eq!(p.dims(), self.dims);
        let mut scratch = self.scratch.borrow_mut();
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        let Scratch { stamp, count, .. } = &mut *scratch;
        let mut increments = 0usize;
        let target = self.dims as u32;
        for (d, tree) in self.per_dim.iter().enumerate() {
            let x = p.coord(d);
            tree.stab(x, |id| {
                let i = id as usize;
                if stamp[i] != epoch {
                    stamp[i] = epoch;
                    count[i] = 0;
                }
                count[i] += 1;
                increments += 1;
                if count[i] == target {
                    out.push(self.entries[i].id);
                }
            });
        }
        increments
    }
}

impl SpatialIndex for CountingIndex {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn query_point_into(&self, p: &Point, out: &mut Vec<EntryId>) {
        self.count_into(p, out);
    }

    /// Region queries fall back to a scan: the counting structure indexes
    /// stabbing, not interval overlap. Matching (the pub-sub hot path) is
    /// point queries.
    fn query_region_into(&self, r: &Rect, out: &mut Vec<EntryId>) {
        for e in &self.entries {
            if e.rect.intersects(r) {
                out.push(e.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;
    use pubsub_geom::Interval;

    fn grid_entries(n: u32) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let x = f64::from(i % 20) * 3.0;
                let y = f64::from(i / 20) * 3.0;
                Entry::new(
                    Rect::from_corners(&[x, y], &[x + 5.0, y + 5.0]).unwrap(),
                    EntryId(i),
                )
            })
            .collect()
    }

    #[test]
    fn matches_linear_scan_on_grid_workload() {
        let entries = grid_entries(300);
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let idx = CountingIndex::new(entries).unwrap();
        for i in 0..60 {
            let p = Point::new(vec![f64::from(i) * 1.7 % 70.0, f64::from(i) * 2.9 % 50.0]).unwrap();
            let mut a = idx.query_point(&p);
            let mut b = oracle.query_point(&p);
            a.sort();
            b.sort();
            assert_eq!(a, b, "point {p:?}");
        }
    }

    #[test]
    fn unbounded_predicates_work_unclamped() {
        let entries = vec![
            Entry::new(
                Rect::new(vec![Interval::at_least(10.0), Interval::unbounded()]).unwrap(),
                EntryId(0),
            ),
            Entry::new(
                Rect::new(vec![
                    Interval::at_most(5.0),
                    Interval::new(0.0, 1.0).unwrap(),
                ])
                .unwrap(),
                EntryId(1),
            ),
            Entry::new(Rect::unbounded(2), EntryId(2)),
        ];
        let idx = CountingIndex::new(entries).unwrap();
        let q = |x: f64, y: f64| {
            let mut v = idx.query_point(&Point::new(vec![x, y]).unwrap());
            v.sort();
            v
        };
        assert_eq!(q(50.0, -1000.0), vec![EntryId(0), EntryId(2)]);
        assert_eq!(q(3.0, 0.5), vec![EntryId(1), EntryId(2)]);
        assert_eq!(q(7.0, 0.5), vec![EntryId(2)]);
    }

    #[test]
    fn half_open_boundaries() {
        let idx = CountingIndex::new(vec![Entry::new(
            Rect::from_corners(&[0.0], &[10.0]).unwrap(),
            EntryId(0),
        )])
        .unwrap();
        assert!(idx.query_point(&Point::new(vec![0.0]).unwrap()).is_empty());
        assert_eq!(
            idx.query_point(&Point::new(vec![10.0]).unwrap()),
            vec![EntryId(0)]
        );
        assert_eq!(
            idx.query_point(&Point::new(vec![0.0001]).unwrap()),
            vec![EntryId(0)]
        );
        assert!(idx.query_point(&Point::new(vec![10.1]).unwrap()).is_empty());
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let idx = CountingIndex::new(vec![]).unwrap();
        assert!(idx.is_empty());
        assert!(idx.query_point(&Point::new(vec![1.0]).unwrap()).is_empty());

        // An empty interval matches nothing.
        let idx = CountingIndex::new(vec![Entry::new(
            Rect::new(vec![Interval::empty_at(5.0)]).unwrap(),
            EntryId(0),
        )])
        .unwrap();
        assert!(idx.query_point(&Point::new(vec![5.0]).unwrap()).is_empty());
    }

    #[test]
    fn duplicate_rectangles_all_match() {
        let r = Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap();
        let entries: Vec<Entry> = (0..50).map(|i| Entry::new(r.clone(), EntryId(i))).collect();
        let idx = CountingIndex::new(entries).unwrap();
        assert_eq!(
            idx.query_point(&Point::new(vec![0.5, 0.5]).unwrap()).len(),
            50
        );
    }

    #[test]
    fn counting_reports_increments() {
        let idx = CountingIndex::new(grid_entries(100)).unwrap();
        let (hits, increments) = idx.query_point_counting(&Point::new(vec![10.0, 4.0]).unwrap());
        assert!(!hits.is_empty());
        // Each match required exactly `dims` increments; partial matches
        // may add more.
        assert!(increments >= hits.len() * 2);
    }

    #[test]
    fn region_fallback_matches_oracle() {
        let entries = grid_entries(150);
        let oracle = LinearScan::new(entries.clone()).unwrap();
        let idx = CountingIndex::new(entries).unwrap();
        let r = Rect::from_corners(&[5.0, 5.0], &[20.0, 14.0]).unwrap();
        let mut a = idx.query_region(&r);
        let mut b = oracle.query_region(&r);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_dims_rejected() {
        let bad = vec![
            Entry::new(Rect::from_corners(&[0.0], &[1.0]).unwrap(), EntryId(0)),
            Entry::new(
                Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap(),
                EntryId(1),
            ),
        ];
        assert!(matches!(
            CountingIndex::new(bad),
            Err(IndexError::DimensionMismatch { index: 1, .. })
        ));
    }
}
