use std::fmt;

use serde::{Deserialize, Serialize};

use pubsub_geom::Rect;

/// Identifier carried by an index entry — in the pub-sub application this is
/// the subscription identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EntryId(pub u32);

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "entry#{}", self.0)
    }
}

/// A leaf record of a spatial index: `(I, subscription-identifier)` in the
/// paper's notation, where `I` is the subscription rectangle.
///
/// This is passive compound data, so the fields are public.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Entry {
    /// The subscription rectangle.
    pub rect: Rect,
    /// The identifier reported by queries.
    pub id: EntryId,
}

impl Entry {
    /// Creates an entry pairing a rectangle with its identifier.
    pub fn new(rect: Rect, id: EntryId) -> Self {
        Entry { rect, id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(EntryId(7).to_string(), "entry#7");
        assert!(EntryId(1) < EntryId(2));
    }

    #[test]
    fn entry_construction() {
        let r = Rect::from_corners(&[0.0], &[1.0]).unwrap();
        let e = Entry::new(r.clone(), EntryId(3));
        assert_eq!(e.rect, r);
        assert_eq!(e.id, EntryId(3));
    }
}
