//! Bottom-up packed R-tree (the Kamel–Faloutsos baseline).
//!
//! Entries are sorted by the position of their rectangle's center along a
//! space-filling curve, chunked into leaves of `fanout` entries, and upper
//! levels are built by chunking consecutive nodes — the classic
//! "Hilbert-packed" construction the paper contrasts with the top-down
//! S-tree packing.

use pubsub_geom::{Point, Rect};
use serde::{Deserialize, Serialize};

use crate::hilbert::{curve_index, CurveKind};
use crate::{Entry, EntryId, IndexError, InvariantViolation, SpatialIndex};

/// Construction parameters of a [`PackedRTree`].
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct PackedConfig {
    fanout: usize,
    curve: CurveKind,
    bits: u32,
}

impl PackedConfig {
    /// Creates a configuration.
    ///
    /// `bits` is the per-dimension quantization used for curve keys.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::InvalidConfig`] unless `fanout ≥ 2` and
    /// `1 ≤ bits ≤ 16`.
    pub fn new(fanout: usize, curve: CurveKind, bits: u32) -> Result<Self, IndexError> {
        if fanout < 2 {
            return Err(IndexError::InvalidConfig {
                parameter: "fanout",
                constraint: "fanout >= 2",
            });
        }
        if !(1..=16).contains(&bits) {
            return Err(IndexError::InvalidConfig {
                parameter: "bits",
                constraint: "1 <= bits <= 16",
            });
        }
        Ok(PackedConfig {
            fanout,
            curve,
            bits,
        })
    }

    /// Hilbert packing with the paper's typical fanout of 40 and 10-bit
    /// quantization.
    pub fn hilbert() -> Self {
        PackedConfig {
            fanout: 40,
            curve: CurveKind::Hilbert,
            bits: 10,
        }
    }

    /// Morton packing with the same defaults as [`PackedConfig::hilbert`].
    pub fn morton() -> Self {
        PackedConfig {
            fanout: 40,
            curve: CurveKind::Morton,
            bits: 10,
        }
    }

    /// The branch factor.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The curve used for sorting.
    pub fn curve(&self) -> CurveKind {
        self.curve
    }

    /// Per-dimension quantization bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl Default for PackedConfig {
    fn default() -> Self {
        PackedConfig::hilbert()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) mbr: Rect,
    /// Children: leaf nodes store an entry range, internal nodes a node
    /// range (packed trees have contiguous children by construction).
    pub(crate) first: u32,
    pub(crate) len: u32,
    pub(crate) leaf: bool,
}

/// A packed R-tree built bottom-up over a space-filling-curve ordering.
///
/// # Example
///
/// ```
/// use pubsub_geom::{Point, Rect};
/// use pubsub_stree::{Entry, EntryId, PackedConfig, PackedRTree, SpatialIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let entries = vec![
///     Entry::new(Rect::from_corners(&[0.0, 0.0], &[2.0, 2.0])?, EntryId(0)),
///     Entry::new(Rect::from_corners(&[5.0, 5.0], &[9.0, 9.0])?, EntryId(1)),
/// ];
/// let tree = PackedRTree::build(entries, PackedConfig::hilbert())?;
/// assert_eq!(tree.query_point(&Point::new(vec![1.0, 1.0])?), vec![EntryId(0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedRTree {
    config: PackedConfig,
    dims: usize,
    pub(crate) entries: Vec<Entry>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<u32>,
}

impl PackedRTree {
    /// Builds a packed R-tree over the given entries.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::STree::build`]: consistent
    /// dimensionality and finite rectangles.
    pub fn build(mut entries: Vec<Entry>, config: PackedConfig) -> Result<Self, IndexError> {
        let dims = entries.first().map_or(0, |e| e.rect.dims());
        for (index, e) in entries.iter().enumerate() {
            if e.rect.dims() != dims {
                return Err(IndexError::DimensionMismatch {
                    expected: dims,
                    got: e.rect.dims(),
                    index,
                });
            }
            if !e.rect.is_finite() {
                return Err(IndexError::UnboundedRect { index });
            }
        }
        if entries.is_empty() {
            return Ok(PackedRTree {
                config,
                dims,
                entries,
                nodes: Vec::new(),
                root: None,
            });
        }

        // Quantize centers into the curve grid spanned by the global MBR.
        let world = Rect::bounding(entries.iter().map(|e| &e.rect)).expect("non-empty");
        let side = (1u64 << config.bits) as f64;
        let keys: Vec<u128> = entries
            .iter()
            .map(|e| {
                let c = e.rect.center();
                let coords: Vec<u32> = (0..dims)
                    .map(|d| {
                        let s = world.side(d);
                        let w = s.length();
                        let t = if w > 0.0 {
                            ((c.coord(d) - s.lo()) / w * side).floor()
                        } else {
                            0.0
                        };
                        (t.max(0.0) as u64).min((1u64 << config.bits) - 1) as u32
                    })
                    .collect();
                curve_index(config.curve, &coords, config.bits)
            })
            .collect();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let mut sorted = Vec::with_capacity(entries.len());
        for &i in &order {
            sorted.push(entries[i].clone());
        }
        entries = sorted;

        // Leaf level.
        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<u32> = Vec::new();
        let mut i = 0usize;
        while i < entries.len() {
            let len = config.fanout.min(entries.len() - i);
            let mbr = Rect::bounding(entries[i..i + len].iter().map(|e| &e.rect))
                .expect("non-empty chunk");
            level.push(nodes.len() as u32);
            nodes.push(Node {
                mbr,
                first: i as u32,
                len: len as u32,
                leaf: true,
            });
            i += len;
        }
        // Upper levels: chunk consecutive nodes. Node children are
        // contiguous by construction, so each internal node stores a range.
        while level.len() > 1 {
            let mut next: Vec<u32> = Vec::new();
            let mut j = 0usize;
            while j < level.len() {
                let len = config.fanout.min(level.len() - j);
                let mbr = level[j..j + len]
                    .iter()
                    .map(|&id| nodes[id as usize].mbr.clone())
                    .reduce(|a, b| a.mbr_with(&b))
                    .expect("non-empty chunk");
                next.push(nodes.len() as u32);
                nodes.push(Node {
                    mbr,
                    first: level[j],
                    len: len as u32,
                    leaf: false,
                });
                j += len;
            }
            level = next;
        }

        Ok(PackedRTree {
            config,
            dims,
            entries,
            nodes,
            root: Some(level[0]),
        })
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> &PackedConfig {
        &self.config
    }

    /// Point query that also reports how many tree nodes were visited.
    pub fn query_point_counting(&self, p: &Point) -> (Vec<EntryId>, usize) {
        let mut out = Vec::new();
        let mut visited = 0usize;
        let Some(root) = self.root else {
            return (out, 0);
        };
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            visited += 1;
            let node = &self.nodes[v as usize];
            if !node.mbr.contains_point(p) {
                continue;
            }
            if node.leaf {
                for e in &self.entries[node.first as usize..(node.first + node.len) as usize] {
                    if e.rect.contains_point(p) {
                        out.push(e.id);
                    }
                }
            } else {
                stack.extend(node.first..node.first + node.len);
            }
        }
        (out, visited)
    }

    /// Verifies structural invariants (MBR coverage, fanout bounds, entry
    /// partition).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        let Some(root) = self.root else {
            return Ok(());
        };
        let mut covered = vec![false; self.entries.len()];
        let mut reachable = 0usize;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = self
                .nodes
                .get(v as usize)
                .ok_or(InvariantViolation::DanglingNode { node: v as usize })?;
            if node.len as usize > self.config.fanout {
                return Err(InvariantViolation::FanoutExceeded {
                    node: v as usize,
                    got: node.len as usize,
                    max: self.config.fanout,
                });
            }
            if node.leaf {
                // Indexes entries and covered in lockstep.
                #[allow(clippy::needless_range_loop)]
                for i in node.first as usize..(node.first + node.len) as usize {
                    if !node.mbr.contains_rect(&self.entries[i].rect) {
                        return Err(InvariantViolation::MbrNotCovering { node: v as usize });
                    }
                    if covered[i] {
                        return Err(InvariantViolation::EntriesNotPartitioned {
                            reachable,
                            stored: self.entries.len(),
                        });
                    }
                    covered[i] = true;
                    reachable += 1;
                }
            } else {
                for c in node.first..node.first + node.len {
                    let child = self
                        .nodes
                        .get(c as usize)
                        .ok_or(InvariantViolation::DanglingNode { node: c as usize })?;
                    if !node.mbr.contains_rect(&child.mbr) {
                        return Err(InvariantViolation::MbrNotCovering { node: v as usize });
                    }
                    stack.push(c);
                }
            }
        }
        if reachable != self.entries.len() {
            return Err(InvariantViolation::EntriesNotPartitioned {
                reachable,
                stored: self.entries.len(),
            });
        }
        Ok(())
    }
}

impl SpatialIndex for PackedRTree {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn query_point_into(&self, p: &Point, out: &mut Vec<EntryId>) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = &self.nodes[v as usize];
            if !node.mbr.contains_point(p) {
                continue;
            }
            if node.leaf {
                for e in &self.entries[node.first as usize..(node.first + node.len) as usize] {
                    if e.rect.contains_point(p) {
                        out.push(e.id);
                    }
                }
            } else {
                stack.extend(node.first..node.first + node.len);
            }
        }
    }

    fn query_region_into(&self, r: &Rect, out: &mut Vec<EntryId>) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = &self.nodes[v as usize];
            if !node.mbr.intersects(r) {
                continue;
            }
            if node.leaf {
                for e in &self.entries[node.first as usize..(node.first + node.len) as usize] {
                    if e.rect.intersects(r) {
                        out.push(e.id);
                    }
                }
            } else {
                stack.extend(node.first..node.first + node.len);
            }
        }
    }

    fn count_point(&self, p: &Point) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut count = 0usize;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = &self.nodes[v as usize];
            if !node.mbr.contains_point(p) {
                continue;
            }
            if node.leaf {
                count += self.entries[node.first as usize..(node.first + node.len) as usize]
                    .iter()
                    .filter(|e| e.rect.contains_point(p))
                    .count();
            } else {
                stack.extend(node.first..node.first + node.len);
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;

    fn entries_grid(n: u32) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let x = f64::from(i % 23) * 5.0;
                let y = f64::from(i / 23) * 5.0;
                Entry::new(
                    Rect::from_corners(&[x, y], &[x + 8.0, y + 8.0]).unwrap(),
                    EntryId(i),
                )
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(PackedConfig::new(1, CurveKind::Hilbert, 8).is_err());
        assert!(PackedConfig::new(4, CurveKind::Hilbert, 0).is_err());
        assert!(PackedConfig::new(4, CurveKind::Hilbert, 17).is_err());
        assert_eq!(PackedConfig::hilbert().curve(), CurveKind::Hilbert);
        assert_eq!(PackedConfig::morton().curve(), CurveKind::Morton);
        assert_eq!(PackedConfig::default().fanout(), 40);
        assert_eq!(PackedConfig::default().bits(), 10);
    }

    #[test]
    fn empty_tree() {
        let t = PackedRTree::build(vec![], PackedConfig::default()).unwrap();
        assert!(t.is_empty());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn queries_match_linear_scan_for_both_curves() {
        let entries = entries_grid(500);
        let oracle = LinearScan::new(entries.clone()).unwrap();
        for config in [
            PackedConfig::new(8, CurveKind::Hilbert, 10).unwrap(),
            PackedConfig::new(8, CurveKind::Morton, 10).unwrap(),
        ] {
            let tree = PackedRTree::build(entries.clone(), config).unwrap();
            tree.validate().unwrap();
            for i in 0..40 {
                let p = Point::new(vec![f64::from(i) * 3.1 % 120.0, f64::from(i) * 5.3 % 110.0])
                    .unwrap();
                let mut a = tree.query_point(&p);
                let mut b = oracle.query_point(&p);
                a.sort();
                b.sort();
                assert_eq!(a, b, "{:?} point {p:?}", config.curve());
            }
            let r = Rect::from_corners(&[20.0, 20.0], &[60.0, 45.0]).unwrap();
            let mut a = tree.query_region(&r);
            let mut b = oracle.query_region(&r);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tree_is_height_balanced() {
        // Unlike the S-tree, packed trees are perfectly balanced; verify by
        // walking depths.
        let tree = PackedRTree::build(
            entries_grid(777),
            PackedConfig::new(4, CurveKind::Hilbert, 8).unwrap(),
        )
        .unwrap();
        let root = tree.root.unwrap();
        let mut depths = Vec::new();
        let mut stack = vec![(root, 0usize)];
        while let Some((v, d)) = stack.pop() {
            let node = &tree.nodes[v as usize];
            if node.leaf {
                depths.push(d);
            } else {
                stack.extend((node.first..node.first + node.len).map(|c| (c, d + 1)));
            }
        }
        let min = depths.iter().min().unwrap();
        let max = depths.iter().max().unwrap();
        assert_eq!(min, max, "packed tree must be height-balanced");
    }

    #[test]
    fn counting_query_consistent() {
        let tree = PackedRTree::build(entries_grid(600), PackedConfig::default()).unwrap();
        let p = Point::new(vec![40.0, 40.0]).unwrap();
        let (mut hits, visited) = tree.query_point_counting(&p);
        let mut plain = tree.query_point(&p);
        hits.sort();
        plain.sort();
        assert_eq!(hits, plain);
        assert!(visited >= 1);
    }
}
