//! Quickstart: the ten-minute tour of the library.
//!
//! Build a small network, register a few subscriptions, publish events and
//! watch the broker match them and pick unicast vs multicast.
//!
//! Run with: `cargo run --example quickstart`

use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, Decision};
use pubsub::geom::{Interval, Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A network: one transit block with two stubs (the paper's
    //    evaluation uses TransitStubConfig::riabov(), ~600 nodes).
    let topology = TransitStubConfig::tiny().generate(7)?;
    let subscribers: Vec<_> = topology.stub_nodes().to_vec();
    println!(
        "network: {} nodes, {} stub subscribers available",
        topology.graph().node_count(),
        subscribers.len()
    );

    // 2. An event space: {price, volume}, clamped to finite bounds.
    let space = Space::new(
        vec!["price".into(), "volume".into()],
        Rect::from_corners(&[0.0, 0.0], &[100.0, 10_000.0])?,
    )?;

    // 3. Subscriptions are half-open rectangles. The classic Gryphon
    //    example: 75 < price <= 80 and volume >= 1000.
    let gryphon = Rect::new(vec![Interval::new(75.0, 80.0)?, Interval::at_least(999.0)])?;
    // A bargain hunter and a whale watcher round out the workload.
    let bargain = Rect::new(vec![Interval::at_most(20.0), Interval::unbounded()])?;
    let whales = Rect::new(vec![Interval::unbounded(), Interval::at_least(5000.0)])?;

    let mut broker = Broker::builder(topology, space)
        .subscription(subscribers[0], gryphon)
        .subscription(subscribers[1], bargain)
        .subscription(subscribers[2], whales)
        .subscription(
            subscribers[3],
            Rect::new(vec![Interval::new(70.0, 90.0)?, Interval::unbounded()])?,
        )
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
        // The paper recommends t = 0.15 for its 1000-subscription workload;
        // with this demo's three-member groups a higher threshold avoids
        // multicasting when only one member cares.
        .threshold(0.4)
        .build()?;

    // 4. Publish trades (points in the event space).
    for (price, volume) in [(78.0, 2000.0), (15.0, 100.0), (50.0, 9000.0), (99.0, 10.0)] {
        let event = Point::new(vec![price, volume])?;
        let outcome = broker.publish(&event)?;
        let how = match outcome.decision {
            Decision::Drop => "dropped (nobody interested)".to_string(),
            Decision::Unicast { .. } => format!("unicast to {} nodes", outcome.interested.len()),
            Decision::Multicast { group } => format!(
                "multicast to group {group} ({} members, {} interested)",
                broker.groups().members(group).len(),
                outcome.interested.len()
            ),
            Decision::PartialMulticast { group } => {
                format!("partial multicast to the reachable members of group {group}")
            }
        };
        println!(
            "trade (price={price:>5}, volume={volume:>6}): {how}; cost {:.1} (unicast would be {:.1})",
            outcome.costs.scheme, outcome.costs.unicast
        );
    }

    // 5. The cumulative report carries the paper's improvement metric.
    let report = broker.report();
    println!(
        "\n{} messages: {} unicast, {} multicast, {} dropped; improvement over unicast: {:.1}%",
        report.messages,
        report.unicasts,
        report.multicasts,
        report.dropped,
        report.improvement_percent()
    );
    Ok(())
}
