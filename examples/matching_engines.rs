//! Comparing the matching indexes: S-tree vs Hilbert/Morton packed
//! R-trees vs linear scan, on the paper's subscription workload.
//!
//! Every index answers the same point queries identically; they differ in
//! how much of the structure a query touches. Also demonstrates the
//! dynamic (churn-tolerant) wrapper.
//!
//! Run with: `cargo run --release --example matching_engines`

use std::time::Instant;

use pubsub::geom::Point;
use pubsub::netsim::TransitStubConfig;
use pubsub::stree::{
    CountingIndex, CurveKind, DynamicIndex, Entry, EntryId, LinearScan, PackedConfig, PackedRTree,
    STree, STreeConfig, SpatialIndex,
};
use pubsub::workload::{stock_space, Modes, SubscriptionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 1000 stock subscriptions, clamped to the event space.
    let topology = TransitStubConfig::riabov().generate(1903)?;
    let placed = SubscriptionConfig::riabov().generate(&topology, 2003)?;
    let space = stock_space();
    let entries: Vec<Entry> = placed
        .iter()
        .enumerate()
        .map(|(i, p)| Entry::new(space.clamp(&p.rect), EntryId(i as u32)))
        .collect();

    let model = Modes::Nine.model();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let events: Vec<Point> = (0..20_000).map(|_| model.sample(&mut rng)).collect();

    let stree = STree::build(entries.clone(), STreeConfig::default())?;
    let hilbert = PackedRTree::build(entries.clone(), PackedConfig::hilbert())?;
    let morton = PackedRTree::build(
        entries.clone(),
        PackedConfig::new(40, CurveKind::Morton, 10)?,
    )?;
    let counting = CountingIndex::new(entries.clone())?;
    let linear = LinearScan::new(entries.clone())?;

    println!("index        | total matches | elapsed");
    let indexes: [(&str, &dyn SpatialIndex); 5] = [
        ("s-tree", &stree),
        ("hilbert", &hilbert),
        ("morton", &morton),
        ("counting", &counting),
        ("linear", &linear),
    ];
    let mut reference = None;
    for (name, index) in indexes {
        let start = Instant::now();
        let mut matches = 0usize;
        let mut out = Vec::new();
        for e in &events {
            out.clear();
            index.query_point_into(e, &mut out);
            matches += out.len();
        }
        let elapsed = start.elapsed();
        println!("{name:<12} | {matches:>13} | {elapsed:>9.2?}");
        // All indexes must agree exactly.
        match reference {
            None => reference = Some(matches),
            Some(r) => assert_eq!(r, matches, "{name} disagrees with the s-tree"),
        }
    }

    // Churn: subscriptions come and go; the dynamic wrapper rebuilds the
    // packed tree once churn passes 25% of the live set.
    let mut dynamic = DynamicIndex::new(entries, STreeConfig::default(), 0.25)?;
    let churn_space = space.bounds();
    for i in 0..400u32 {
        dynamic.remove(EntryId(i))?;
        let side = churn_space.side(0);
        let rect = pubsub::geom::Rect::new(vec![
            pubsub::geom::Interval::new(side.lo(), side.hi())?,
            pubsub::geom::Interval::new(-5.0, 5.0)?,
            pubsub::geom::Interval::new(0.0, 20.0)?,
            pubsub::geom::Interval::new(0.0, 20.0)?,
        ])?;
        dynamic.insert(Entry::new(rect, EntryId(10_000 + i)))?;
    }
    println!(
        "\ndynamic wrapper after 400 removals + 400 inserts: {} live entries, {} rebuilds",
        dynamic.len(),
        dynamic.rebuild_count()
    );
    Ok(())
}
