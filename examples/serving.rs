//! Serving quickstart: the staged front-end, end to end.
//!
//! Starts a [`StagedServer`] (transport-in → pipeline → transport-out)
//! over a small broker, publishes a few events through the TCP wire
//! protocol with a real [`ServingClient`], then replays an open-loop
//! bursty schedule in-process through the [`IngestHandle`] — the same
//! path `bench_serving` drives with 100k simulated clients — and prints
//! publish→deliver latency percentiles.
//!
//! Run with: `cargo run --release --example serving`

use std::time::{Duration, Instant};

use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::Broker;
use pubsub::geom::{Interval, Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;
use pubsub::server::tcp::{ClientConfig, ServingClient, TcpFront};
use pubsub::server::{LatencySink, RejectReason, ServingConfig, StagedServer};
use pubsub::workload::OpenLoopConfig;

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A broker, exactly as in examples/quickstart.rs.
    let topology = TransitStubConfig::tiny().generate(7)?;
    let subscribers: Vec<_> = topology.stub_nodes().to_vec();
    let space = Space::new(
        vec!["price".into(), "volume".into()],
        Rect::from_corners(&[0.0, 0.0], &[100.0, 10_000.0])?,
    )?;
    let broker = Broker::builder(topology, space)
        .subscription(
            subscribers[0],
            Rect::new(vec![Interval::new(75.0, 80.0)?, Interval::at_least(999.0)])?,
        )
        .subscription(
            subscribers[1],
            Rect::new(vec![Interval::at_most(20.0), Interval::unbounded()])?,
        )
        .subscription(
            subscribers[2],
            Rect::new(vec![Interval::unbounded(), Interval::at_least(5000.0)])?,
        )
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
        .threshold(0.4)
        .build()?;

    // 2. Start the staged server. The sink runs on the egress thread and
    //    sees one EventRecord per accepted event; LatencySink just keeps
    //    the publish→deliver nanoseconds.
    let sink = LatencySink::new();
    let server = StagedServer::start(broker, ServingConfig::default(), Box::new(sink.clone()));
    let handle = server.handle();

    // 3. Real clients speak the length-prefixed wire protocol over TCP.
    //    Every publish gets a synchronous accept/reject ack — that ack IS
    //    the admission control of the backpressure contract. The session
    //    token gives the client a stable id and server-side dedup, so
    //    publish_retry can reconnect and retry through timeouts and shed
    //    responses without ever duplicating an event.
    let front = TcpFront::start("127.0.0.1:0", handle.clone())?;
    let mut client = ServingClient::with_config(
        front.local_addr(),
        ClientConfig {
            session_token: Some(42),
            ..ClientConfig::default()
        },
    )?;
    for (seq, (price, volume)) in [(78.0, 2000.0), (15.0, 100.0), (50.0, 9000.0)]
        .into_iter()
        .enumerate()
    {
        client.publish_retry(seq as u64 + 1, &[price, volume])?;
        println!("tcp publish (price={price:>5}, volume={volume:>6}): accepted");
    }
    front.stop();

    // 4. An open-loop burst: 2,000 simulated clients offering 20k
    //    events/s for two seconds, bursty on/off arrivals. Latency is
    //    measured from each event's *scheduled* instant, so queueing
    //    during bursts is visible (no coordinated omission).
    let schedule = OpenLoopConfig::bursty(2_000, 20_000.0, 2.0);
    let arrivals = schedule.generate(42)?;
    println!(
        "\nopen-loop replay: {} arrivals over {:.0} s (burst ratio {:.0}x)",
        arrivals.len(),
        schedule.duration_s,
        schedule.burst_ratio
    );
    let start = Instant::now() + Duration::from_millis(10);
    let mut rejected = 0u64;
    for (i, a) in arrivals.iter().enumerate() {
        let scheduled = start + Duration::from_nanos(a.at_ns);
        while Instant::now() < scheduled {
            std::hint::spin_loop();
        }
        let event = Point::new(vec![(i % 100) as f64, (i % 10_000) as f64])?;
        match handle.submit(a.client, i as u64, event, scheduled) {
            Ok(()) => {}
            Err(RejectReason::Shed { .. }) => rejected += 1,
            Err(e) => return Err(format!("submit failed: {e}").into()),
        }
    }
    let (_broker, stats) = server.stop();

    let mut lat = sink.take();
    lat.sort_unstable();
    println!(
        "accepted {} / rejected {} (admission control), delivered {}",
        stats.accepted,
        rejected + stats.rejected,
        stats.delivered
    );
    println!(
        "publish→deliver latency: p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms",
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        percentile(&lat, 0.999)
    );
    Ok(())
}
