//! The paper's full evaluation scenario, end to end: the ~600-node
//! transit-stub network, 1000 stock subscriptions, a 9-hot-spot
//! publication stream, Forgy k-means multicast groups and the dynamic
//! distribution scheme.
//!
//! Run with: `cargo run --release --example stock_market`

use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, Decision};
use pubsub::netsim::TransitStubConfig;
use pubsub::workload::{stock_space, Modes, SubscriptionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The testbed of §5: topology and subscriptions.
    let topology = TransitStubConfig::riabov().generate(1903)?;
    let stats = topology.stats();
    println!(
        "topology: {} nodes ({} transit, {} stub) in {} blocks",
        stats.nodes, stats.transit_nodes, stats.stub_nodes, stats.blocks
    );
    let placed = SubscriptionConfig::riabov().generate(&topology, 2003)?;
    println!("subscriptions: {} placed on stub nodes", placed.len());

    // Publications: the 9-mode mixture ("multiple hot spots").
    let model = Modes::Nine.model();
    let density_model = model.clone();

    let mut broker = Broker::builder(topology, stock_space())
        .subscriptions(placed.into_iter().map(|p| (p.node, p.rect)))
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 11))
        .threshold(0.15)
        .density(move |r| density_model.mass(r))
        .build()?;

    println!(
        "broker: {} multicast groups, sizes {:?}",
        broker.groups().len(),
        broker.groups().sizes()
    );
    let stree = broker.matcher().index().stats();
    println!(
        "matcher: S-tree with {} nodes, depth {}..{}, avg fanout {:.1}",
        stree.node_count, stree.min_leaf_depth, stree.max_leaf_depth, stree.avg_internal_fanout
    );

    // A trading session.
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let mut sample_lines = 0;
    for i in 0..20_000 {
        let event = model.sample(&mut rng);
        let outcome = broker.publish(&event)?;
        // Print a few interesting deliveries as they happen.
        if sample_lines < 5 {
            if let Decision::Multicast { group } = outcome.decision {
                println!(
                    "  event #{i}: multicast to group {group} — {} interested of {} members",
                    outcome.interested.len(),
                    broker.groups().members(group).len()
                );
                sample_lines += 1;
            }
        }
    }

    let r = broker.report();
    println!("\n=== session report ===");
    println!("messages        {:>8}", r.messages);
    println!("  dropped       {:>8}", r.dropped);
    println!("  unicast       {:>8}", r.unicasts);
    println!("  multicast     {:>8}", r.multicasts);
    println!("scheme cost     {:>12.0}", r.scheme_cost);
    println!("unicast cost    {:>12.0}  (0% reference)", r.unicast_cost);
    println!("ideal cost      {:>12.0}  (100% reference)", r.ideal_cost);
    println!("wasted deliveries {:>6}", r.wasted_deliveries);
    println!(
        "improvement over unicast: {:.1}% (the paper's Figure 6 metric)",
        r.improvement_percent()
    );
    Ok(())
}
