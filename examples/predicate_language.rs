//! The subscription language: predicates in, rectangles out.
//!
//! Shows the §1 story end to end — the Gryphon example subscription
//! written as predicates, a multi-range predicate decomposing into
//! several rectangles, and events built by attribute name.
//!
//! Run with: `cargo run --example predicate_language`

use pubsub::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = TransitStubConfig::tiny().generate(3)?;
    let space = Space::new(
        vec!["name".into(), "price".into(), "volume".into()],
        Rect::from_corners(&[0.0, 0.0, 0.0], &[500.0, 200.0, 1e6])?,
    )?;
    let subscribers = topology.stub_nodes().to_vec();

    // The paper's motivating subscription: name=IBM (index 42),
    // 75 < price <= 80, volume >= 1000.
    let gryphon = SubscriptionSpec::new()
        .attr("name", Predicate::equals(42.0))
        .attr("price", Predicate::range(75.0, 80.0))
        .attr("volume", Predicate::at_least(1000.0));

    // A two-band price watcher: interested in bargains OR breakouts for
    // any stock. Decomposes into 2 rectangles (§1: "by decomposing a
    // subscription with multiple such ranges into multiple subscriptions").
    let bands = SubscriptionSpec::new().attr(
        "price",
        Predicate::at_most(10.0).or(Interval::new(100.0, 150.0)?),
    );
    println!(
        "gryphon spec compiles to {} rectangle(s); bands spec to {}",
        gryphon.rectangle_count(),
        bands.rectangle_count()
    );

    let mut builder = Broker::builder(topology, space.clone()).threshold(0.3);
    for rect in gryphon.compile(&space)? {
        builder = builder.subscription(subscribers[0], rect);
    }
    for rect in bands.compile(&space)? {
        builder = builder.subscription(subscribers[1], rect);
    }
    let mut broker = builder.build()?;

    // Events by attribute name, in any order.
    let trades = [
        ("IBM breakout trade", 42.0, 120.0, 5_000.0),
        ("IBM in the gryphon band", 42.0, 78.0, 2_000.0),
        ("penny stock", 7.0, 4.0, 100.0),
        ("mid-price nobody wants", 42.0, 50.0, 100.0),
    ];
    for (label, name, price, volume) in trades {
        let event = EventBuilder::new(&space)
            .set("price", price)?
            .set("volume", volume)?
            .set("name", name)?
            .build()?;
        let outcome = broker.publish(&event)?;
        println!(
            "{label:>28}: {} subscriber(s) matched -> {:?}",
            outcome.interested.len(),
            outcome.decision
        );
    }
    Ok(())
}
