//! Tuning the distribution threshold: a miniature Figure 6.
//!
//! Sweeps the threshold `t` on one broker and prints the improvement
//! curve, showing the interior optimum the paper reports around 15%.
//!
//! Run with: `cargo run --release --example threshold_tuning`

use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::Broker;
use pubsub::netsim::TransitStubConfig;
use pubsub::workload::{stock_space, Modes, SubscriptionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = TransitStubConfig::riabov().generate(1903)?;
    let placed = SubscriptionConfig::riabov().generate(&topology, 2003)?;
    let model = Modes::Nine.model();
    let density_model = model.clone();
    let mut broker = Broker::builder(topology, stock_space())
        .subscriptions(placed.into_iter().map(|p| (p.node, p.rect)))
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 11))
        .density(move |r| density_model.mass(r))
        .build()?;

    // One fixed event stream, republished at every threshold.
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let events: Vec<_> = (0..5000).map(|_| model.sample(&mut rng)).collect();

    println!("threshold  improvement  multicast share");
    let mut best = (0.0, f64::NEG_INFINITY);
    for t in [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50] {
        broker.set_threshold(t)?;
        broker.reset_report();
        for e in &events {
            broker.publish(e)?;
        }
        let r = broker.report();
        let sent = (r.unicasts + r.multicasts).max(1);
        let improvement = r.improvement_percent();
        let bar = "#".repeat((improvement.max(0.0) / 2.0) as usize);
        println!(
            "{:>8.0}% {:>11.1}% {:>15.2}  {bar}",
            t * 100.0,
            improvement,
            r.multicasts as f64 / sent as f64
        );
        if improvement > best.1 {
            best = (t, improvement);
        }
    }
    println!(
        "\nbest threshold: {:.0}% ({:.1}% improvement) — the paper recommends ~15%",
        best.0 * 100.0,
        best.1
    );
    println!("t=0 is the static scheme (always multicast on a group hit); high t degrades to pure unicast.");
    Ok(())
}
